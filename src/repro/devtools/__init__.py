"""Developer tooling that ships with the repository (not part of the library API)."""
