"""repro-lint: an AST-based linter for this repository's determinism contracts.

The architecture invariants in ROADMAP.md ("seeds derive at plan time",
"cached graphs are read-only", "segments unlink exactly once", ...) are
enforced here as lint rules with ``RPL###`` codes, so contract violations
fail CI on the diff that introduces them instead of waiting for a runtime
test to trip.  See ``python -m repro.devtools.reprolint --list-rules``.
"""

from .config import LintConfig, find_root, load_config
from .diagnostics import Diagnostic
from .engine import build_rules, lint_paths, lint_source
from .registry import Rule, all_rule_classes, register

__all__ = [
    "Diagnostic",
    "LintConfig",
    "Rule",
    "all_rule_classes",
    "build_rules",
    "find_root",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
]
