"""Command-line entry point: ``python -m repro.devtools.reprolint <paths>``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .config import find_root, load_config
from .engine import build_rules, lint_paths
from .registry import all_rule_classes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for this repository: checks the "
            "determinism contracts (RNG discipline, read-only cached graphs, "
            "shared-memory ownership, single-writer telemetry, wall-clock "
            "hygiene, framed-socket hygiene) at review time."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help=(
            "repository root used for path-relative rule scoping and "
            "pyproject.toml discovery (default: walk up from the first path)"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (overrides pyproject select)",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.repro-lint] in pyproject.toml",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for code, rule_cls in sorted(all_rule_classes().items()):
            print(f"{code} {rule_cls.name}: {rule_cls.summary}")
        return 0
    root = args.root if args.root is not None else find_root(Path(args.paths[0]))
    config = load_config(root, use_pyproject=not args.no_config)
    if args.select:
        config.select = [code.strip().upper() for code in args.select.split(",") if code.strip()]
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    # Sanity-check the configuration before walking anything.
    build_rules(config)
    diagnostics = lint_paths([Path(path) for path in args.paths], config)
    for diag in diagnostics:
        print(diag.render())
    if diagnostics:
        files = len({diag.path for diag in diagnostics})
        print(f"repro-lint: {len(diagnostics)} finding(s) in {files} file(s)")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
