"""RPL001 — RNG discipline.

All randomness flows through seeded :class:`random.Random` instances handed
down from the sweep plan (``repro.rng``).  Module-level ``random.*`` calls
and unseeded ``Random()`` constructions create hidden global state that
breaks byte-identical replay; they are only legitimate inside ``rng.py``
itself, which implements the ``None``-seed escape hatch.

Separately, task-execution modules (worker, transports, backends,
schedulers) must never *derive* seeds: seeds are fixed at plan time in
``plan_sweep_tasks`` so every backend executes an identical task list.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import ClassVar, Iterator

from ..astutils import resolved_call_name
from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

#: random-module functions that consume the hidden global generator.
_MODULE_FUNCS = frozenset(
    {
        "random",
        "randrange",
        "randint",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
        "setstate",
    }
)


@register
class RngDiscipline(Rule):
    code = "RPL001"
    name = "rng-discipline"
    summary = (
        "no module-level random.* calls or unseeded Random() outside rng.py; "
        "execution modules never derive seeds"
    )
    default_exclude: ClassVar = ["src/repro/rng.py"]
    default_options: ClassVar = {
        # Modules on the task-execution path: they receive fully planned
        # tasks and must not mint new randomness of their own.
        "execution_modules": [
            "src/repro/experiments/worker.py",
            "src/repro/experiments/transports.py",
            "src/repro/experiments/backends.py",
            "src/repro/experiments/schedulers.py",
        ],
        "seed_derivers": [
            "repro.rng.make_rng",
            "repro.rng.derive_seed",
            "repro.rng.spawn_rng",
            "repro.rng.spawn_rngs",
        ],
    }

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        in_execution_module = any(
            fnmatch.fnmatch(ctx.path, pattern)
            for pattern in self.options["execution_modules"]
        )
        derivers = frozenset(self.options["seed_derivers"])
        deriver_tails = frozenset(name.rsplit(".", 1)[-1] for name in derivers)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolved_call_name(node, ctx.imports)
            if resolved is None:
                continue
            if resolved.startswith("random.") and resolved.split(".", 1)[1] in _MODULE_FUNCS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"call to the module-level `{resolved}()` bypasses the seeded "
                    "RNG discipline; thread a random.Random from repro.rng instead",
                )
            elif resolved in ("random.Random", "random.SystemRandom") and not (
                node.args or node.keywords
            ):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"unseeded `{resolved}()` is OS-seeded and irreproducible; "
                    "pass an explicit seed or use repro.rng.make_rng",
                )
            elif in_execution_module and (
                resolved in derivers or resolved in deriver_tails
            ):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"`{resolved}` called from a task-execution module; seeds "
                    "derive at plan time (plan_sweep_tasks) only",
                )
