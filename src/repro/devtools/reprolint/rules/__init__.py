"""Rule pack.  Importing this package registers every rule."""

from . import (  # noqa: F401
    rpl001_rng,
    rpl002_graphs,
    rpl003_shm,
    rpl004_telemetry,
    rpl005_wallclock,
    rpl006_frames,
)
