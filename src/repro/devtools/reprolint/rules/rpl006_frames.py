"""RPL006 — unsafe-frame hygiene.

All socket traffic is length-prefixed frames.  ``read_frame``/
``_read_exactly`` in ``worker.py`` are the only code allowed to touch raw
socket reads, because they are the only code that loops on short reads; a
stray ``sock.recv()`` elsewhere silently truncates frames under load.  Bare
``except:`` in the transport/worker path is flagged too — it has already
hidden real teardown bugs by swallowing ``SystemExit``/``KeyboardInterrupt``
in slot threads.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..astutils import attr_chain
from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

#: Receiver names that recognisably hold a socket / connection.
_SOCKETISH = ("sock", "socket", "conn", "connection", "peer", "reader", "client")


def _socketish(receiver: str) -> bool:
    tail = receiver.rsplit(".", 1)[-1].lower()
    return any(marker in tail for marker in _SOCKETISH)


@register
class UnsafeFrameHygiene(Rule):
    code = "RPL006"
    name = "unsafe-frame-hygiene"
    summary = (
        "no raw socket recv/read outside read_frame (worker.py); no bare "
        "except in the transport path"
    )
    default_include: ClassVar = ["src/repro/**"]
    default_exclude: ClassVar = ["src/repro/experiments/worker.py"]

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                receiver = attr_chain(node.func.value) or ""
                if attr in ("recv", "recv_into", "recvfrom", "recvmsg"):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"raw `.{attr}()` outside read_frame: short reads truncate "
                        "frames — go through worker.read_frame/_read_exactly",
                    )
                elif attr in ("read", "readline") and _socketish(receiver):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"raw `.{attr}()` on `{receiver}` outside read_frame: "
                        "framed peers must be read via worker.read_frame",
                    )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.diagnostic(
                    ctx,
                    node,
                    "bare `except:` swallows SystemExit/KeyboardInterrupt; catch "
                    "Exception (or narrower) so teardown stays interruptible",
                )
