"""RPL005 — wall-clock / nondeterminism hygiene.

``time.time()`` and ``datetime.now()`` are fine for *measuring* (telemetry
timestamps, RTT math uses ``monotonic`` anyway) but must never feed seeds,
hashes, cache keys, or task ordering — anything that changes bytes between
runs.  Statically separating "measurement" from "decision" uses is
undecidable, so the rule takes the repo's actual convention: production
modules use ``time.monotonic()``/``perf_counter()`` for all timing, and the
few legitimate wall-clock reads (log prefixes, artifact timestamps) carry an
explicit ``# repro-lint: disable=RPL005`` pragma that documents intent.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..astutils import resolved_call_name
from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockHygiene(Rule):
    code = "RPL005"
    name = "wall-clock-hygiene"
    summary = (
        "no time.time()/datetime.now() in production modules; use monotonic "
        "clocks, or pragma the deliberate wall-clock reads"
    )
    default_include: ClassVar = ["src/repro/**"]

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolved_call_name(node, ctx.imports)
            if resolved in _WALL_CLOCK:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"`{resolved}()` reads the wall clock; results and ordering "
                    "must not depend on it — use time.monotonic()/perf_counter() "
                    "for timing, or pragma a deliberate timestamp",
                )
