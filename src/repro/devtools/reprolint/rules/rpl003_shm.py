"""RPL003 — shared-memory ownership.

The serving worker process owns every ``repro-csr`` segment: only
``shm_cache.py`` may create segments (``SharedMemory(create=True)``) and
only it may ``unlink()`` them (exactly once, at eviction or shutdown).
Slot-side code attaches (``create=False``) and ``close()``s.  A second
creator or a slot-side unlink produces either leaked segments or
use-after-unlink crashes in sibling slots.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Optional

from ..astutils import attr_chain, resolved_call_name
from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

#: Receiver names that recognisably hold a shared-memory handle.
_SEGMENTISH = ("shm", "segment", "seg", "shared_memory", "sharedmemory")


def _segmentish(receiver: str) -> bool:
    tail = receiver.rsplit(".", 1)[-1].lower()
    return any(marker in tail for marker in _SEGMENTISH)


@register
class SharedMemoryOwnership(Rule):
    code = "RPL003"
    name = "shared-memory-ownership"
    summary = "SharedMemory(create=True) and .unlink() only in shm_cache.py"
    default_include: ClassVar = ["src/repro/**"]
    default_exclude: ClassVar = ["src/repro/experiments/shm_cache.py"]

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            diag = self._check_create(ctx, node) or self._check_unlink(ctx, node)
            if diag is not None:
                yield diag

    def _check_create(self, ctx: FileContext, node: ast.Call) -> Optional[Diagnostic]:
        resolved = resolved_call_name(node, ctx.imports)
        if resolved is None or resolved.rsplit(".", 1)[-1] != "SharedMemory":
            return None
        creates = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        ) or any(
            isinstance(arg, ast.Constant) and arg.value is True for arg in node.args
        )
        if not creates:
            return None
        return self.diagnostic(
            ctx,
            node,
            "`SharedMemory(create=True)` outside shm_cache.py: the serving "
            "process owns segment creation; slot-side code may only attach",
        )

    def _check_unlink(self, ctx: FileContext, node: ast.Call) -> Optional[Diagnostic]:
        if isinstance(node.func, ast.Attribute) and node.func.attr == "unlink":
            receiver = attr_chain(node.func.value) or ""
            resolved = ctx.imports.resolve(receiver) if receiver else ""
            if resolved in ("os", "os.path") or receiver == "os":
                if self._targets_dev_shm(node):
                    return self.diagnostic(
                        ctx,
                        node,
                        "`os.unlink` on a /dev/shm path outside shm_cache.py: "
                        "segment reaping belongs to the owning cache",
                    )
                return None
            if _segmentish(receiver):
                return self.diagnostic(
                    ctx,
                    node,
                    f"`{receiver}.unlink()` outside shm_cache.py: segments are "
                    "unlinked exactly once by their owner; slot-side code only "
                    "close()s",
                )
        return None

    @staticmethod
    def _targets_dev_shm(node: ast.Call) -> bool:
        for arg in ast.walk(node):
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if "/dev/shm" in arg.value:
                    return True
        return False
