"""RPL002 — read-only cached graphs.

Graphs are built once (in ``repro.graphs``) and then shared: across thread
slots via the per-worker LRU cache and across slot subprocesses via the
shared-memory CSR segments.  Any in-place mutation by an algorithm, engine,
or experiment module corrupts every other consumer of the cache entry, so
consumers must treat graphs — and the CSR arrays backing them — as frozen.
Construction-time mutation inside ``src/repro/graphs/`` is the whitelisted
exception.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..astutils import attr_chain
from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

#: networkx in-place mutators: unambiguous graph writes on any receiver.
_GRAPH_MUTATORS = frozenset(
    {
        "add_edge",
        "add_edges_from",
        "add_weighted_edges_from",
        "add_node",
        "add_nodes_from",
        "remove_edge",
        "remove_edges_from",
        "remove_node",
        "remove_nodes_from",
        "clear",
        "clear_edges",
        "update",
    }
)

#: The CSR array attributes cached graphs expose; item-assignment through
#: any of these is a write into the shared copy.
_CSR_ARRAYS = frozenset({"offsets", "neighbors", "arrivals", "labels"})

#: `update`/`clear` also exist on dicts and sets everywhere; restrict those
#: two to receivers that are recognisably graphs so the rule stays usable.
_AMBIGUOUS_MUTATORS = frozenset({"clear", "update"})
_GRAPHISH_NAMES = ("graph", "csr", "g")


def _graphish(receiver: str) -> bool:
    tail = receiver.rsplit(".", 1)[-1].lower()
    return tail in _GRAPHISH_NAMES or "graph" in tail or "csr" in tail


@register
class ReadOnlyCachedGraphs(Rule):
    code = "RPL002"
    name = "read-only-cached-graphs"
    summary = "no in-place mutation of (cached) graphs outside repro.graphs"
    default_include: ClassVar = [
        "src/repro/algorithms/**",
        "src/repro/sim/**",
        "src/repro/core/**",
        "src/repro/ldt/**",
        "src/repro/experiments/**",
        "src/repro/analysis/**",
    ]

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                receiver = attr_chain(node.func.value) or ""
                if attr in _GRAPH_MUTATORS and (
                    attr not in _AMBIGUOUS_MUTATORS or _graphish(receiver)
                ):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"`.{attr}()` mutates a graph in place; cached graphs are "
                        "shared across slots and must stay read-only (build a new "
                        "graph in repro.graphs instead)",
                    )
                elif attr == "setflags" and any(
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value
                    for kw in node.keywords
                ):
                    yield self.diagnostic(
                        ctx,
                        node,
                        "`setflags(write=True)` re-enables writes on a cached CSR "
                        "array; consumers must not unfreeze shared buffers",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    diag = self._array_write(ctx, target)
                    if diag is not None:
                        yield diag
                    chain = attr_chain(target) or ""
                    if chain.endswith(".flags.writeable") and (
                        isinstance(node.value, ast.Constant) and node.value.value
                    ):
                        yield self.diagnostic(
                            ctx,
                            target,
                            "`.flags.writeable = True` re-enables writes on a "
                            "cached CSR array; consumers must not unfreeze "
                            "shared buffers",
                        )
            elif isinstance(node, ast.AugAssign):
                diag = self._array_write(ctx, node.target)
                if diag is not None:
                    yield diag

    def _array_write(self, ctx: FileContext, target: ast.expr):
        if not isinstance(target, ast.Subscript):
            return None
        value = target.value
        if isinstance(value, ast.Attribute) and value.attr in _CSR_ARRAYS:
            return self.diagnostic(
                ctx,
                target,
                f"item-assignment into `.{value.attr}` writes a shared CSR array; "
                "cached graphs are read-only outside repro.graphs",
            )
        return None
