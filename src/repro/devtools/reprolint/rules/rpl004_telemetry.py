"""RPL004 — single-writer telemetry counters.

``ConnectionStats``/``RttEstimator`` counters follow a single-writer design:
exactly one slot thread mutates each instance, and every mutation lives in
``telemetry.py`` (the note_* methods), so no lock is needed.  ``Transport``
aggregates (``_restarts``, ``_peak_window``) are written from multiple slot
threads and therefore must only ever be touched under the stats lock — the
unlocked ``restarts`` increment was a real shipped race (PR 6).

The rule flags (a) writes to a designated counter attribute outside its
owning module and (b) writes to a locked attribute anywhere outside a
``with <lock>:`` block.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import ClassVar, Iterator

from ..astutils import lock_guarded_ranges, within_ranges
from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register


@register
class SingleWriterTelemetry(Rule):
    code = "RPL004"
    name = "single-writer-telemetry"
    summary = (
        "designated telemetry counters are written only by their owning "
        "module, or under a lock"
    )
    default_include: ClassVar = ["src/repro/**"]
    default_options: ClassVar = {
        # attribute name -> glob (or list of globs) of the module(s) that
        # own (may write) it.  `requeues` has two owners because the
        # scheduler keeps its own requeue counter (single-threaded driver
        # loop) alongside the per-connection one.
        "owners": {
            "frames_sent": "src/repro/experiments/telemetry.py",
            "tasks_sent": "src/repro/experiments/telemetry.py",
            "batches_sent": "src/repro/experiments/telemetry.py",
            "acks": "src/repro/experiments/telemetry.py",
            "slow_acks": "src/repro/experiments/telemetry.py",
            "requeues": [
                "src/repro/experiments/telemetry.py",
                "src/repro/experiments/schedulers.py",
            ],
            "reconnects": "src/repro/experiments/telemetry.py",
            "bytes_sent": "src/repro/experiments/telemetry.py",
            "bytes_received": "src/repro/experiments/telemetry.py",
            "peak_window": "src/repro/experiments/telemetry.py",
            "srtt": "src/repro/experiments/telemetry.py",
            "rttvar": "src/repro/experiments/telemetry.py",
            "min_rtt": "src/repro/experiments/telemetry.py",
            "max_rtt": "src/repro/experiments/telemetry.py",
            "_restarts": "src/repro/experiments/transports.py",
            "_peak_window": "src/repro/experiments/transports.py",
        },
        # attributes that must be written under a lock even in their owner
        # (multi-threaded writers by design).
        "locked": ["_restarts", "_peak_window"],
    }

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        owners = self.options["owners"]
        locked = frozenset(self.options["locked"])
        guarded = lock_guarded_ranges(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                attr = target.attr
                owner = owners.get(attr)
                if owner is None:
                    continue
                owner_globs = [owner] if isinstance(owner, str) else list(owner)
                if not any(fnmatch.fnmatch(ctx.path, glob) for glob in owner_globs):
                    yield self.diagnostic(
                        ctx,
                        target,
                        f"write to telemetry counter `.{attr}` outside its owning "
                        f"module ({', '.join(owner_globs)}); counters have exactly "
                        "one writer",
                    )
                elif attr in locked and not within_ranges(target.lineno, guarded):
                    yield self.diagnostic(
                        ctx,
                        target,
                        f"write to `.{attr}` without holding the stats lock; this "
                        "attribute is written from multiple slot threads",
                    )
