"""Diagnostic records produced by lint rules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violation at a specific file position.

    Ordering is (path, line, col, code) so sorted output is stable and
    groups findings by file.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
