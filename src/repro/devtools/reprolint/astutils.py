"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple


def attr_chain(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``.

    Returns ``None`` when the chain is rooted in anything other than a bare
    name (a call result, a subscript, ...), because such receivers cannot be
    resolved statically.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Map local aliases back to the qualified names they import.

    ``import random as r`` makes ``r.randint`` resolve to ``random.randint``;
    ``from random import Random as R`` makes ``R`` resolve to
    ``random.Random``.  Only top-of-chain aliases are rewritten.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, chain: str) -> str:
        """Rewrite the first segment of *chain* through the import table."""
        head, sep, rest = chain.partition(".")
        target = self._aliases.get(head)
        if target is None:
            return chain
        return target + sep + rest


def resolved_call_name(call: ast.Call, imports: ImportMap) -> Optional[str]:
    chain = attr_chain(call.func)
    if chain is None:
        return None
    return imports.resolve(chain)


def lock_guarded_ranges(tree: ast.AST) -> List[Tuple[int, int]]:
    """Line ranges covered by ``with <something lock-ish>:`` blocks.

    A context expression counts as lock-ish when any identifier in its
    attribute chain contains ``lock`` (``self._stats_lock``,
    ``self.lock.acquire_timeout(...)``, a bare ``lock``).  This is a lexical
    approximation: it cannot prove the *right* lock is held, only that the
    write is not lock-free.
    """
    ranges: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            chain = attr_chain(expr) or ""
            if any("lock" in part.lower() for part in chain.split(".")):
                end = getattr(node, "end_lineno", None) or node.lineno
                ranges.append((node.lineno, end))
                break
    return ranges


def within_ranges(line: int, ranges: List[Tuple[int, int]]) -> bool:
    return any(start <= line <= end for start, end in ranges)
