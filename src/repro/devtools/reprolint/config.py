"""Configuration: built-in defaults overridden by ``[tool.repro-lint]``.

The pyproject section looks like::

    [tool.repro-lint]
    exclude = ["tests/lint_fixtures/**"]   # global path excludes
    select = ["RPL001", "RPL002"]          # optional: run only these codes
    disable = ["RPL005"]                   # optional: never run these codes

    [tool.repro-lint.rules.RPL004]
    exclude = ["src/repro/experiments/sketches/**"]  # extends rule defaults
    # any other key overrides that rule's default_options entry

``tomllib`` ships with Python 3.11+; on 3.10 (still in the CI test matrix) a
minimal line-oriented parser handles the small TOML subset this section uses.
"""

from __future__ import annotations

import ast as _ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

try:
    import tomllib as _toml
except ImportError:  # pragma: no cover - Python 3.10
    _toml = None


@dataclass
class LintConfig:
    root: Path
    exclude: List[str] = field(default_factory=list)
    select: Optional[List[str]] = None
    disable: List[str] = field(default_factory=list)
    #: per-rule tables: code -> {"include": [...], "exclude": [...], <options>}
    rules: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def rule_enabled(self, code: str) -> bool:
        if code in self.disable:
            return False
        return self.select is None or code in self.select


def _parse_toml_subset(text: str) -> Dict[str, Any]:
    """Parse just enough TOML for ``[tool.repro-lint]``: string/bool/int
    scalars and (possibly multi-line) arrays of strings under ``[section]``
    headers.  Used only when :mod:`tomllib` is unavailable.
    """
    data: Dict[str, Any] = {}
    table: Dict[str, Any] = data
    pending_key: Optional[str] = None
    pending_value = ""
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if pending_key is not None:
            pending_value += " " + line
            if _balanced(pending_value):
                table[pending_key] = _parse_value(pending_value)
                pending_key = None
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line.strip("[]").strip()
            table = data
            for part in _split_table_name(name):
                table = table.setdefault(part, {})
            continue
        if "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.strip()
        if _balanced(value):
            table[key] = _parse_value(value)
        else:
            pending_key, pending_value = key, value
    return data


def _split_table_name(name: str) -> List[str]:
    # Handles dotted headers with quoted parts: tool."repro-lint".rules.RPL001
    parts: List[str] = []
    for piece in name.split("."):
        parts.append(piece.strip().strip('"'))
    return parts


def _balanced(value: str) -> bool:
    return value.count("[") == value.count("]")


def _parse_value(value: str) -> Any:
    value = value.strip()
    if value in ("true", "false"):
        return value == "true"
    try:
        # TOML scalar strings/ints/arrays-of-strings are valid Python literals.
        return _ast.literal_eval(value)
    except (ValueError, SyntaxError):
        return value


def _load_pyproject(path: Path) -> Dict[str, Any]:
    text = path.read_text(encoding="utf-8")
    if _toml is not None:
        return _toml.loads(text)
    return _parse_toml_subset(text)


def find_root(start: Path) -> Path:
    """Walk up from *start* to the nearest directory holding pyproject.toml."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def load_config(root: Path, use_pyproject: bool = True) -> LintConfig:
    config = LintConfig(root=root)
    pyproject = root / "pyproject.toml"
    if not use_pyproject or not pyproject.is_file():
        return config
    data = _load_pyproject(pyproject)
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, dict):
        return config
    config.exclude = list(section.get("exclude", []))
    if "select" in section:
        config.select = [str(code).upper() for code in section["select"]]
    config.disable = [str(code).upper() for code in section.get("disable", [])]
    rules = section.get("rules", {})
    if isinstance(rules, dict):
        for code, table in rules.items():
            if isinstance(table, dict):
                config.rules[str(code).upper()] = dict(table)
    return config
