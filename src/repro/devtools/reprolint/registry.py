"""Rule base class and the global rule registry."""

from __future__ import annotations

import fnmatch
from typing import TYPE_CHECKING, Any, ClassVar, Dict, Iterator, List, Type

from .diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .engine import FileContext

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """One invariant check.

    Subclasses set ``code``/``name``/``summary``, declare their default path
    scope via ``default_include``/``default_exclude`` (fnmatch globs over
    posix-style paths relative to the repo root; a pattern without ``/`` also
    matches the basename), and implement :meth:`check`.

    ``default_options`` holds rule-specific knobs; ``pyproject.toml`` can
    override any of them per rule.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    default_include: ClassVar[List[str]] = ["**/*.py"]
    default_exclude: ClassVar[List[str]] = []
    default_options: ClassVar[Dict[str, Any]] = {}

    def __init__(self, include: List[str], exclude: List[str], options: Dict[str, Any]):
        self.include = include
        self.exclude = exclude
        self.options = options

    def applies_to(self, path: str) -> bool:
        if not any(_match(path, pattern) for pattern in self.include):
            return False
        return not any(_match(path, pattern) for pattern in self.exclude)

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, ctx: "FileContext", node: Any, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


def _match(path: str, pattern: str) -> bool:
    if fnmatch.fnmatch(path, pattern):
        return True
    # Convenience: a bare filename pattern matches at any depth.
    return "/" not in pattern and fnmatch.fnmatch(path.rsplit("/", 1)[-1], pattern)


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_cls* to the global registry."""
    if not rule_cls.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rule_classes() -> Dict[str, Type[Rule]]:
    # Importing the rules package populates the registry on first use.
    from . import rules  # noqa: F401

    return dict(_REGISTRY)
