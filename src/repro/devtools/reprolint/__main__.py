"""``python -m repro.devtools.reprolint`` dispatch."""

import sys

from .cli import main

sys.exit(main())
