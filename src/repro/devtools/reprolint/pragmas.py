"""Inline suppression pragmas.

Two forms are recognised, both in comments:

``# repro-lint: disable=RPL001`` (or ``disable=RPL001,RPL004`` or
``disable=all``) suppresses matching diagnostics *on the line carrying the
comment*.

``# repro-lint: disable-file=RPL001`` anywhere in the file suppresses the
listed codes for the whole file.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*=\s*(?P<codes>[A-Za-z0-9_,\s]+)"
)


@dataclass
class PragmaIndex:
    """Suppressions extracted from one file's comments."""

    #: line number -> set of codes (or {"all"}) disabled on that line
    line_disables: Dict[int, Set[str]] = field(default_factory=dict)
    #: codes (or {"all"}) disabled for the entire file
    file_disables: Set[str] = field(default_factory=set)

    def suppresses(self, code: str, line: int) -> bool:
        if "all" in self.file_disables or code in self.file_disables:
            return True
        disabled = self.line_disables.get(line)
        if not disabled:
            return False
        return "all" in disabled or code in disabled


def _parse_codes(raw: str) -> Set[str]:
    codes = set()
    for piece in raw.split(","):
        piece = piece.strip()
        if not piece:
            continue
        codes.add("all" if piece.lower() == "all" else piece.upper())
    return codes


def collect_pragmas(source: str) -> PragmaIndex:
    """Extract suppression pragmas from *source* via the tokenizer.

    Tokenising (rather than regexing raw lines) keeps pragma-looking text
    inside string literals from being treated as a real pragma.  Files the
    tokenizer rejects fall back to an empty index — the parser will report
    the syntax error through its own diagnostic.
    """
    index = PragmaIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return index
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if not match:
            continue
        codes = _parse_codes(match.group("codes"))
        if not codes:
            continue
        if match.group("scope") == "disable-file":
            index.file_disables |= codes
        else:
            index.line_disables.setdefault(token.start[0], set()).update(codes)
    return index
