"""Lint engine: file discovery, parsing, rule dispatch, pragma filtering."""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional

from .astutils import ImportMap
from .config import LintConfig
from .diagnostics import Diagnostic
from .pragmas import PragmaIndex, collect_pragmas
from .registry import Rule, all_rule_classes

#: Paths never linted regardless of configuration.
_BUILTIN_EXCLUDES = [
    "tests/lint_fixtures/**",
    "**/__pycache__/**",
    ".git/**",
]


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: str  # posix-style path relative to the lint root
    source: str
    tree: ast.Module
    imports: ImportMap
    pragmas: PragmaIndex


def build_rules(config: LintConfig) -> List[Rule]:
    rules: List[Rule] = []
    for code, rule_cls in sorted(all_rule_classes().items()):
        if not config.rule_enabled(code):
            continue
        table = dict(config.rules.get(code, {}))
        include = table.pop("include", None) or list(rule_cls.default_include)
        exclude = list(rule_cls.default_exclude) + list(table.pop("exclude", []))
        options = dict(rule_cls.default_options)
        options.update(table)
        rules.append(rule_cls(include=list(include), exclude=exclude, options=options))
    return rules


def _excluded(path: str, config: LintConfig) -> bool:
    patterns = _BUILTIN_EXCLUDES + list(config.exclude)
    return any(fnmatch.fnmatch(path, pattern) for pattern in patterns)


def lint_source(
    source: str,
    path: str,
    config: LintConfig,
    rules: Optional[List[Rule]] = None,
) -> List[Diagnostic]:
    """Lint *source* as if it lived at *path* (posix, root-relative).

    This is the fixture-friendly entry point: tests lint snippet content
    under a declared virtual path so path-scoped rules fire without the
    snippet living in the real tree.
    """
    if rules is None:
        rules = build_rules(config)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code="RPL900",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        source=source,
        tree=tree,
        imports=ImportMap(tree),
        pragmas=collect_pragmas(source),
    )
    diagnostics: List[Diagnostic] = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for diag in rule.check(ctx):
            if not ctx.pragmas.suppresses(diag.code, diag.line):
                diagnostics.append(diag)
    return sorted(diagnostics)


def iter_python_files(paths: Iterable[Path], root: Path) -> Iterator[Path]:
    seen = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def relative_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths: Iterable[Path], config: LintConfig) -> List[Diagnostic]:
    rules = build_rules(config)
    diagnostics: List[Diagnostic] = []
    for file_path in iter_python_files(paths, config.root):
        rel = relative_path(file_path, config.root)
        if _excluded(rel, config):
            continue
        source = file_path.read_text(encoding="utf-8")
        diagnostics.extend(lint_source(source, rel, config, rules=rules))
    return sorted(diagnostics)
