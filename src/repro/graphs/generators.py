"""Workload graph generators.

All generators return a simple undirected :class:`networkx.Graph` whose nodes
are relabelled ``0 .. n-1`` and are fully determined by their ``seed``
argument.  The families cover the settings the paper's introduction and
related-work sections discuss: general graphs (Erdős–Rényi), battery-powered
wireless / sensor networks (random geometric graphs), bounded-degree and
regular topologies, trees, and a few adversarial shapes used in tests.
"""

from __future__ import annotations

import math
from typing import Optional

import networkx as nx

from repro.errors import UnknownFamilyError
from repro.rng import SeedLike, make_rng


def _normalize(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to ``0..n-1`` and drop self-loops / parallel edges."""
    graph = nx.Graph(graph)
    graph.remove_edges_from(nx.selfloop_edges(graph))
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")


def empty_graph(n: int) -> nx.Graph:
    """Return ``n`` isolated nodes (every node is in any MIS)."""
    graph = nx.empty_graph(n)
    return _normalize(graph)


def path_graph(n: int) -> nx.Graph:
    """Return the path on ``n`` nodes (diameter ``n - 1``)."""
    return _normalize(nx.path_graph(n))


def cycle_graph(n: int) -> nx.Graph:
    """Return the cycle on ``n`` nodes."""
    return _normalize(nx.cycle_graph(n))


def complete_graph(n: int) -> nx.Graph:
    """Return the clique on ``n`` nodes (any MIS is a single node)."""
    return _normalize(nx.complete_graph(n))


def star_graph(n: int) -> nx.Graph:
    """Return a star with one hub and ``n - 1`` leaves."""
    if n < 1:
        raise ValueError("star graph needs at least 1 node")
    return _normalize(nx.star_graph(n - 1))


def complete_bipartite_graph(a: int, b: int) -> nx.Graph:
    """Return ``K_{a,b}`` (the two sides are the only two MISs)."""
    return _normalize(nx.complete_bipartite_graph(a, b))


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """Return the ``rows x cols`` grid."""
    return _normalize(nx.grid_2d_graph(rows, cols))


def random_tree(n: int, seed: SeedLike = None) -> nx.Graph:
    """Return a uniformly random labelled tree on ``n`` nodes."""
    rng = make_rng(seed)
    if n <= 0:
        raise ValueError("tree needs at least 1 node")
    if n <= 2:
        return path_graph(n)
    # Random Prüfer sequence.
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    graph = nx.from_prufer_sequence(sequence)
    return _normalize(graph)


def binary_tree(depth: int) -> nx.Graph:
    """Return the complete binary tree of the given *depth*."""
    return _normalize(nx.balanced_tree(2, depth))


def gnp_graph(n: int, p: Optional[float] = None, seed: SeedLike = None,
              expected_degree: Optional[float] = None) -> nx.Graph:
    """Return an Erdős–Rényi ``G(n, p)`` graph.

    Exactly one of *p* and *expected_degree* must be provided; the latter sets
    ``p = expected_degree / (n - 1)``.
    """
    if (p is None) == (expected_degree is None):
        raise ValueError("provide exactly one of p / expected_degree")
    if p is None:
        p = min(1.0, expected_degree / max(1, n - 1))
    rng = make_rng(seed)
    graph = nx.gnp_random_graph(n, p, seed=rng.randrange(2**31))
    return _normalize(graph)


def random_geometric(n: int, radius: Optional[float] = None,
                     seed: SeedLike = None,
                     expected_degree: float = 8.0) -> nx.Graph:
    """Return a random geometric graph on the unit square.

    This is the classic model of a wireless sensor network — the motivating
    setting for the sleeping model.  When *radius* is omitted it is chosen so
    that the expected degree is roughly *expected_degree*.
    """
    if radius is None:
        radius = math.sqrt(expected_degree / (math.pi * max(1, n - 1)))
    rng = make_rng(seed)
    graph = nx.random_geometric_graph(n, radius, seed=rng.randrange(2**31))
    return _normalize(graph)


def random_regular(n: int, degree: int, seed: SeedLike = None) -> nx.Graph:
    """Return a random *degree*-regular graph (``n * degree`` must be even)."""
    rng = make_rng(seed)
    graph = nx.random_regular_graph(degree, n, seed=rng.randrange(2**31))
    return _normalize(graph)


def barabasi_albert(n: int, attachments: int = 3, seed: SeedLike = None) -> nx.Graph:
    """Return a Barabási–Albert preferential-attachment (power-law) graph."""
    rng = make_rng(seed)
    graph = nx.barabasi_albert_graph(n, attachments, seed=rng.randrange(2**31))
    return _normalize(graph)


def caveman(cliques: int, clique_size: int, rewire: float = 0.1,
            seed: SeedLike = None) -> nx.Graph:
    """Return a relaxed-caveman graph: dense clusters with sparse rewiring."""
    rng = make_rng(seed)
    graph = nx.relaxed_caveman_graph(cliques, clique_size, rewire,
                                     seed=rng.randrange(2**31))
    return _normalize(graph)


def bounded_degree_graph(n: int, max_degree: int, seed: SeedLike = None) -> nx.Graph:
    """Return a random graph whose maximum degree is at most *max_degree*.

    Built by sampling random candidate edges and keeping those that do not
    violate the degree cap; used by the Lemma 3 shattering experiments, which
    are parameterised by the maximum degree Δ.
    """
    if max_degree < 0:
        raise ValueError("max_degree must be non-negative")
    rng = make_rng(seed)
    graph = nx.empty_graph(n)
    degrees = {v: 0 for v in range(n)}
    attempts = 4 * n * max(1, max_degree)
    for _ in range(attempts):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or graph.has_edge(u, v):
            continue
        if degrees[u] >= max_degree or degrees[v] >= max_degree:
            continue
        graph.add_edge(u, v)
        degrees[u] += 1
        degrees[v] += 1
    return _normalize(graph)


#: Registry of named graph families used by the CLI and the sweep harness.
FAMILIES = {
    "gnp": lambda n, seed=None: gnp_graph(n, expected_degree=8.0, seed=seed),
    "gnp_dense": lambda n, seed=None: gnp_graph(n, expected_degree=32.0, seed=seed),
    "rgg": lambda n, seed=None: random_geometric(n, seed=seed),
    "tree": lambda n, seed=None: random_tree(n, seed=seed),
    "path": lambda n, seed=None: path_graph(n),
    "cycle": lambda n, seed=None: cycle_graph(n),
    "regular": lambda n, seed=None: random_regular(n, degree=6, seed=seed),
    "powerlaw": lambda n, seed=None: barabasi_albert(n, seed=seed),
    "caveman": lambda n, seed=None: caveman(max(2, n // 8), 8, seed=seed),
    "clique": lambda n, seed=None: complete_graph(n),
    "star": lambda n, seed=None: star_graph(n),
}


def to_csr(graph: nx.Graph):
    """Convert *graph* to flat CSR arrays (:class:`repro.graphs.csr.CSRGraph`).

    Port numbering matches ``Network(graph)`` exactly, so simulating over
    the CSR representation is byte-identical to the adjacency-list one.
    """
    from repro.graphs.csr import CSRGraph

    return CSRGraph.from_graph(graph)


def build_csr(name: str, n: int, seed: SeedLike = None):
    """Generate family *name* and return it as CSR arrays directly.

    This is what the worker's shared-memory graph cache serialises: the
    generators above stay networkx-based (they lean on ``nx`` builders),
    but everything downstream of the cache only ever sees the flat
    arrays.
    """
    return to_csr(by_name(name, n, seed=seed))


def by_name(name: str, n: int, seed: SeedLike = None) -> nx.Graph:
    """Return the graph family *name* instantiated with *n* nodes.

    Raises :class:`repro.errors.UnknownFamilyError` (a
    :class:`ConfigurationError` that is also a :class:`KeyError`) for an
    unregistered name, so the CLI renders the message cleanly instead of
    printing a repr-quoted ``KeyError``.
    """
    if name not in FAMILIES:
        raise UnknownFamilyError(
            f"unknown graph family '{name}'; known: {sorted(FAMILIES)}"
        )
    return FAMILIES[name](n, seed=seed)
