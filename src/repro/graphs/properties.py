"""Basic structural statistics of workload graphs.

Used by the experiment harness to annotate result tables (the paper's bounds
are parameterised by ``n`` and the maximum degree Δ) and by tests that need
to reason about component structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for a workload graph."""

    nodes: int
    edges: int
    max_degree: int
    average_degree: float
    components: int
    largest_component: int

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary."""
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "max_degree": self.max_degree,
            "average_degree": round(self.average_degree, 3),
            "components": self.components,
            "largest_component": self.largest_component,
        }


def graph_stats(graph: nx.Graph) -> GraphStats:
    """Compute :class:`GraphStats` for *graph*."""
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    degrees = [d for _, d in graph.degree()]
    components = list(nx.connected_components(graph)) if n else []
    return GraphStats(
        nodes=n,
        edges=m,
        max_degree=max(degrees) if degrees else 0,
        average_degree=(2.0 * m / n) if n else 0.0,
        components=len(components),
        largest_component=max((len(c) for c in components), default=0),
    )


def component_sizes(graph: nx.Graph) -> List[int]:
    """Return connected-component sizes in decreasing order."""
    return sorted((len(c) for c in nx.connected_components(graph)), reverse=True)


def degree_histogram(graph: nx.Graph) -> Dict[int, int]:
    """Return ``{degree: count}`` for *graph*."""
    histogram: Dict[int, int] = {}
    for _, degree in graph.degree():
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))
