"""Basic structural statistics of workload graphs.

Used by the experiment harness to annotate result tables (the paper's bounds
are parameterised by ``n`` and the maximum degree Δ) and by tests that need
to reason about component structure.

Works on networkx graphs and on CSR-backed graphs
(:class:`repro.graphs.csr.CSRGraphView`) alike: CSR inputs take an
array-at-a-time path — degrees are one subtraction over the offsets array,
the histogram is one ``bincount``, and connected components come from
min-label propagation with pointer compression — so annotating a large
sweep graph costs no per-node Python at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from repro.graphs.csr import CSRGraph, CSRGraphView

try:  # optional: CSR statistics fall back to per-row loops without numpy
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    _numpy = None


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for a workload graph."""

    nodes: int
    edges: int
    max_degree: int
    average_degree: float
    components: int
    largest_component: int

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary."""
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "max_degree": self.max_degree,
            "average_degree": round(self.average_degree, 3),
            "components": self.components,
            "largest_component": self.largest_component,
        }


def _as_csr(graph) -> Optional[CSRGraph]:
    """Return the backing :class:`CSRGraph` when *graph* is CSR-based."""
    if isinstance(graph, CSRGraphView):
        return graph.csr
    if isinstance(graph, CSRGraph):
        return graph
    return None


def _csr_component_labels(csr: CSRGraph):
    """Per-node component labels (lowest member index) for *csr*.

    Min-label propagation: every node repeatedly adopts the smallest label
    in its closed neighbourhood, with full pointer compression
    (``comp = comp[comp]`` to a fixed point) between sweeps, so even a
    path graph converges in O(log n) compression steps per sweep rather
    than one sweep per hop.
    """
    np = _numpy
    offsets, neighbors, _, _ = csr.as_arrays()
    n = csr.n
    comp = np.arange(n, dtype=np.int64)
    if neighbors.size == 0:
        return comp
    nonempty = (offsets[1:] - offsets[:-1]) > 0
    starts = offsets[:-1][nonempty]
    while True:
        candidate = comp.copy()
        candidate[nonempty] = np.minimum(
            candidate[nonempty],
            np.minimum.reduceat(comp[neighbors], starts))
        while True:
            compressed = candidate[candidate]
            if np.array_equal(compressed, candidate):
                break
            candidate = compressed
        if np.array_equal(candidate, comp):
            return comp
        comp = candidate


def _csr_component_counts(csr: CSRGraph) -> List[int]:
    """Connected-component sizes of *csr* (unordered)."""
    if csr.n == 0:
        return []
    _, counts = _numpy.unique(_csr_component_labels(csr), return_counts=True)
    return [int(count) for count in counts]


def graph_stats(graph) -> GraphStats:
    """Compute :class:`GraphStats` for *graph* (networkx or CSR-backed)."""
    csr = _as_csr(graph)
    if csr is not None and _numpy is not None:
        offsets = csr.as_arrays()[0]
        degrees = offsets[1:] - offsets[:-1]
        counts = _csr_component_counts(csr)
        return GraphStats(
            nodes=csr.n,
            edges=csr.m,
            max_degree=int(degrees.max()) if csr.n else 0,
            average_degree=(2.0 * csr.m / csr.n) if csr.n else 0.0,
            components=len(counts),
            largest_component=max(counts, default=0),
        )
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    degrees = [d for _, d in graph.degree()]
    components = list(nx.connected_components(graph)) if n else []
    return GraphStats(
        nodes=n,
        edges=m,
        max_degree=max(degrees) if degrees else 0,
        average_degree=(2.0 * m / n) if n else 0.0,
        components=len(components),
        largest_component=max((len(c) for c in components), default=0),
    )


def component_sizes(graph) -> List[int]:
    """Return connected-component sizes in decreasing order."""
    csr = _as_csr(graph)
    if csr is not None and _numpy is not None:
        return sorted(_csr_component_counts(csr), reverse=True)
    return sorted((len(c) for c in nx.connected_components(graph)), reverse=True)


def degree_histogram(graph) -> Dict[int, int]:
    """Return ``{degree: count}`` for *graph*."""
    csr = _as_csr(graph)
    if csr is not None and _numpy is not None:
        offsets = csr.as_arrays()[0]
        degrees = offsets[1:] - offsets[:-1]
        counts = _numpy.bincount(degrees) if csr.n else _numpy.empty(0, int)
        return {int(degree): int(count)
                for degree, count in enumerate(counts) if count}
    histogram: Dict[int, int] = {}
    for _, degree in graph.degree():
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))
