"""Flat CSR adjacency arrays — the shareable graph representation.

A :class:`CSRGraph` stores a simple undirected graph as four flat int64
arrays:

- ``offsets`` (``n + 1`` words): row ``i``'s neighbours live at
  ``neighbors[offsets[i]:offsets[i + 1]]``, sorted ascending.
- ``neighbors`` (``2m`` words): neighbour *indices* (0-based row numbers,
  not labels).
- ``arrivals`` (``2m`` words): ``arrivals[offsets[i] + p]`` is the port on
  which node ``i``'s port-``p`` neighbour receives messages *from* ``i`` —
  precomputed so a network view needs no per-node dictionaries at all.
- ``labels`` (``n`` words): the original node labels, in ``graph.nodes``
  order.  Rows are built in this same order and per-row neighbours are
  sorted by index, exactly mirroring :class:`repro.sim.network.Network`'s
  port numbering, so simulations over either representation are
  byte-identical.

The arrays serialise into one contiguous buffer (``pack_into`` /
``from_buffer``) with a small header, which is what the worker's
``multiprocessing.shared_memory`` graph cache maps read-only into every
slot process: :meth:`CSRGraph.from_buffer` is zero-copy (memoryview
slices over the segment), so attaching a cached graph costs O(1)
regardless of size.

:class:`CSRGraphView` wraps the arrays in the small read-only subset of
the :mod:`networkx` API the harness and verifiers use (``nodes``,
``edges``, ``neighbors``, ``number_of_nodes`` …), so a CSR-backed graph
can flow through ``run_mis`` unchanged.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

try:  # optional: every numpy path below has a pure-Python fallback
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    _numpy = None

#: First header word of every serialised CSR buffer ("CSRG"); attaching a
#: shared-memory segment that does not start with it fails loudly instead
#: of mis-slicing garbage.
MAGIC = 0x43535247

_WORD_FORMAT = "q"
WORD_BYTES = 8
HEADER_WORDS = 3  # MAGIC, n, m


def _as_words(buffer: Any) -> memoryview:
    """Return *buffer* as a flat int64 memoryview (zero-copy)."""
    view = memoryview(buffer)
    if view.format != _WORD_FORMAT or view.itemsize != WORD_BYTES:
        view = view.cast("B").cast(_WORD_FORMAT)
    return view


def _np_int64_view(words: memoryview, writable: bool = False) -> Any:
    """Zero-copy int64 numpy view over a word memoryview.

    ``np.frombuffer`` needs a byte-format view, so we cast through ``"B"``;
    the cast preserves the underlying address, never copies.  Read-only
    views are marked unwriteable so a caller cannot mutate a shared CSR
    buffer through them by accident.
    """
    np = _numpy
    if len(words) == 0:
        return np.empty(0, dtype=np.int64)
    view = memoryview(words)
    array_view = np.frombuffer(view.cast("B"), dtype=np.int64)
    if not writable:
        array_view = array_view.view()
        array_view.flags.writeable = False
    return array_view


def _np_as_word_view(np_array: Any) -> memoryview:
    """Expose an int64 numpy array as a ``"q"``-format memoryview.

    numpy int64 buffers report platform format ``"l"`` on LP64, which
    breaks format-checked memoryview slice assignment against
    ``array("q")`` storage — casting through ``"B"`` normalises it.
    """
    return memoryview(np_array).cast("B").cast(_WORD_FORMAT)


class CSRGraph:
    """Flat int64 CSR arrays for a simple undirected graph."""

    __slots__ = ("n", "m", "offsets", "neighbors", "arrivals", "labels",
                 "_owner")

    def __init__(self, n: int, m: int, offsets: memoryview,
                 neighbors: memoryview, arrivals: memoryview,
                 labels: memoryview, owner: Any = None) -> None:
        self.n = int(n)
        self.m = int(m)
        self.offsets = offsets
        self.neighbors = neighbors
        self.arrivals = arrivals
        self.labels = labels
        # Keeps the backing storage (e.g. a SharedMemory mapping) alive for
        # as long as any view of these arrays is.
        self._owner = owner

    # -- construction ---------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Any) -> "CSRGraph":
        """Build CSR arrays from a networkx-style graph.

        Node order and per-row neighbour order match what
        ``Network(graph)`` computes, so port numbering — and therefore
        every simulated byte — is identical between representations.
        """
        if graph.is_directed() or graph.is_multigraph():
            raise ConfigurationError(
                "CSR graphs require a simple undirected graph")
        label_list = list(graph.nodes)
        n = len(label_list)
        index_of: Dict[Any, int] = {label: index
                                    for index, label in enumerate(label_list)}
        for label in label_list:
            if not isinstance(label, int) or isinstance(label, bool):
                raise ConfigurationError(
                    "CSR graphs require integer node labels; got "
                    f"{label!r}")
        adjacency: List[List[int]] = []
        for index, label in enumerate(label_list):
            row = sorted(index_of[neighbor]
                         for neighbor in graph.neighbors(label))
            if index in row:
                raise ConfigurationError(
                    f"CSR graphs reject self-loops (node {label!r})")
            adjacency.append(row)

        if _numpy is not None:
            return cls._from_adjacency_numpy(n, adjacency, label_list)

        offsets = array(_WORD_FORMAT, [0]) * (n + 1)
        for index, row in enumerate(adjacency):
            offsets[index + 1] = offsets[index] + len(row)
        directed_m = offsets[n] if n else 0
        neighbors = array(_WORD_FORMAT)
        for row in adjacency:
            neighbors.extend(row)
        arrivals = array(_WORD_FORMAT, [0]) * directed_m
        for u, row in enumerate(adjacency):
            base = offsets[u]
            for port, v in enumerate(row):
                arrivals[base + port] = bisect_left(adjacency[v], u)
        labels = array(_WORD_FORMAT, label_list)
        return cls(n, directed_m // 2, memoryview(offsets),
                   memoryview(neighbors), memoryview(arrivals),
                   memoryview(labels))

    @classmethod
    def _from_adjacency_numpy(cls, n: int, adjacency: List[List[int]],
                              label_list: List[int]) -> "CSRGraph":
        """Array-at-a-time twin of the pure-Python ``from_graph`` tail.

        Offsets come from one cumsum; the arrival-port table — the port on
        which each directed edge ``u -> v`` is received, i.e. the rank of
        ``u`` within ``adjacency[v]`` — comes from one lexsort: sorting
        edge ids by ``(dst, src)`` groups each destination's in-edges into
        its CSR block in source order, so an edge's arrival port is its
        sorted position minus its destination's block start.  Produces the
        exact arrays the bisect loop above does (pinned by tests).
        """
        np = _numpy
        degrees = np.fromiter((len(row) for row in adjacency),
                              dtype=np.int64, count=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        directed_m = int(offsets[-1]) if n else 0
        neighbors = np.fromiter(
            (neighbor for row in adjacency for neighbor in row),
            dtype=np.int64, count=directed_m)
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        position = np.empty(directed_m, dtype=np.int64)
        position[np.lexsort((src, neighbors))] = np.arange(
            directed_m, dtype=np.int64)
        arrivals = position - offsets[neighbors]
        labels = np.fromiter(label_list, dtype=np.int64, count=n)
        return cls(n, directed_m // 2, _np_as_word_view(offsets),
                   _np_as_word_view(neighbors), _np_as_word_view(arrivals),
                   _np_as_word_view(labels),
                   owner=(offsets, neighbors, arrivals, labels))

    @classmethod
    def from_buffer(cls, buffer: Any, owner: Any = None) -> "CSRGraph":
        """Attach to a serialised CSR buffer without copying.

        *owner* (typically a ``SharedMemory`` object) is retained so the
        mapping outlives every view handed out.
        """
        words = _as_words(buffer)
        if len(words) < HEADER_WORDS or words[0] != MAGIC:
            raise ConfigurationError(
                "buffer does not hold a CSR graph (bad magic)")
        n, m = words[1], words[2]
        expected = HEADER_WORDS + (n + 1) + 4 * m + n
        if n < 0 or m < 0 or len(words) < expected:
            raise ConfigurationError(
                f"CSR buffer truncated: header says n={n} m={m} "
                f"({expected} words) but only {len(words)} are present")
        cursor = HEADER_WORDS
        offsets = words[cursor:cursor + n + 1]
        cursor += n + 1
        neighbors = words[cursor:cursor + 2 * m]
        cursor += 2 * m
        arrivals = words[cursor:cursor + 2 * m]
        cursor += 2 * m
        labels = words[cursor:cursor + n]
        return cls(n, m, offsets, neighbors, arrivals, labels, owner=owner)

    # -- serialisation --------------------------------------------------

    @property
    def word_count(self) -> int:
        return HEADER_WORDS + (self.n + 1) + 4 * self.m + self.n

    @property
    def nbytes(self) -> int:
        return WORD_BYTES * self.word_count

    def pack_into(self, buffer: Any) -> None:
        """Serialise into a writable *buffer* of at least ``nbytes``."""
        words = _as_words(buffer)
        if len(words) < self.word_count:
            raise ConfigurationError(
                f"buffer holds {len(words)} words; this CSR graph needs "
                f"{self.word_count}")
        words[0] = MAGIC
        words[1] = self.n
        words[2] = self.m
        cursor = HEADER_WORDS
        if _numpy is not None:
            # One flat int64 destination view; each segment lands as a
            # single vectorised copy instead of a word-format slice assign.
            destination = _np_int64_view(words, writable=True)
            for segment in (self.offsets, self.neighbors, self.arrivals,
                            self.labels):
                length = len(segment)
                destination[cursor:cursor + length] = _np_int64_view(segment)
                cursor += length
            return
        for segment in (self.offsets, self.neighbors, self.arrivals,
                        self.labels):
            words[cursor:cursor + len(segment)] = segment
            cursor += len(segment)

    def to_bytes(self) -> bytes:
        buffer = bytearray(self.nbytes)
        self.pack_into(buffer)
        return bytes(buffer)

    # -- accessors ------------------------------------------------------

    def as_arrays(self) -> Tuple[Any, Any, Any, Any]:
        """Zero-copy read-only numpy views ``(offsets, neighbors, arrivals,
        labels)`` over the CSR buffers.

        Works for any backing storage — ``array`` module storage, numpy
        owners, and ``SharedMemory`` mappings alike — because the views are
        built with ``np.frombuffer`` over the existing memoryviews; nothing
        is copied.  Raises :class:`ConfigurationError` when numpy is not
        installed (every consumer gates on availability first).
        """
        if _numpy is None:  # pragma: no cover - numpy-less hosts
            raise ConfigurationError(
                "CSRGraph.as_arrays() requires numpy")
        return (_np_int64_view(self.offsets), _np_int64_view(self.neighbors),
                _np_int64_view(self.arrivals), _np_int64_view(self.labels))

    def degree(self, index: int) -> int:
        return self.offsets[index + 1] - self.offsets[index]

    def neighbor_row(self, index: int) -> memoryview:
        """Sorted neighbour indices of row *index* (zero-copy slice)."""
        return self.neighbors[self.offsets[index]:self.offsets[index + 1]]

    def arrival_row(self, index: int) -> memoryview:
        """Arrival ports aligned with :meth:`neighbor_row` (zero-copy)."""
        return self.arrivals[self.offsets[index]:self.offsets[index + 1]]

    def view(self) -> "CSRGraphView":
        return CSRGraphView(self)


class _NodeView:
    """Read-only stand-in for ``networkx.Graph.nodes``."""

    __slots__ = ("_labels", "_members")

    def __init__(self, labels: memoryview) -> None:
        self._labels = labels
        self._members: Optional[frozenset] = None  # built lazily on first `in`

    def __call__(self) -> "_NodeView":
        return self

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[int]:
        return iter(self._labels)

    def __contains__(self, label: Any) -> bool:
        if self._members is None:
            self._members = frozenset(self._labels)
        return label in self._members


class _EdgeView:
    """Read-only stand-in for ``networkx.Graph.edges`` (each edge once)."""

    __slots__ = ("_csr",)

    def __init__(self, csr: CSRGraph) -> None:
        self._csr = csr

    def __call__(self) -> "_EdgeView":
        return self

    def __len__(self) -> int:
        return self._csr.m

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        csr = self._csr
        offsets, neighbors, labels = csr.offsets, csr.neighbors, csr.labels
        for u in range(csr.n):
            for cursor in range(offsets[u], offsets[u + 1]):
                v = neighbors[cursor]
                if u < v:
                    yield (labels[u], labels[v])


class CSRGraphView:
    """The read-only networkx API subset, backed by flat CSR arrays.

    Exposes exactly what ``run_mis`` and the MIS verifiers touch:
    ``nodes`` / ``edges`` views, ``neighbors``, node/edge counts, and the
    directed/multigraph predicates.  ``run_protocol`` recognises this
    type and builds a zero-copy :class:`repro.sim.network.CSRNetwork`
    instead of re-deriving adjacency dictionaries.
    """

    __slots__ = ("_csr", "_index_of")

    def __init__(self, csr: CSRGraph) -> None:
        self._csr = csr
        self._index_of: Optional[Dict[int, int]] = None

    @property
    def csr(self) -> CSRGraph:
        return self._csr

    def _index(self, label: Any) -> int:
        if self._index_of is None:
            self._index_of = {node: index for index, node
                              in enumerate(self._csr.labels)}
        return self._index_of[label]

    # -- networkx surface ----------------------------------------------

    @property
    def nodes(self) -> _NodeView:
        return _NodeView(self._csr.labels)

    @property
    def edges(self) -> _EdgeView:
        return _EdgeView(self._csr)

    def is_directed(self) -> bool:
        return False

    def is_multigraph(self) -> bool:
        return False

    def number_of_nodes(self) -> int:
        return self._csr.n

    def number_of_edges(self) -> int:
        return self._csr.m

    def order(self) -> int:
        return self._csr.n

    def neighbors(self, label: Any) -> Iterator[int]:
        csr = self._csr
        index = self._index(label)
        labels = csr.labels
        for cursor in range(csr.offsets[index], csr.offsets[index + 1]):
            yield labels[csr.neighbors[cursor]]

    def has_edge(self, u: Any, v: Any) -> bool:
        try:
            row = self._csr.neighbor_row(self._index(u))
            target = self._index(v)
        except KeyError:
            return False
        cursor = bisect_left(row, target)
        return cursor < len(row) and row[cursor] == target

    def __len__(self) -> int:
        return self._csr.n

    def __iter__(self) -> Iterator[int]:
        return iter(self._csr.labels)

    def __contains__(self, label: Any) -> bool:
        return label in self.nodes
