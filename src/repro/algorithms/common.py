"""Shared helpers for the distributed MIS protocols.

All MIS protocols in this package follow the same output convention: the
per-node generator returns a :class:`MISDecision` whose ``in_mis`` flag says
whether the node joined the MIS.  The experiment harness converts a
:class:`repro.sim.runner.RunResult` of such a protocol into the MIS set with
:func:`mis_from_result`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.sim.runner import RunResult

#: Node states used by every protocol, mirroring the paper's terminology.
UNDECIDED = "undecided"
IN_MIS = "inMIS"
NOT_IN_MIS = "notinMIS"


@dataclass
class MISDecision:
    """Return value of one node's MIS protocol instance.

    Attributes
    ----------
    in_mis:
        True when the node joined the MIS.
    decided_round:
        The absolute round in which the node's state became decided (used by
        tests and by the trace-based examples).
    detail:
        Optional protocol-specific diagnostic payload (e.g. the batch chosen
        by Awake-MIS, or the component rank assigned by LDT-MIS).
    """

    in_mis: bool
    decided_round: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:  # allows RunResult.output_set() to work
        return self.in_mis


def mis_from_result(result: RunResult) -> Set:
    """Extract the MIS (as a set of graph labels) from a protocol run."""
    mis = set()
    for label, output in result.outputs.items():
        if isinstance(output, MISDecision):
            if output.in_mis:
                mis.add(label)
        elif output:
            mis.add(label)
    return mis


def neighbor_states_in_mis(inbox: List) -> bool:
    """Return True if any received message reports the sender is in the MIS.

    The protocols exchange their state as one of the three state strings (or
    as tuples whose first element is the state string).
    """
    for _, payload in inbox:
        state = payload[0] if isinstance(payload, tuple) else payload
        if state == IN_MIS:
            return True
    return False
