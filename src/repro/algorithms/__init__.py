"""Distributed MIS algorithms: the paper's and the baselines.

The paper's algorithms:

* :func:`repro.algorithms.vt_mis.vt_mis_protocol` — ``VT-MIS`` (Lemma 10)
* :mod:`repro.algorithms.ldt_mis` — ``LDT-MIS`` / ``LDT-MIS-ROUND``
  (Lemma 11 / Corollary 12)
* :mod:`repro.algorithms.awake_mis` — ``Awake-MIS`` (Theorem 13 /
  Corollary 14)

Baselines used by the comparison experiments:

* :func:`repro.algorithms.luby.luby_protocol` — Luby's O(log n) algorithm
* :func:`repro.algorithms.rank_greedy.rank_greedy_protocol` — parallel
  randomized greedy (Fischer–Noever)
* :func:`repro.algorithms.naive_greedy.naive_greedy_protocol` — the naive
  O(I)-awake distributed greedy that VT-MIS improves exponentially

Every protocol returns a :class:`repro.algorithms.common.MISDecision` per
node; use :func:`repro.algorithms.common.mis_from_result` (or the harness) to
obtain the MIS as a set of graph labels.
"""

from repro.algorithms.common import (
    IN_MIS,
    MISDecision,
    NOT_IN_MIS,
    UNDECIDED,
    mis_from_result,
)

__all__ = [
    "IN_MIS",
    "MISDecision",
    "NOT_IN_MIS",
    "UNDECIDED",
    "mis_from_result",
]
