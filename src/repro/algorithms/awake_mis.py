"""Algorithm ``Awake-MIS`` (paper Section 6, Algorithm 1, Theorem 13).

``Awake-MIS`` computes the lexicographically-first MIS with respect to a
uniformly random node ordering in ``O(log log n)`` awake rounds:

1.  every node independently picks a batch ``(i, j)``: the *group* ``i`` with
    probability proportional to ``2^i`` (so group sizes grow geometrically
    and the residual-sparsity Lemma 2 keeps the undecided subgraph sparse)
    and the *slot* ``j`` uniformly among ``2 * Delta'`` slots (so Lemma 3
    shatters each slot into ``O(log n)``-sized components);
2.  batches are processed in lexicographic order, one *phase* per batch; the
    first round of each phase is a communication round in which decided
    nodes report their state and undecided nodes listen — nodes attend only
    the communication rounds of their virtual-tree communication set
    ``S_g(batch)``, i.e. ``O(log log n)`` of them;
3.  the remaining rounds of a node's own phase run ``LDT-MIS`` over the
    still-undecided nodes of its batch, whose connected components are
    ``O(log n)``-sized w.h.p., so this also costs ``O(log log n)``-ish awake
    rounds (``O(log log n · log* n)`` with the Appendix-A construction, i.e.
    Corollary 14 — see DESIGN.md §2.4).

The constants of the paper's analysis (``Delta' = 9 ln(n^4)``, phase length
``O(log^5 n log log n)``) are exposed as :class:`AwakeMISParameters`; the
default ``scaled`` preset uses smaller constants that preserve the w.h.p.
guarantees at simulable scales, and the ``paper`` preset reproduces the
analysis constants verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import networkx as nx

from repro.algorithms.common import IN_MIS, MISDecision, NOT_IN_MIS, UNDECIDED
from repro.algorithms.ldt_mis import ldt_mis_core, ldt_mis_round_budget
from repro.core.virtual_tree import communication_set
from repro.rng import SeedLike
from repro.sim.actions import WakeCall
from repro.sim.context import NodeContext
from repro.sim.runner import RunResult, run_protocol


@dataclass(frozen=True)
class AwakeMISParameters:
    """All knobs of ``Awake-MIS`` (paper Section 6).

    Attributes
    ----------
    n:
        Number of nodes (or the polynomial upper bound ``N`` every node
        knows; the algorithm only uses it through the derived fields).
    ell:
        Number of geometric groups (the paper's ``l``).
    delta_prime:
        Half the number of slots per group (the paper's ``Delta'``); each
        group is split into ``2 * delta_prime`` batches.
    group_probabilities:
        ``group_probabilities[i - 1]`` is the probability a node joins group
        ``i``; sums to 1.
    n_bound:
        Upper bound (known to all nodes) on the size of any connected
        component handed to ``LDT-MIS`` — Lemma 3's ``6 ln(n / eps)``.
    id_space:
        Node IDs are drawn uniformly from ``[1, id_space]``.
    phase_length:
        Rounds per phase: one communication round plus the LDT-MIS budget.
    variant:
        ``"awake"`` (Theorem 13 flavour) or ``"round"`` (Corollary 14
        flavour); both currently share the Appendix-A LDT construction.
    """

    n: int
    ell: int
    delta_prime: int
    group_probabilities: Tuple[float, ...]
    n_bound: int
    id_space: int
    phase_length: int
    variant: str = "awake"
    preset: str = "scaled"

    @property
    def batch_count(self) -> int:
        """Total number of batches/phases ``ell * 2 * delta_prime``."""
        return self.ell * 2 * self.delta_prime

    @property
    def total_rounds(self) -> int:
        """Worst-case round complexity of the schedule."""
        return self.batch_count * self.phase_length

    @classmethod
    def scaled(cls, n: int, variant: str = "awake") -> "AwakeMISParameters":
        """Constants sized for simulation while keeping the w.h.p. structure.

        * group probabilities proportional to ``4 * 2^i * log2(n) / n``;
        * ``Delta' = ceil(6 * log2 n)`` so the expected number of same-batch
          undecided neighbours stays below ~2/3;
        * ``n_bound = ceil(6 * ln(16 n))`` (Lemma 3 with eps = 1/16).
        """
        n = max(2, n)
        log2n = max(1.0, math.log2(n))
        ell = max(1, int(math.floor(math.log2(max(2.0, n / (4.0 * log2n))))))
        delta_prime = max(3, math.ceil(6 * log2n))
        weights = [4.0 * (2 ** i) * log2n / n for i in range(1, ell)]
        head = sum(weights)
        if head >= 1.0 and weights:
            weights = [w / (head + 1e-9) * 0.5 for w in weights]
            head = sum(weights)
        probabilities = (*weights, max(0.0, 1.0 - head))
        n_bound = max(8, math.ceil(6.0 * math.log(16.0 * n)))
        id_space = max(64, (n + 2) ** 3)
        phase_length = 1 + ldt_mis_round_budget(n_bound, id_space) + 4
        return cls(
            n=n,
            ell=ell,
            delta_prime=delta_prime,
            group_probabilities=probabilities,
            n_bound=n_bound,
            id_space=id_space,
            phase_length=phase_length,
            variant=variant,
            preset="scaled",
        )

    @classmethod
    def paper(cls, n: int, variant: str = "awake") -> "AwakeMISParameters":
        """The analysis constants of Section 6 (huge; reference only).

        ``Delta' = ceil(9 ln(n^4))``, ``ell = ceil(log2 n - log2 log2 n)``,
        group probabilities ``10 * 2^i * log2(n) / n`` (truncated to a valid
        distribution), ``n_bound = ceil(6 ln(n^4))``.
        """
        n = max(4, n)
        log2n = max(1.0, math.log2(n))
        ell = max(1, math.ceil(log2n - math.log2(log2n)))
        delta_prime = max(3, math.ceil(9.0 * math.log(float(n) ** 4)))
        weights = []
        cumulative = 0.0
        for i in range(1, ell):
            w = min(max(0.0, 1.0 - cumulative), 10.0 * (2 ** i) * log2n / n)
            weights.append(w)
            cumulative += w
        probabilities = (*weights, max(0.0, 1.0 - cumulative))
        n_bound = max(8, math.ceil(6.0 * math.log(float(n) ** 4)))
        id_space = max(64, (n + 2) ** 3)
        phase_length = 1 + ldt_mis_round_budget(n_bound, id_space) + 4
        return cls(
            n=n,
            ell=ell,
            delta_prime=delta_prime,
            group_probabilities=probabilities,
            n_bound=n_bound,
            id_space=id_space,
            phase_length=phase_length,
            variant=variant,
            preset="paper",
        )


def choose_batch(rng, params: AwakeMISParameters) -> Tuple[int, int]:
    """Pick the batch pair ``(i, j)`` with the paper's distribution."""
    draw = rng.random()
    cumulative = 0.0
    group = params.ell
    for index, probability in enumerate(params.group_probabilities, start=1):
        cumulative += probability
        if draw < cumulative:
            group = index
            break
    slot = rng.randint(1, 2 * params.delta_prime)
    return group, slot


def batch_index(group: int, slot: int, params: AwakeMISParameters) -> int:
    """The lexicographic bijection ``g(i, j)`` onto ``[1, batch_count]``."""
    return (group - 1) * 2 * params.delta_prime + slot


def awake_mis_protocol(ctx: NodeContext):
    """Protocol factory for ``Awake-MIS``.

    Global inputs: ``awake_params`` (an :class:`AwakeMISParameters`).
    """
    params: AwakeMISParameters = ctx.require_input("awake_params")
    rng = ctx.rng
    my_id = rng.randint(1, params.id_space)
    group, slot = choose_batch(rng, params)
    my_batch = batch_index(group, slot, params)
    batch_count = params.batch_count
    phase_length = params.phase_length
    ports = list(ctx.ports)

    state = UNDECIDED
    comm_rounds = sorted(communication_set(my_batch, batch_count))
    ldt_awake_before = 0

    for phase in comm_rounds:
        communication_round = (phase - 1) * phase_length
        if state == UNDECIDED:
            inbox = yield WakeCall(round=communication_round, sends=[])
            if any(payload == IN_MIS for _, payload in inbox):
                state = NOT_IN_MIS
        else:
            yield WakeCall(
                round=communication_round,
                sends=[(port, state) for port in ports],
            )
        if phase == my_batch and state == UNDECIDED:
            state = yield from ldt_mis_core(
                my_id=my_id,
                id_space=params.id_space,
                ports=ports,
                n_bound=params.n_bound,
                start_round=communication_round + 1,
                rng=rng,
                variant=params.variant,
            )

    return MISDecision(
        in_mis=(state == IN_MIS),
        detail={
            "batch": (group, slot),
            "batch_index": my_batch,
            "id": my_id,
            "communication_rounds": len(comm_rounds),
            "ldt_awake_before": ldt_awake_before,
        },
    )


def run_awake_mis(graph: nx.Graph, seed: SeedLike = None,
                  preset: str = "scaled",
                  variant: str = "awake",
                  params: Optional[AwakeMISParameters] = None,
                  message_bit_limit: Optional[int] = None,
                  trace: bool = False,
                  max_active_rounds: int = 20_000_000) -> RunResult:
    """Run ``Awake-MIS`` on *graph* (harness / tests / benchmarks entry point)."""
    n = graph.number_of_nodes()
    if params is None:
        if preset == "paper":
            params = AwakeMISParameters.paper(n, variant=variant)
        else:
            params = AwakeMISParameters.scaled(n, variant=variant)
    return run_protocol(
        graph,
        awake_mis_protocol,
        inputs={"awake_params": params},
        seed=seed,
        message_bit_limit=message_bit_limit,
        trace=trace,
        max_active_rounds=max_active_rounds,
    )
