"""Parallel randomized greedy MIS (local-minimum rule).

This is the distributed implementation of randomized greedy MIS analysed by
Fischer and Noever (SODA 2018), which the paper cites as taking Θ(log n)
rounds: every node draws a random rank once; in each round, every undecided
node whose rank is a local minimum among its undecided neighbours joins the
MIS, and its neighbours drop out.  Unlike Luby's algorithm the ranks are
drawn once, so the output is exactly the LFMIS of the rank order — the same
combinatorial object VT-MIS / Awake-MIS compute, which makes this the natural
"traditional round-complexity" baseline for experiments E2 and E4.

Awake accounting: a node is awake two rounds per iteration until it decides
(rank exchange happens every iteration because undecided neighbour sets
shrink), giving Θ(log n) awake complexity w.h.p. — asymptotically the same as
Luby, but with the LFMIS output.
"""

from __future__ import annotations

from repro.algorithms.common import IN_MIS, MISDecision, NOT_IN_MIS, UNDECIDED
from repro.sim.actions import WakeCall
from repro.sim.context import NodeContext

#: Ranks are drawn from this space once per run.
RANK_SPACE = 2**48


def rank_greedy_protocol(ctx: NodeContext):
    """Protocol factory for the parallel randomized greedy (rank) MIS."""
    max_iterations = ctx.input("max_iterations", 4096)
    rank = ctx.rng.randrange(RANK_SPACE)
    ports = list(ctx.ports)
    state = UNDECIDED

    for iteration in range(max_iterations):
        base = 2 * iteration

        # Round 1: exchange (rank, state) with undecided neighbours.
        inbox = yield WakeCall(
            round=base,
            sends=[(port, ("rank", rank)) for port in ports],
        )
        neighbor_ranks = [
            payload[1]
            for _, payload in inbox
            if isinstance(payload, tuple) and payload[0] == "rank"
        ]
        wins = all(rank < other for other in neighbor_ranks)

        # Round 2: winners announce, losers listen.
        if wins:
            yield WakeCall(round=base + 1, sends=[(port, IN_MIS) for port in ports])
            return MISDecision(in_mis=True, decided_round=base + 1,
                               detail={"iterations": iteration + 1, "rank": rank})
        inbox = yield WakeCall(round=base + 1, sends=[])
        if any(payload == IN_MIS for _, payload in inbox):
            state = NOT_IN_MIS
            return MISDecision(in_mis=False, decided_round=base + 1,
                               detail={"iterations": iteration + 1, "rank": rank})

    raise RuntimeError(
        f"rank-greedy did not terminate within {max_iterations} iterations"
    )
