"""Algorithms ``LDT-MIS`` and ``LDT-MIS-ROUND`` (paper Subsection 5.3).

``LDT-MIS`` computes, over each connected component of the participating
nodes, the lexicographically-first MIS with respect to a *uniformly random*
ordering (rather than the ID ordering), in awake complexity that depends on
the component size ``n'`` rather than on the (possibly enormous) ID space:

1.  build a labeled distance tree over the component
    (:func:`repro.ldt.construct.ldt_construct`);
2.  rank the nodes and count them (:func:`repro.ldt.procedures.ldt_ranking`);
3.  the root draws a uniformly random permutation of ``[1, n'']`` and ships
    it down the tree in CONGEST-sized chunks; every node takes the entry at
    its rank as its new ID;
4.  run ``VT-MIS`` with the new IDs (whose bound is ``n''``, not ``I``).

*Reproduction note* (see DESIGN.md §2.4): both variants use the fully
specified ``LDT-Construct-Round`` of Appendix A, so the awake complexity of
the construction step carries the extra ``log* I`` factor of Corollary 12;
the ``variant`` parameter is kept so the two names in the paper both resolve
to runnable code and the harness can report them separately.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.algorithms.common import IN_MIS, MISDecision
from repro.algorithms.vt_mis import vt_mis_core
from repro.core.virtual_tree import communication_set  # noqa: F401  (re-export convenience)
from repro.ldt.construct import construction_rounds, ldt_construct
from repro.ldt.procedures import broadcast_chunks, ldt_ranking
from repro.ldt.schedule import block_length
from repro.rng import SeedLike, make_rng, random_unique_ids
from repro.sim.context import NodeContext
from repro.sim.runner import RunResult, run_protocol

#: Approximate number of payload bits a permutation chunk may use.  Kept well
#: below the harness's CONGEST budget of 64 * log2(N) bits.
PERMUTATION_CHUNK_BITS = 48


def permutation_entries_per_chunk(n_bound: int) -> int:
    """How many permutation entries fit in one CONGEST message."""
    bits_per_entry = max(1, math.ceil(math.log2(n_bound + 1))) + 2
    return max(1, PERMUTATION_CHUNK_BITS // bits_per_entry)


def permutation_chunk_count(n_bound: int) -> int:
    """Number of broadcast blocks needed to ship a permutation of [1, n_bound]."""
    return math.ceil(n_bound / permutation_entries_per_chunk(n_bound))


def ldt_mis_round_budget(n_bound: int, id_space: int) -> int:
    """Total rounds one ``LDT-MIS`` execution may use (globally known).

    Used by ``Awake-MIS`` to size its phases: construction + ranking (two
    blocks) + permutation broadcast + ``VT-MIS`` over at most ``n_bound``
    logical rounds, plus slack.
    """
    blk = block_length(n_bound)
    return (
        construction_rounds(n_bound, id_space)
        + 2 * blk
        + permutation_chunk_count(n_bound) * blk
        + n_bound
        + 4
    )


def ldt_mis_core(
    my_id: int,
    id_space: int,
    ports: Sequence[int],
    n_bound: int,
    start_round: int,
    rng: random.Random,
    variant: str = "awake",
):
    """Run ``LDT-MIS`` as a composable sub-protocol.

    Returns the final state string (``inMIS`` / ``notinMIS``).  The execution
    occupies at most :func:`ldt_mis_round_budget` rounds starting at
    *start_round*; participants are discovered automatically (neighbours that
    are awake on the same schedule), so *ports* may simply be all ports.
    """
    if variant not in ("awake", "round"):
        raise ValueError(f"unknown LDT-MIS variant '{variant}'")
    blk = block_length(n_bound)

    # Step 1: construct the LDT over this component.
    construction = yield from ldt_construct(
        my_id=my_id,
        id_space=id_space,
        ports=list(ports),
        n_bound=n_bound,
        start_round=start_round,
    )
    ldt = construction.ldt
    participant_ports = construction.participant_ports

    # Step 2: ranking (two blocks).
    ranking_start = start_round + construction_rounds(n_bound, id_space)
    rank, total = yield from ldt_ranking(ldt, n_bound, ranking_start)

    # Step 3: the root ships a uniformly random permutation of [1, total].
    perm_start = ranking_start + 2 * blk
    entries_per_chunk = permutation_entries_per_chunk(n_bound)
    chunk_count = permutation_chunk_count(n_bound)
    chunks: Optional[List[Tuple[int, ...]]] = None
    if ldt.is_root:
        permutation = list(range(1, total + 1))
        rng.shuffle(permutation)
        chunks = [
            tuple(permutation[i:i + entries_per_chunk])
            for i in range(0, len(permutation), entries_per_chunk)
        ]
    received_chunks = yield from broadcast_chunks(
        ldt, n_bound, perm_start, chunk_count, chunks
    )
    new_id = _entry_for_rank(received_chunks, rank, entries_per_chunk)
    if new_id is None:
        # Defensive fallback (a lost chunk would mean the component exceeded
        # n_bound); keep the rank so the run still terminates.
        new_id = rank

    # Step 4: VT-MIS over the new IDs, whose bound is the component size.
    vt_start = perm_start + chunk_count * blk
    state = yield from vt_mis_core(
        my_id=new_id,
        id_bound=max(1, total),
        ports=participant_ports,
        start_round=vt_start,
    )
    return state


def _entry_for_rank(chunks: List[Optional[Tuple[int, ...]]], rank: int,
                    entries_per_chunk: int) -> Optional[int]:
    """Pick the permutation entry for 1-based *rank* out of received chunks."""
    index = rank - 1
    chunk_index, offset = divmod(index, entries_per_chunk)
    if chunk_index >= len(chunks):
        return None
    chunk = chunks[chunk_index]
    if not isinstance(chunk, (tuple, list)) or offset >= len(chunk):
        return None
    return chunk[offset]


# --------------------------------------------------------------------------- #
# Standalone protocol + harness adapter
# --------------------------------------------------------------------------- #
def ldt_mis_harness_protocol(ctx: NodeContext):
    """Standalone LDT-MIS protocol (one execution over the whole graph).

    Global inputs: ``n_bound`` (upper bound on any component's size),
    ``id_space``; per-node ``local_inputs``: ``{"id": <unique int>}``.
    """
    n_bound = ctx.require_input("n_bound")
    id_space = ctx.require_input("id_space")
    variant = ctx.input("variant", "awake")
    if not isinstance(ctx.local_input, dict) or "id" not in ctx.local_input:
        raise ValueError(
            "ldt_mis_harness_protocol requires local_inputs {node: {'id': int}}"
        )
    my_id = ctx.local_input["id"]
    state = yield from ldt_mis_core(
        my_id=my_id,
        id_space=id_space,
        ports=ctx.ports,
        n_bound=n_bound,
        start_round=0,
        rng=ctx.rng,
        variant=variant,
    )
    return MISDecision(in_mis=(state == IN_MIS), detail={"id": my_id})


def run_ldt_mis(graph: nx.Graph, seed: SeedLike = None,
                message_bit_limit: Optional[int] = None,
                trace: bool = False,
                n_bound: Optional[int] = None,
                id_space: Optional[int] = None,
                variant: str = "awake",
                max_active_rounds: int = 10_000_000) -> RunResult:
    """Run standalone LDT-MIS on *graph* (used by the harness and tests)."""
    n = graph.number_of_nodes()
    if n_bound is None:
        components = list(nx.connected_components(graph)) if n else []
        n_bound = max((len(c) for c in components), default=1)
    if id_space is None:
        id_space = max(16, (n + 2) ** 3)
    rng = make_rng(seed)
    ids = random_unique_ids(n, id_space, rng)
    local_inputs: Dict = {
        label: {"id": ids[index]} for index, label in enumerate(graph.nodes)
    }
    return run_protocol(
        graph,
        ldt_mis_harness_protocol,
        inputs={"n_bound": n_bound, "id_space": id_space, "variant": variant},
        local_inputs=local_inputs,
        seed=seed,
        message_bit_limit=message_bit_limit,
        trace=trace,
        max_active_rounds=max_active_rounds,
    )
