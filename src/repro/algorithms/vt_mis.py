"""Algorithm ``VT-MIS`` (paper Subsection 5.3, Lemma 10).

``VT-MIS`` computes the lexicographically-first MIS with respect to the
nodes' IDs using the virtual-binary-tree coordination technique: the node
whose ID is ``k`` is awake exactly in the rounds of its communication set
``S_k([1, I])`` (which contains ``k`` itself), sends its current state in
each of those rounds, and decides in round ``k``.  Observation 5 guarantees
every lower-ID neighbour's decision reaches it in time, so the output is the
same LFMIS the sequential greedy scan would produce — with only
``O(log I)`` awake rounds per node instead of ``O(I)``.

The module provides both

* :func:`vt_mis_core` — a composable sub-protocol (used inside ``LDT-MIS``
  and therefore inside ``Awake-MIS``), and
* :func:`vt_mis_protocol` — a standalone protocol factory for the harness,
  which expects per-node IDs supplied through ``local_inputs`` (or draws
  random IDs from ``[1, N^3]`` when ``id_source="random"``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.algorithms.common import IN_MIS, MISDecision, NOT_IN_MIS, UNDECIDED
from repro.core.virtual_tree import communication_set
from repro.sim.actions import WakeCall
from repro.sim.context import NodeContext


def vt_mis_core(
    my_id: int,
    id_bound: int,
    ports: Iterable[int],
    start_round: int = 0,
    state: str = UNDECIDED,
):
    """Run the VT-MIS sub-protocol; returns the final state string.

    Parameters
    ----------
    my_id:
        This node's unique ID in ``[1, id_bound]``.
    id_bound:
        The common upper bound ``I`` on IDs; determines the virtual tree.
    ports:
        Ports of the participating neighbours.  Messages are exchanged only
        with them; other neighbours (if any) are ignored.
    start_round:
        Absolute round corresponding to the algorithm's logical round 1.
        Logical round ``r`` happens at absolute round ``start_round + r - 1``.
    state:
        Initial state; nodes already decided (e.g. dominated by a previous
        batch in Awake-MIS) never call this.

    The generator yields :class:`~repro.sim.actions.WakeCall` objects and must
    be driven with ``yield from`` inside a protocol generator.
    """
    if not 1 <= my_id <= id_bound:
        raise ValueError(f"ID {my_id} outside [1, {id_bound}]")
    ports = list(ports)
    awake_rounds = sorted(communication_set(my_id, id_bound))
    for logical_round in awake_rounds:
        absolute = start_round + logical_round - 1
        sends = [(port, state) for port in ports]
        inbox = yield WakeCall(round=absolute, sends=sends)
        if state == UNDECIDED:
            if any(payload == IN_MIS for _, payload in inbox):
                state = NOT_IN_MIS
            elif logical_round == my_id:
                state = IN_MIS
    return state


def vt_mis_protocol(ctx: NodeContext):
    """Standalone VT-MIS protocol factory.

    Global inputs
    -------------
    ``id_bound``:
        The ID upper bound ``I`` (required).
    ``id_source``:
        ``"local"`` (default): the node's ID comes from
        ``ctx.local_input["id"]``.  ``"random"``: the node draws a uniform ID
        from ``[1, id_bound]`` (callers must make the bound large enough that
        collisions are negligible; colliding IDs can break independence).

    Returns a :class:`~repro.algorithms.common.MISDecision`.
    """
    id_bound = ctx.require_input("id_bound")
    id_source = ctx.input("id_source", "local")
    if id_source == "random":
        my_id = ctx.rng.randint(1, id_bound)
    else:
        if not isinstance(ctx.local_input, dict) or "id" not in ctx.local_input:
            raise ValueError(
                "vt_mis_protocol with id_source='local' requires local_inputs "
                "of the form {node: {'id': <int>}}"
            )
        my_id = ctx.local_input["id"]
    final_state = yield from vt_mis_core(my_id, id_bound, ctx.ports)
    return MISDecision(
        in_mis=(final_state == IN_MIS),
        decided_round=my_id - 1,
        detail={"id": my_id, "id_bound": id_bound},
    )


def assign_sequential_ids(labels: List, seed_order: Optional[List] = None):
    """Build ``local_inputs`` assigning IDs ``1..n`` following *seed_order*.

    When *seed_order* is None the labels' natural order is used.  The helper
    is what the harness and tests use to hand VT-MIS a specific ordering so
    its output can be compared with the sequential LFMIS of the same order.
    """
    order = list(seed_order) if seed_order is not None else list(labels)
    return {label: {"id": position} for position, label in enumerate(order, start=1)}
