"""Luby's randomized MIS — the classical O(log n)-round baseline.

The paper contrasts its O(log log n) awake complexity against the
O(log n)-round algorithms of Luby / Alon–Babai–Itai, which in the sleeping
model translate into O(log n) awake complexity (a node can sleep nothing: it
must participate in every iteration until it decides).  This implementation
is the "random priority" variant:

Each iteration uses two rounds.

1. every undecided node draws a random priority and exchanges it with its
   (undecided, hence awake) neighbours; a node whose priority is a strict
   local minimum marks itself;
2. marked nodes join the MIS and announce ``inMIS``; undecided nodes that
   hear an announcement become ``notinMIS`` and terminate.

A node is awake for exactly two rounds per iteration until it decides, so
its awake complexity equals twice the number of iterations it survives —
Θ(log n) w.h.p. for worst-case graphs, which is exactly the baseline curve
experiments E1/E2 compare against.
"""

from __future__ import annotations

from repro.algorithms.common import IN_MIS, MISDecision, NOT_IN_MIS, UNDECIDED
from repro.sim.actions import WakeCall
from repro.sim.context import NodeContext

#: Priorities are drawn from [0, PRIORITY_SPACE); collisions simply cause the
#: colliding nodes to skip one iteration, so correctness never depends on
#: uniqueness.
PRIORITY_SPACE = 2**48

#: Rounds per Luby iteration (priority exchange + MIS announcement).
ROUNDS_PER_ITERATION = 2


def luby_protocol(ctx: NodeContext):
    """Protocol factory for Luby's MIS in the sleeping model.

    Global inputs: none are required; ``max_iterations`` optionally caps the
    number of iterations (defaults to a generous bound used only as a safety
    valve — the algorithm terminates with probability 1 regardless).
    """
    max_iterations = ctx.input("max_iterations", 4096)
    state = UNDECIDED
    ports = list(ctx.ports)

    for iteration in range(max_iterations):
        base = ROUNDS_PER_ITERATION * iteration
        priority = ctx.rng.randrange(PRIORITY_SPACE)

        # Round 1: exchange priorities with the still-undecided neighbours.
        inbox = yield WakeCall(
            round=base,
            sends=[(port, ("priority", priority)) for port in ports],
        )
        neighbor_priorities = [
            payload[1]
            for _, payload in inbox
            if isinstance(payload, tuple) and payload[0] == "priority"
        ]
        is_local_minimum = all(priority < other for other in neighbor_priorities)

        # Round 2: winners announce; losers listen.
        if is_local_minimum:
            inbox = yield WakeCall(
                round=base + 1,
                sends=[(port, IN_MIS) for port in ports],
            )
            state = IN_MIS
            return MISDecision(
                in_mis=True,
                decided_round=base + 1,
                detail={"iterations": iteration + 1},
            )
        inbox = yield WakeCall(round=base + 1, sends=[])
        if any(payload == IN_MIS for _, payload in inbox):
            state = NOT_IN_MIS
            return MISDecision(
                in_mis=False,
                decided_round=base + 1,
                detail={"iterations": iteration + 1},
            )

    raise RuntimeError(
        f"Luby did not terminate within {max_iterations} iterations "
        "(this indicates a bug or an absurdly small max_iterations)"
    )


def luby_vectorized(run):
    """Whole-round numpy twin of :func:`luby_protocol`.

    Byte-identity with the generator above is a hard contract (pinned by
    ``tests/test_vectorized.py``): one ``randrange`` per undecided node per
    iteration in ascending index order, the same message counts (round 1
    sends on every port, round 2 only winners send, a message is received
    only by awake — i.e. undecided — neighbours), the same termination
    rounds, the same :class:`MISDecision` payloads, and the same
    ``RuntimeError`` when ``max_iterations`` runs out.
    """
    np = run.np
    max_iterations = run.inputs.get("max_iterations", 4096)
    undecided = np.ones(run.n, dtype=bool)
    labels = run.labels
    draw = [rng.randrange for rng in run.rngs]
    # Decided nodes read as +inf in the priority array so a strict local
    # minimum among *undecided* neighbours is just a strict minimum over
    # all neighbours (any real priority is < INF, and empty rows win).
    INF = np.int64(1) << 62

    for iteration in range(max_iterations):
        idx = np.flatnonzero(undecided)
        if idx.size == 0:
            return
        base = ROUNDS_PER_ITERATION * iteration

        priorities = np.full(run.n, INF, dtype=np.int64)
        priorities[idx] = [draw[i](PRIORITY_SPACE) for i in idx.tolist()]

        # Round 1: every undecided node is awake, sends its priority on
        # every port, and receives one message per undecided neighbour.
        run.begin_round(base)
        run.record_awake(idx)
        run.messages_sent[idx] += run.degrees[idx]
        run.messages_received[idx] += run.row_count(undecided)[idx]
        winners = undecided & (priorities < run.row_min(priorities, empty=INF))

        # Round 2: winners announce on every port; every undecided node is
        # awake and hears one message per winning neighbour (0 for winners
        # themselves — no two adjacent strict local minima exist).
        run.begin_round(base + 1)
        run.record_awake(idx)
        run.messages_sent[winners] += run.degrees[winners]
        winning = run.row_count(winners)
        run.messages_received[idx] += winning[idx]

        losers = undecided & ~winners & (winning > 0)
        decided_idx = np.flatnonzero(winners | losers)
        if decided_idx.size:
            run.terminated_round[decided_idx] = base + 1
            outputs = run.outputs
            for i, won in zip(decided_idx.tolist(),
                              winners[decided_idx].tolist()):
                outputs[labels[i]] = MISDecision(
                    in_mis=won,
                    decided_round=base + 1,
                    detail={"iterations": iteration + 1},
                )
            undecided[decided_idx] = False

    raise RuntimeError(
        f"Luby did not terminate within {max_iterations} iterations "
        "(this indicates a bug or an absurdly small max_iterations)"
    )


#: Opt the generator protocol into the vectorized engine (see
#: ``repro.sim.vectorized``); the simulator discovers this attribute.
luby_protocol.vectorized_engine = luby_vectorized
