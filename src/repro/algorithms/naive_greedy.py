"""The naive distributed implementation of sequential greedy MIS.

This is the strawman the paper's Section 3 starts from: with unique IDs in
``[1, I]``, run ``I`` rounds; in round ``i`` every still-undecided node is
awake and transmits its state, and the node whose ID is ``i`` joins the MIS
unless a neighbour already did.  It computes exactly the same LFMIS as
``VT-MIS`` but with awake complexity Θ(I) instead of O(log I) — experiment E4
plots the two against each other.

Nodes terminate as soon as their state is decided and they have announced it
once (an MIS node must announce so its undecided neighbours become decided);
this early termination only reduces the awake complexity of the strawman, so
the comparison in E4 is conservative.
"""

from __future__ import annotations

from repro.algorithms.common import IN_MIS, MISDecision, NOT_IN_MIS, UNDECIDED
from repro.sim.actions import WakeCall
from repro.sim.context import NodeContext


def naive_greedy_protocol(ctx: NodeContext):
    """Protocol factory for the naive greedy MIS.

    Global inputs: ``id_bound`` (the common ID upper bound ``I``).  Per-node
    ``local_inputs`` must provide ``{"id": <int in [1, I]>}`` as for
    :func:`repro.algorithms.vt_mis.vt_mis_protocol`.
    """
    id_bound = ctx.require_input("id_bound")
    if not isinstance(ctx.local_input, dict) or "id" not in ctx.local_input:
        raise ValueError(
            "naive_greedy_protocol requires local_inputs of the form "
            "{node: {'id': <int>}}"
        )
    my_id = ctx.local_input["id"]
    if not 1 <= my_id <= id_bound:
        raise ValueError(f"ID {my_id} outside [1, {id_bound}]")

    state = UNDECIDED
    ports = list(ctx.ports)
    announced_in_mis = False

    for logical_round in range(1, id_bound + 1):
        sends = [(port, state) for port in ports]
        inbox = yield WakeCall(round=logical_round - 1, sends=sends)
        if state == IN_MIS:
            # The announcement has now been transmitted; we may stop.
            announced_in_mis = True
            return MISDecision(in_mis=True, decided_round=logical_round - 1,
                               detail={"id": my_id})
        if state == UNDECIDED:
            if any(payload == IN_MIS for _, payload in inbox):
                state = NOT_IN_MIS
                return MISDecision(in_mis=False, decided_round=logical_round - 1,
                                   detail={"id": my_id})
            if logical_round == my_id:
                state = IN_MIS
                # Keep looping: the next awake round transmits the decision.

    # Only reachable for the node whose ID equals id_bound and which joined
    # in the very last round: there is no later round to announce in, but no
    # neighbour can still be undecided (they all decided at or before their
    # own IDs, which are < id_bound).
    return MISDecision(in_mis=state == IN_MIS or announced_in_mis,
                       decided_round=id_bound - 1, detail={"id": my_id})
