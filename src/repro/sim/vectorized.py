"""Numpy-vectorized whole-round engine for dense, everyone-awake phases.

The third simulator engine (after the metered loop and the generator fast
loop of :mod:`repro.sim.runner`): protocols whose rounds are *dense* —
every undecided node awake every iteration, Luby-style — can compute whole
rounds as array operations over the flat CSR adjacency instead of resuming
one generator per node per round.

A protocol opts in by exposing a ``vectorized_engine`` attribute on its
factory (see ``repro.algorithms.luby``): a callable receiving one
:class:`VectorizedRun` — the CSR arrays as numpy views, the per-node RNG
streams, per-node metric arrays, and the same safety valves the other two
engines enforce.  The engine engages only when tracing is off, no bit limit
is set, and numpy is importable (exactly the gating discipline of the
generator fast path); everything else falls back, so results can never
depend on whether numpy is installed.

Byte-identity contract (pinned by ``tests/test_runner_semantics.py`` and
``tests/test_vectorized.py``): outputs, awake/round/message counts,
``awake_by_label``, termination rounds and error messages are identical to
both other engines.  In particular engines must draw from the *same*
per-node ``spawn_rng`` streams the generator path would — the streams are
spawned here in index order, exactly like ``Simulator.run`` does — and
consume the same number of draws per node, so a run is bit-for-bit
reproducible across all three engines.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.rng import SeedLike, spawn_rngs
from repro.sim.metrics import NodeMetrics, RunMetrics

try:  # gate, never require: the engine falls back when numpy is missing
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    _numpy = None

#: Sentinel for "never terminated" in the int64 terminated-round array.
_NEVER = -(2**62)


def numpy_or_none():
    """Return the numpy module, or ``None`` when it is not installed."""
    return _numpy


class VectorizedRun:
    """Mutable state handed to a protocol's vectorized engine.

    Exposes the graph as flat int64 numpy arrays (zero-copy views over the
    CSR buffers when the network is CSR-backed — including shared-memory
    segments), one private RNG per node (spawned in index order, exactly
    like the generator path), and the per-node metric arrays the engine
    fills in.  Engines record rounds through :meth:`begin_round` /
    :meth:`record_awake` so the livelock and awake-budget safety valves
    fire with the same messages as the other two engines.
    """

    def __init__(
        self,
        network,
        seed: SeedLike,
        inputs: Dict[str, Any],
        local_inputs: Dict[Any, Any],
        max_active_rounds: int,
        max_awake_per_node: int,
    ) -> None:
        np = _numpy
        if np is None:  # pragma: no cover - callers gate on numpy_or_none()
            raise RuntimeError("the vectorized engine requires numpy")
        self.np = np
        self.network = network
        self.inputs = inputs
        self.local_inputs = local_inputs
        self.n = network.size
        self.offsets, self.neighbors = _flat_adjacency(network, np)
        self.degrees = self.offsets[1:] - self.offsets[:-1]
        #: Graph labels in simulator index order (bulk lookup once; engines
        #: fill outputs for thousands of nodes per round).
        self.labels = network.labels()
        # reduceat segment starts, restricted to nonzero-degree rows (a
        # zero-length segment would make reduceat return the element *at*
        # the offset instead of the identity) — cached, the engines call
        # row_min/row_count several times per iteration.
        self._nonempty = self.degrees > 0
        self._starts = self.offsets[:-1][self._nonempty]
        #: One private generator per node, spawned in index order — the same
        #: derivation order ``Simulator.run`` uses, so streams are identical
        #: (``spawn_rngs`` is the batched twin of per-index ``spawn_rng``).
        self.rngs = spawn_rngs(seed, self.n)
        self.awake_rounds = np.zeros(self.n, dtype=np.int64)
        self.messages_sent = np.zeros(self.n, dtype=np.int64)
        self.messages_received = np.zeros(self.n, dtype=np.int64)
        self.terminated_round = np.full(self.n, _NEVER, dtype=np.int64)
        #: Graph label -> protocol return value, inserted in termination
        #: order (round order, then index order within a round) — the same
        #: insertion order the generator engines produce.
        self.outputs: Dict[Any, Any] = {}
        self.active_rounds = 0
        self.last_active_round: Optional[int] = None
        self._max_active_rounds = max_active_rounds
        self._max_awake_per_node = max_awake_per_node

    # -- round bookkeeping + safety valves ------------------------------

    def begin_round(self, round_index: int) -> None:
        """Count one active round; trip the livelock valve like the loops."""
        from repro.sim.runner import livelocked_error

        self.active_rounds += 1
        if self.active_rounds > self._max_active_rounds:
            raise livelocked_error(self._max_active_rounds)
        self.last_active_round = round_index

    def record_awake(self, indices) -> None:
        """Count one awake round for *indices* (ascending simulator order).

        The awake-budget valve raises for the lowest offending index —
        the same node the per-node loops (which iterate ascending) name.
        """
        from repro.sim.runner import awake_budget_error

        np = self.np
        updated = self.awake_rounds[indices] + 1
        self.awake_rounds[indices] = updated
        over = updated > self._max_awake_per_node
        if over.any():
            offender = int(indices[int(np.argmax(over))])
            raise awake_budget_error(self.labels[offender],
                                     self._max_awake_per_node)

    # -- whole-round array primitives -----------------------------------

    def row_min(self, values, empty):
        """Per-node minimum of *values* over each CSR neighbour row.

        ``values`` is indexed by node; rows with no neighbours read
        *empty*.  Implemented with ``np.minimum.reduceat`` over the
        offsets array; zero-length rows are masked out first because
        ``reduceat`` would otherwise return the element *at* the offset
        instead of the identity.
        """
        np = self.np
        out = np.full(self.n, empty, dtype=np.asarray(values).dtype)
        if self.neighbors.size == 0:
            return out
        out[self._nonempty] = np.minimum.reduceat(
            values[self.neighbors], self._starts)
        return out

    def row_count(self, mask):
        """Per-node count of neighbours for which *mask* is True."""
        np = self.np
        out = np.zeros(self.n, dtype=np.int64)
        if self.neighbors.size == 0:
            return out
        gathered = mask[self.neighbors].astype(np.int64)
        out[self._nonempty] = np.add.reduceat(gathered, self._starts)
        return out

    # -- result assembly -------------------------------------------------

    def to_result(self):
        """Package the filled-in state as a :class:`RunResult`."""
        from repro.sim.runner import RunResult, missing_outputs_error

        labels = self.labels
        awake = self.awake_rounds.tolist()
        sent = self.messages_sent.tolist()
        received = self.messages_received.tolist()
        terminated = self.terminated_round.tolist()
        per_node: List[NodeMetrics] = [
            NodeMetrics(
                awake_rounds=a,
                messages_sent=s,
                messages_received=r,
                terminated_round=(None if t == _NEVER else t),
            )
            for a, s, r, t in zip(awake, sent, received, terminated)
        ]
        metrics = RunMetrics(
            per_node=per_node,
            last_active_round=self.last_active_round,
            active_rounds=self.active_rounds,
            bits_metered=False,
        )
        awake_by_label = dict(zip(labels, awake))
        missing = [label for label in labels if label not in self.outputs]
        if missing:
            raise missing_outputs_error(missing)
        return RunResult(
            outputs=self.outputs,
            metrics=metrics,
            awake_by_label=awake_by_label,
            trace=None,
        )


def _flat_adjacency(network, np):
    """Return ``(offsets, neighbors)`` int64 arrays for *network*.

    CSR-backed networks hand out zero-copy ``np.frombuffer`` views over
    their flat buffers (shared-memory segments included); adjacency-list
    networks are flattened once.
    """
    tables = getattr(network, "csr_tables", lambda: None)()
    if tables is not None:
        offsets_words, neighbor_words, _ = tables
        return (_int64_view(offsets_words, np), _int64_view(neighbor_words, np))
    rows = network.neighbor_tables()
    n = len(rows)
    degrees = np.fromiter((len(row) for row in rows), dtype=np.int64, count=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    total = int(offsets[-1]) if n else 0
    neighbors = np.fromiter(
        (neighbor for row in rows for neighbor in row),
        dtype=np.int64, count=total)
    return offsets, neighbors


def _int64_view(words, np):
    """Zero-copy read-only int64 numpy view over a word buffer."""
    view = memoryview(words)
    if view.nbytes == 0:
        return np.empty(0, dtype=np.int64)
    array = np.frombuffer(view.cast("B"), dtype=np.int64)
    array.flags.writeable = False
    return array
