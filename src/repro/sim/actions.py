"""Protocol actions: the contract between node protocols and the runner.

Protocols in this library are Python *generator functions*.  Each node's
generator repeatedly yields a :class:`WakeCall` — "wake me up at absolute
round ``r``; in that round send these messages" — and is resumed with the
list of messages the node received in that round.  When the generator
returns, the node has terminated and its return value becomes the node's
output.

This mirrors the paper's sleeping model exactly:

* A node is awake in a round if and only if it yields a ``WakeCall`` for that
  round.  Rounds between two consecutive wake calls are sleeping rounds.
* In an awake round the node (1) performs local computation, (2) sends its
  queued messages, (3) receives the messages sent to it *in the same round*
  by awake neighbours.  Messages sent to a sleeping node are lost.
* The awake complexity of a node is simply the number of ``WakeCall``s it
  executes before terminating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

#: An outgoing message: (port, payload).
Send = Tuple[int, Any]
#: An incoming message: (arrival port, payload).
Receive = Tuple[int, Any]


@dataclass
class WakeCall:
    """One awake round requested by a protocol.

    Attributes
    ----------
    round:
        Absolute round number (non-negative integer) at which the node wants
        to be awake.  Must be strictly greater than the node's previous awake
        round.
    sends:
        Messages to transmit in that round, as ``(port, payload)`` pairs.
        Sending the same payload on every port ("broadcast to neighbours") is
        expressed by listing every port explicitly; helper
        :func:`broadcast_sends` builds that list.
    """

    round: int
    sends: List[Send] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError(f"round numbers are non-negative, got {self.round}")


def broadcast_sends(ports: Sequence[int], payload: Any) -> List[Send]:
    """Build a send list delivering *payload* on every port in *ports*."""
    return [(port, payload) for port in ports]


def listen(round_number: int) -> WakeCall:
    """Build a wake call that only listens (sends nothing) in *round_number*."""
    return WakeCall(round=round_number, sends=[])
