"""The SLEEPING-CONGEST round driver.

:class:`Simulator` executes one protocol instance per node of a
:class:`repro.sim.network.Network`.  Protocols are generator functions (see
:mod:`repro.sim.actions`); the driver advances global time from one *active*
round to the next, so algorithms whose round complexity is huge but whose
awake complexity is small (the whole point of the paper) simulate in time
proportional to the total number of awake node-rounds, not to the number of
rounds.

Round semantics (paper Section 1.3):

1. every node awake in round ``r`` performs local computation and queues its
   outgoing messages (this happened when its generator yielded the
   :class:`~repro.sim.actions.WakeCall`),
2. queued messages are transmitted,
3. a message is received only if its destination is awake in the same round
   ``r``; otherwise it is lost,
4. awake nodes then receive their inbox (the generator is resumed with it)
   and either terminate or schedule their next awake round.

Engines
-------

The driver has three interchangeable round engines; all of them produce
identical outputs and awake/round/message counts, so an engine can only
ever change wall-clock time, never bytes:

1. The **metered loop** (:meth:`Simulator._drive_metered`) handles tracing
   and CONGEST bit accounting.  It runs whenever ``trace=True`` or a
   ``message_bit_limit`` is set — note that
   :func:`repro.experiments.harness.run_mis` enforces CONGEST by default,
   so sweeps stay on this loop unless ``enforce_congest=False``.
2. The **generator fast loop** (:meth:`Simulator._drive_fast`) runs
   whenever neither is requested (``trace=False`` and
   ``message_bit_limit=None``).  It routes messages through flat
   neighbour/arrival-port arrays precomputed from the
   :class:`~repro.sim.network.Network` (straight out of the flat CSR
   arrays for CSR-backed graphs), skips
   :func:`~repro.sim.message.estimate_bits` entirely (the aggregate
   ``max_message_bits`` then reads ``None`` — "not measured" — and
   per-node bit counters stay 0), and reuses one delivery buffer per node
   across rounds.
3. The **vectorized engine** (:mod:`repro.sim.vectorized`) computes whole
   rounds as numpy array operations over the CSR arrays, for protocols
   whose rounds are dense (every undecided node awake every iteration,
   Luby-style).  A protocol opts in by exposing a ``vectorized_engine``
   attribute on its factory (``luby`` does); the engine engages only
   under the fast loop's gating (no trace, no bit limit) *and* when
   numpy is importable, falling back to the generator fast loop
   otherwise.  Priorities are drawn from the same per-node ``spawn_rng``
   streams in the same per-node order, so the run is bit-for-bit
   identical to the other engines (pinned by
   ``tests/test_runner_semantics.py``).  Pass ``vectorized=False`` to
   pin the generator loops, ``vectorized=True`` to require the engine
   (a configuration that cannot use it then raises).

Buffer-reuse contract: the inbox list a generator is resumed with is only
valid until the node's next ``yield``; protocols must consume (or copy) it
before yielding their next :class:`~repro.sim.actions.WakeCall`.  Every
shipped protocol reads its inbox immediately upon resumption.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import (
    ConfigurationError,
    MessageTooLargeError,
    ProtocolViolationError,
    SimulationError,
)
from repro.rng import SeedLike, spawn_rng
from repro.sim.actions import Receive, WakeCall
from repro.sim.context import NodeContext
from repro.sim.message import estimate_bits
from repro.sim.metrics import NodeMetrics, RunMetrics
from repro.sim.network import Network, build_network
from repro.sim.trace import MessageEvent, Trace

#: A protocol factory: called once per node with its context, returns the
#: node's generator.
ProtocolFactory = Callable[[NodeContext], Generator[WakeCall, List[Receive], Any]]


# --------------------------------------------------------------------------- #
# Safety-valve / coverage errors shared by all three round engines.  A
# divergent message would break golden-log diffs across engines, so every
# engine raises through these helpers.
# --------------------------------------------------------------------------- #
def livelocked_error(max_active_rounds: int) -> SimulationError:
    """The livelock valve: too many active rounds elapsed."""
    return SimulationError(
        f"exceeded {max_active_rounds} active rounds; "
        "protocol appears to be livelocked"
    )


def awake_budget_error(label: Any, max_awake_per_node: int) -> SimulationError:
    """The per-node awake valve: one node stayed awake too long."""
    return SimulationError(
        f"node {label} exceeded {max_awake_per_node} awake rounds"
    )


def missing_outputs_error(missing: List[Any]) -> SimulationError:
    """Some nodes never terminated (generator exhausted the round loop)."""
    return SimulationError(
        f"{len(missing)} node(s) never terminated: {missing[:5]}"
    )


@dataclass
class RunResult:
    """Everything produced by one simulation run."""

    #: Mapping from graph node label to the protocol's return value.
    outputs: Dict[Any, Any]
    #: Aggregated metrics (awake/round complexity, messages).
    metrics: RunMetrics
    #: Per-node awake counts keyed by graph label (convenience view).
    awake_by_label: Dict[Any, int] = field(default_factory=dict)
    #: Optional trace (present only when tracing was enabled).
    trace: Optional[Trace] = None

    def output_set(self, predicate: Callable[[Any], bool] = bool) -> set:
        """Return the labels whose output satisfies *predicate*.

        The MIS protocols return ``True`` for nodes that joined the MIS, so
        ``result.output_set()`` is the computed MIS.
        """
        return {label for label, value in self.outputs.items() if predicate(value)}


class Simulator:
    """Drives a set of per-node protocol generators over a network.

    Parameters
    ----------
    network:
        The port-numbered network to simulate on.
    seed:
        Master seed; every node receives an independent generator derived
        from it.
    message_bit_limit:
        If not ``None``, sending a message whose estimated size exceeds this
        many bits raises :class:`MessageTooLargeError`.  The experiment
        harness sets it to a multiple of ``log2(N)`` to enforce CONGEST.
        When ``None`` (and tracing is off) the driver takes the fast path
        and does not estimate message sizes at all.
    max_active_rounds:
        Safety valve: abort (with :class:`SimulationError`) if more than this
        many *active* rounds elapse, which indicates a livelocked protocol.
    max_awake_per_node:
        Safety valve on any single node's awake rounds.
    trace:
        When True, record a :class:`~repro.sim.trace.Trace` of awake sets and
        message events.
    vectorized:
        Engine selection for protocols that expose a ``vectorized_engine``
        hook: ``None`` (default) engages the numpy whole-round engine
        whenever the fast-path gating holds (no trace, no bit limit) and
        numpy is importable; ``False`` pins the generator loops; ``True``
        requires the vectorized engine and raises
        :class:`~repro.errors.ConfigurationError` when it cannot run.
        Engine choice never changes outputs or counts.
    """

    def __init__(
        self,
        network: Network,
        seed: SeedLike = None,
        message_bit_limit: Optional[int] = None,
        max_active_rounds: int = 5_000_000,
        max_awake_per_node: int = 1_000_000,
        trace: bool = False,
        vectorized: Optional[bool] = None,
    ) -> None:
        self._network = network
        self._seed = seed
        self._message_bit_limit = message_bit_limit
        self._max_active_rounds = max_active_rounds
        self._max_awake_per_node = max_awake_per_node
        self._trace_enabled = trace
        self._vectorized = vectorized

    # ------------------------------------------------------------------ #
    def run(
        self,
        protocol: ProtocolFactory,
        inputs: Optional[Dict[str, Any]] = None,
        local_inputs: Optional[Dict[Any, Any]] = None,
    ) -> RunResult:
        """Run *protocol* on every node and return the :class:`RunResult`.

        *inputs* is the globally-known input dictionary shared by all nodes;
        *local_inputs* optionally maps graph labels to per-node inputs (e.g.
        externally assigned IDs).
        """
        network = self._network
        n = network.size
        inputs = dict(inputs or {})
        local_inputs = dict(local_inputs or {})

        engine = self._select_vectorized_engine(protocol)
        if engine is not None:
            return self._run_vectorized(engine, inputs, local_inputs)

        generators: List[Optional[Generator[WakeCall, List[Receive], Any]]] = []
        outputs: Dict[Any, Any] = {}
        metrics = RunMetrics(per_node=[NodeMetrics() for _ in range(n)])
        trace = Trace() if self._trace_enabled else None

        # (round, node_index, WakeCall) heap of pending wake-ups.
        pending: List[tuple] = []

        for index in range(n):
            label = network.label_of(index)
            ctx = NodeContext(
                degree=network.degree(index),
                ports=list(range(network.degree(index))),
                rng=spawn_rng(self._seed, index),
                inputs=inputs,
                local_input=local_inputs.get(label),
                debug_label=label,
            )
            gen = protocol(ctx)
            generators.append(gen)
            try:
                first_call = next(gen)
            except StopIteration as stop:
                outputs[label] = stop.value
                metrics.per_node[index].terminated_round = -1
                generators[index] = None
                continue
            self._validate_call(first_call, index, previous_round=-1)
            heapq.heappush(pending, (first_call.round, index, first_call))

        if trace is None and self._message_bit_limit is None:
            metrics.bits_metered = False
            self._drive_fast(pending, generators, outputs, metrics)
        else:
            self._drive_metered(pending, generators, outputs, metrics, trace)

        # Nodes that never terminated explicitly (generator exhausted without
        # return) have output None already; nodes still pending cannot exist
        # here because the loop drains the heap.
        awake_by_label = {
            network.label_of(index): metrics.per_node[index].awake_rounds
            for index in range(n)
        }
        missing = [
            network.label_of(index)
            for index in range(n)
            if network.label_of(index) not in outputs
        ]
        if missing:
            raise missing_outputs_error(missing)
        return RunResult(
            outputs=outputs,
            metrics=metrics,
            awake_by_label=awake_by_label,
            trace=trace,
        )

    # ------------------------------------------------------------------ #
    def _select_vectorized_engine(self, protocol: ProtocolFactory):
        """Return the protocol's vectorized engine when it should engage.

        The engine engages only when the protocol opts in (a
        ``vectorized_engine`` hook on the factory), the fast-path gating
        holds (no trace, no bit limit), numpy is importable, and the
        caller did not pin ``vectorized=False``.  ``vectorized=True``
        turns every reason *not* to engage into a
        :class:`ConfigurationError` instead of a silent fallback.
        """
        if self._vectorized is False:
            return None
        hook = getattr(protocol, "vectorized_engine", None)
        blocker = None
        if hook is None:
            blocker = "the protocol exposes no vectorized_engine hook"
        elif self._trace_enabled:
            blocker = "tracing is enabled"
        elif self._message_bit_limit is not None:
            blocker = "a message bit limit is set (CONGEST metering)"
        else:
            from repro.sim.vectorized import numpy_or_none

            if numpy_or_none() is None:
                blocker = "numpy is not installed"
        if blocker is None:
            return hook
        if self._vectorized is True:
            raise ConfigurationError(
                f"vectorized=True but the vectorized engine cannot run: "
                f"{blocker}"
            )
        return None

    def _run_vectorized(self, engine, inputs, local_inputs) -> RunResult:
        """Drive *engine* over a :class:`~repro.sim.vectorized.VectorizedRun`."""
        from repro.sim.vectorized import VectorizedRun

        state = VectorizedRun(
            self._network,
            seed=self._seed,
            inputs=inputs,
            local_inputs=local_inputs,
            max_active_rounds=self._max_active_rounds,
            max_awake_per_node=self._max_awake_per_node,
        )
        engine(state)
        return state.to_result()

    # ------------------------------------------------------------------ #
    def _drive_fast(
        self,
        pending: List[tuple],
        generators: List[Optional[Generator[WakeCall, List[Receive], Any]]],
        outputs: Dict[Any, Any],
        metrics: RunMetrics,
    ) -> None:
        """Round loop for the common configuration: no trace, no bit limit.

        Messages are routed through flat port tables, sizes are never
        estimated, and each node's delivery buffer is reused across rounds
        (cleared when the node next wakes).  Produces the same outputs and
        the same awake/round/message counts as :meth:`_drive_metered`; only
        the bit statistics differ (per-node counters stay 0, the aggregate
        ``max_message_bits`` reads ``None`` via ``bits_metered=False``).
        """
        network = self._network
        csr = getattr(network, "csr_tables", lambda: None)()
        if csr is None:
            neighbor_of = network.neighbor_tables()
            arrival_port_of = network.arrival_port_tables()
            offsets = flat_neighbors = flat_arrivals = None
        else:
            # CSR fast path: route straight out of the flat arrays — no
            # per-node table objects at all, which also means a network
            # over a shared-memory segment is simulated without copying
            # any part of the adjacency into the process.
            offsets, flat_neighbors, flat_arrivals = csr
            neighbor_of = arrival_port_of = None
        per_node = metrics.per_node
        max_awake = self._max_awake_per_node
        inboxes: List[List[Receive]] = [[] for _ in range(network.size)]

        active_rounds = 0
        awake: Dict[int, WakeCall] = {}
        while pending:
            current_round = pending[0][0]
            active_rounds += 1
            if active_rounds > self._max_active_rounds:
                raise livelocked_error(self._max_active_rounds)

            # Pop every node awake in this round; recycle its inbox buffer.
            awake.clear()
            while pending and pending[0][0] == current_round:
                _, index, call = heapq.heappop(pending)
                awake[index] = call
                inboxes[index].clear()

            for index, call in awake.items():
                node_metrics = per_node[index]
                node_metrics.awake_rounds += 1
                if node_metrics.awake_rounds > max_awake:
                    raise awake_budget_error(network.label_of(index),
                                             max_awake)
                sends = call.sends
                if not sends:
                    continue
                if offsets is not None:
                    base = offsets[index]
                    for port, payload in sends:
                        node_metrics.messages_sent += 1
                        receiver = flat_neighbors[base + port]
                        if receiver in awake:
                            inboxes[receiver].append(
                                (flat_arrivals[base + port], payload))
                            per_node[receiver].messages_received += 1
                else:
                    neighbors = neighbor_of[index]
                    arrivals = arrival_port_of[index]
                    for port, payload in sends:
                        node_metrics.messages_sent += 1
                        receiver = neighbors[port]
                        if receiver in awake:
                            inboxes[receiver].append(
                                (arrivals[port], payload))
                            per_node[receiver].messages_received += 1

            metrics.last_active_round = current_round

            # Resume every awake node with its inbox.  Heap pops already
            # produced increasing indices, so the dict iterates in the same
            # node order the metered loop uses.
            for index in awake:
                gen = generators[index]
                assert gen is not None
                try:
                    next_call = gen.send(inboxes[index])
                except StopIteration as stop:
                    outputs[network.label_of(index)] = stop.value
                    per_node[index].terminated_round = current_round
                    generators[index] = None
                    continue
                self._validate_call(next_call, index, previous_round=current_round)
                heapq.heappush(pending, (next_call.round, index, next_call))
        metrics.active_rounds = active_rounds

    # ------------------------------------------------------------------ #
    def _drive_metered(
        self,
        pending: List[tuple],
        generators: List[Optional[Generator[WakeCall, List[Receive], Any]]],
        outputs: Dict[Any, Any],
        metrics: RunMetrics,
        trace: Optional[Trace],
    ) -> None:
        """Round loop with CONGEST bit accounting and optional tracing."""
        network = self._network
        neighbor_of = network.neighbor_tables()
        arrival_port_of = network.arrival_port_tables()
        bit_limit = self._message_bit_limit

        active_rounds = 0
        while pending:
            current_round = pending[0][0]
            active_rounds += 1
            if active_rounds > self._max_active_rounds:
                raise livelocked_error(self._max_active_rounds)

            # Pop every node awake in this round.
            awake: Dict[int, WakeCall] = {}
            while pending and pending[0][0] == current_round:
                _, index, call = heapq.heappop(pending)
                awake[index] = call

            # Transmit: deliveries[index] collects (arrival_port, payload).
            deliveries: Dict[int, List[Receive]] = {index: [] for index in awake}
            for index, call in awake.items():
                node_metrics = metrics.per_node[index]
                node_metrics.record_awake()
                if node_metrics.awake_rounds > self._max_awake_per_node:
                    raise awake_budget_error(network.label_of(index),
                                             self._max_awake_per_node)
                for port, payload in call.sends:
                    receiver = neighbor_of[index][port]
                    bits = estimate_bits(payload)
                    if bit_limit is not None and bits > bit_limit:
                        raise MessageTooLargeError(
                            f"node {network.label_of(index)} sent a {bits}-bit "
                            f"message (limit {bit_limit}) in round "
                            f"{current_round}: {payload!r}"
                        )
                    node_metrics.record_send(bits)
                    delivered = receiver in awake
                    if delivered:
                        arrival_port = arrival_port_of[index][port]
                        deliveries[receiver].append((arrival_port, payload))
                        metrics.per_node[receiver].record_receive()
                    if trace is not None:
                        trace.record_message(
                            MessageEvent(
                                round=current_round,
                                sender=network.label_of(index),
                                receiver=network.label_of(receiver),
                                payload=payload,
                                delivered=delivered,
                            )
                        )

            if trace is not None:
                trace.record_awake(
                    current_round,
                    [network.label_of(index) for index in awake],
                )

            metrics.last_active_round = current_round
            metrics.active_rounds = active_rounds

            # Resume every awake node with its inbox.
            for index in sorted(awake):
                gen = generators[index]
                assert gen is not None
                inbox = deliveries[index]
                try:
                    next_call = gen.send(inbox)
                except StopIteration as stop:
                    label = network.label_of(index)
                    outputs[label] = stop.value
                    metrics.per_node[index].terminated_round = current_round
                    generators[index] = None
                    continue
                self._validate_call(next_call, index, previous_round=current_round)
                heapq.heappush(pending, (next_call.round, index, next_call))

    # ------------------------------------------------------------------ #
    def _validate_call(
        self, call: WakeCall, index: int, previous_round: int
    ) -> None:
        """Check that a wake call respects the round structure and ports."""
        if not isinstance(call, WakeCall):
            raise ProtocolViolationError(
                f"protocol yielded {type(call).__name__}; expected WakeCall"
            )
        if call.round <= previous_round:
            raise ProtocolViolationError(
                f"node {self._network.label_of(index)} scheduled round "
                f"{call.round} which is not after its previous awake round "
                f"{previous_round}"
            )
        degree = self._network.degree(index)
        for port, _ in call.sends:
            if not 0 <= port < degree:
                raise ProtocolViolationError(
                    f"node {self._network.label_of(index)} sent on port {port} "
                    f"but has only {degree} port(s)"
                )


def run_protocol(
    graph,
    protocol: ProtocolFactory,
    inputs: Optional[Dict[str, Any]] = None,
    local_inputs: Optional[Dict[Any, Any]] = None,
    seed: SeedLike = None,
    message_bit_limit: Optional[int] = None,
    trace: bool = False,
    max_active_rounds: int = 5_000_000,
    vectorized: Optional[bool] = None,
) -> RunResult:
    """Convenience wrapper: build the network and run *protocol* on *graph*.

    CSR-backed graphs (``repro.graphs.csr.CSRGraphView``) get the
    zero-copy ``CSRNetwork``; networkx graphs get the classic
    ``Network`` — the simulated bytes are identical either way.
    *vectorized* selects the whole-round numpy engine for protocols that
    opt in (see :class:`Simulator`); it can only change speed, never bytes.
    """
    network = build_network(graph)
    simulator = Simulator(
        network,
        seed=seed,
        message_bit_limit=message_bit_limit,
        trace=trace,
        max_active_rounds=max_active_rounds,
        vectorized=vectorized,
    )
    return simulator.run(protocol, inputs=inputs, local_inputs=local_inputs)
