"""Port-numbered anonymous network built from a ``networkx`` graph.

The network fixes, for every node, an arbitrary but deterministic numbering
of its incident edges (its *ports*).  Protocols address neighbours only by
port number; the mapping from ports to graph nodes lives here and is used by
the runner to route messages and by the harness to translate protocol
outputs back to graph node labels.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import ConfigurationError
from repro.graphs.csr import CSRGraph, CSRGraphView


@dataclass(frozen=True)
class PortMap:
    """Port tables for one node.

    ``neighbors[p]`` is the global index of the neighbour reached through
    port ``p`` and ``port_of[u]`` is the port leading to global index ``u``.
    """

    neighbors: Tuple[int, ...]
    port_of: Dict[int, int]


class Network:
    """An anonymous, port-numbered view of an undirected graph.

    Parameters
    ----------
    graph:
        Any simple undirected :class:`networkx.Graph`.  Self-loops are
        rejected (the model has none); multigraphs are rejected.
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.is_directed() or graph.is_multigraph():
            raise ConfigurationError(
                "the SLEEPING-CONGEST simulator requires a simple undirected graph"
            )
        if any(u == v for u, v in graph.edges):
            raise ConfigurationError("self-loops are not allowed")
        self._graph = graph
        self._labels: List[Any] = list(graph.nodes)
        self._index_of: Dict[Any, int] = {
            label: index for index, label in enumerate(self._labels)
        }
        self._ports: List[PortMap] = []
        for label in self._labels:
            neighbor_indices = tuple(
                sorted(self._index_of[v] for v in graph.neighbors(label))
            )
            port_of = {u: p for p, u in enumerate(neighbor_indices)}
            self._ports.append(PortMap(neighbors=neighbor_indices, port_of=port_of))

    # ------------------------------------------------------------------ #
    # Size / lookup helpers
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> nx.Graph:
        """The underlying graph object (not copied)."""
        return self._graph

    @property
    def size(self) -> int:
        """Number of nodes."""
        return len(self._labels)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._graph.number_of_edges()

    def labels(self) -> List[Any]:
        """Graph node labels in simulator index order."""
        return list(self._labels)

    def label_of(self, index: int) -> Any:
        """Return the graph label of simulator index *index*."""
        return self._labels[index]

    def index_of(self, label: Any) -> int:
        """Return the simulator index of graph node *label*."""
        return self._index_of[label]

    def degree(self, index: int) -> int:
        """Return the degree of the node with simulator index *index*."""
        return len(self._ports[index].neighbors)

    def neighbor_via_port(self, index: int, port: int) -> int:
        """Return the simulator index reached from *index* through *port*."""
        ports = self._ports[index]
        if not 0 <= port < len(ports.neighbors):
            raise ConfigurationError(
                f"node {self._labels[index]} has ports 0..{len(ports.neighbors) - 1}, "
                f"got {port}"
            )
        return ports.neighbors[port]

    def port_towards(self, index: int, neighbor_index: int) -> int:
        """Return the port of *index* leading to *neighbor_index*."""
        ports = self._ports[index]
        if neighbor_index not in ports.port_of:
            raise ConfigurationError(
                f"nodes {self._labels[index]} and {self._labels[neighbor_index]} "
                "are not adjacent"
            )
        return ports.port_of[neighbor_index]

    def max_degree(self) -> int:
        """Return the maximum degree of the network (0 for edgeless graphs)."""
        if not self._labels:
            return 0
        return max(len(p.neighbors) for p in self._ports)

    # ------------------------------------------------------------------ #
    # Flat routing tables (simulator fast path)
    # ------------------------------------------------------------------ #
    def neighbor_tables(self) -> List[Tuple[int, ...]]:
        """Per-node neighbour tables: ``tables[u][p]`` is the index reached
        from node ``u`` through port ``p``.

        Equivalent to :meth:`neighbor_via_port` without the per-call bounds
        check; the runner validates ports once per :class:`WakeCall` and then
        routes every message through these flat tables.
        """
        return [ports.neighbors for ports in self._ports]

    def arrival_port_tables(self) -> List[Tuple[int, ...]]:
        """Per-node arrival tables: ``tables[u][p]`` is the port on which the
        neighbour reached from ``u`` through port ``p`` receives ``u``'s
        messages (i.e. ``port_towards(neighbor_via_port(u, p), u)``).
        """
        return [
            tuple(self._ports[v].port_of[u] for v in ports.neighbors)
            for u, ports in enumerate(self._ports)
        ]

    def csr_tables(self) -> Optional[Tuple[Sequence[int], Sequence[int],
                                           Sequence[int]]]:
        """Flat ``(offsets, neighbors, arrivals)`` arrays, if CSR-backed.

        The adjacency-list network returns ``None``; the runner falls back
        to the per-node tables above.
        """
        return None


class CSRNetwork:
    """A port-numbered network over flat CSR arrays — zero extra copies.

    Drop-in for :class:`Network` (same accessor surface), but built
    directly from a :class:`repro.graphs.csr.CSRGraph`: the arrival ports
    were precomputed when the CSR arrays were built, so construction is
    O(1) even when the arrays live in a shared-memory segment mapped by a
    worker slot process.  CSR rows are sorted by neighbour index — the
    exact port numbering ``Network`` derives — so both views simulate
    byte-identically (pinned by ``tests/test_csr.py``).
    """

    def __init__(self, csr: "CSRGraph | CSRGraphView") -> None:
        if isinstance(csr, CSRGraphView):
            self._view = csr
            self._csr = csr.csr
        else:
            self._csr = csr
            self._view = csr.view()
        self._index_of: Optional[Dict[Any, int]] = None

    # ------------------------------------------------------------------ #
    # Size / lookup helpers
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> CSRGraphView:
        """The underlying graph view (not copied)."""
        return self._view

    @property
    def size(self) -> int:
        return self._csr.n

    @property
    def edge_count(self) -> int:
        return self._csr.m

    def labels(self) -> List[Any]:
        return list(self._csr.labels)

    def label_of(self, index: int) -> Any:
        return self._csr.labels[index]

    def index_of(self, label: Any) -> int:
        if self._index_of is None:
            self._index_of = {node: index for index, node
                              in enumerate(self._csr.labels)}
        return self._index_of[label]

    def degree(self, index: int) -> int:
        return self._csr.degree(index)

    def neighbor_via_port(self, index: int, port: int) -> int:
        degree = self._csr.degree(index)
        if not 0 <= port < degree:
            raise ConfigurationError(
                f"node {self.label_of(index)} has ports 0..{degree - 1}, "
                f"got {port}"
            )
        return self._csr.neighbors[self._csr.offsets[index] + port]

    def port_towards(self, index: int, neighbor_index: int) -> int:
        row = self._csr.neighbor_row(index)
        port = bisect_left(row, neighbor_index)
        if port >= len(row) or row[port] != neighbor_index:
            raise ConfigurationError(
                f"nodes {self.label_of(index)} and "
                f"{self.label_of(neighbor_index)} are not adjacent"
            )
        return port

    def max_degree(self) -> int:
        if self._csr.n == 0:
            return 0
        try:
            offsets, _, _, _ = self._csr.as_arrays()
        except ConfigurationError:  # pragma: no cover - numpy-less hosts
            offsets = self._csr.offsets
            return max(offsets[index + 1] - offsets[index]
                       for index in range(self._csr.n))
        return int((offsets[1:] - offsets[:-1]).max())

    # ------------------------------------------------------------------ #
    # Flat routing tables (simulator fast path)
    # ------------------------------------------------------------------ #
    def neighbor_tables(self) -> List[memoryview]:
        """Per-node neighbour tables as zero-copy slices of the flat array."""
        csr = self._csr
        return [csr.neighbor_row(index) for index in range(csr.n)]

    def arrival_port_tables(self) -> List[memoryview]:
        """Per-node arrival tables as zero-copy slices of the flat array."""
        csr = self._csr
        return [csr.arrival_row(index) for index in range(csr.n)]

    def csr_tables(self) -> Tuple[Sequence[int], Sequence[int],
                                  Sequence[int]]:
        """The flat ``(offsets, neighbors, arrivals)`` arrays themselves."""
        csr = self._csr
        return (csr.offsets, csr.neighbors, csr.arrivals)


def build_network(graph: Any) -> "Network | CSRNetwork":
    """Build the right network view for *graph*.

    CSR-backed graphs (:class:`CSRGraphView` / :class:`CSRGraph`) get the
    zero-copy :class:`CSRNetwork`; anything networkx-like gets the
    classic :class:`Network`.
    """
    if isinstance(graph, (CSRGraphView, CSRGraph)):
        return CSRNetwork(graph)
    return Network(graph)
