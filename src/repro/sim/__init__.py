"""SLEEPING-CONGEST simulator: network, round driver, metrics, tracing."""

from repro.sim.actions import WakeCall, broadcast_sends, listen
from repro.sim.context import NodeContext
from repro.sim.message import Envelope, estimate_bits
from repro.sim.metrics import CompactRunMetrics, NodeMetrics, RunMetrics
from repro.sim.network import Network
from repro.sim.runner import ProtocolFactory, RunResult, Simulator, run_protocol
from repro.sim.trace import MessageEvent, Trace

__all__ = [
    "CompactRunMetrics",
    "Envelope",
    "MessageEvent",
    "Network",
    "NodeContext",
    "NodeMetrics",
    "ProtocolFactory",
    "RunMetrics",
    "RunResult",
    "Simulator",
    "Trace",
    "WakeCall",
    "broadcast_sends",
    "estimate_bits",
    "listen",
    "run_protocol",
]
