"""Run metrics: awake complexity, round complexity, message statistics.

These are the quantities the paper's theorems are stated in terms of:

* **awake complexity** — the maximum, over nodes, of the number of rounds the
  node was awake before terminating (:attr:`RunMetrics.awake_complexity`);
* **node-averaged awake complexity** — the average number of awake rounds
  (:attr:`RunMetrics.node_averaged_awake`), the measure of Chatterjee, Gmyr
  and Pandurangan which the paper contrasts with;
* **round complexity** — the total number of rounds (sleeping + awake) until
  the last node terminates (:attr:`RunMetrics.round_complexity`).

Message counts and the largest message observed are recorded so CONGEST
compliance can be reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class NodeMetrics:
    """Per-node counters accumulated by the runner."""

    awake_rounds: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    bits_sent: int = 0
    max_message_bits: int = 0
    terminated_round: Optional[int] = None

    def record_awake(self) -> None:
        """Count one awake round."""
        self.awake_rounds += 1

    def record_send(self, bits: int) -> None:
        """Count one sent message of the given size."""
        self.messages_sent += 1
        self.bits_sent += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits

    def record_receive(self) -> None:
        """Count one received message."""
        self.messages_received += 1


@dataclass(frozen=True)
class CompactRunMetrics:
    """Frozen scalar summary of a :class:`RunMetrics`.

    Holds exactly the aggregate quantities the sweep layer consumes (the
    paper's complexity measures plus message statistics) without the
    per-node counter list, so results stay small when shipped between the
    worker processes of the parallel sweep executor.  The attribute names
    mirror the :class:`RunMetrics` properties, making the two forms
    interchangeable for every aggregate consumer.
    """

    node_count: int
    awake_complexity: int
    node_averaged_awake: float
    total_awake_rounds: int
    round_complexity: int
    active_rounds: int
    total_messages: int
    #: ``None`` when the run was unmetered (no bit limit, no trace): message
    #: sizes were never estimated, which is distinct from "largest was 0".
    max_message_bits: Optional[int]

    def summary(self) -> Dict[str, Any]:
        """Return the same plain-dict summary :meth:`RunMetrics.summary` does."""
        return {
            "nodes": self.node_count,
            "awake_complexity": self.awake_complexity,
            "node_averaged_awake": round(self.node_averaged_awake, 3),
            "round_complexity": self.round_complexity,
            "active_rounds": self.active_rounds,
            "total_messages": self.total_messages,
            "max_message_bits": self.max_message_bits,
        }

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-safe dict losslessly round-trippable via :meth:`from_json_dict`.

        Unlike :meth:`summary` (which rounds for display), this preserves
        ``node_averaged_awake`` at full precision — the on-disk results store
        relies on the round trip being exact so that a resumed sweep
        aggregates to byte-identical rows.
        """
        return {
            "node_count": self.node_count,
            "awake_complexity": self.awake_complexity,
            "node_averaged_awake": self.node_averaged_awake,
            "total_awake_rounds": self.total_awake_rounds,
            "round_complexity": self.round_complexity,
            "active_rounds": self.active_rounds,
            "total_messages": self.total_messages,
            "max_message_bits": self.max_message_bits,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "CompactRunMetrics":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            node_count=int(data["node_count"]),
            awake_complexity=int(data["awake_complexity"]),
            node_averaged_awake=float(data["node_averaged_awake"]),
            total_awake_rounds=int(data["total_awake_rounds"]),
            round_complexity=int(data["round_complexity"]),
            active_rounds=int(data["active_rounds"]),
            total_messages=int(data["total_messages"]),
            max_message_bits=(None if data["max_message_bits"] is None
                              else int(data["max_message_bits"])),
        )


@dataclass
class RunMetrics:
    """Aggregated metrics for one simulation run."""

    per_node: List[NodeMetrics] = field(default_factory=list)
    #: Highest round index in which any node was awake (None if none ever was).
    last_active_round: Optional[int] = None
    #: Number of distinct rounds in which at least one node was awake.
    active_rounds: int = 0
    #: False when the run skipped message-size estimation (the simulator's
    #: unmetered fast path); bit statistics are then "not measured".
    bits_metered: bool = True

    @property
    def node_count(self) -> int:
        """Number of simulated nodes."""
        return len(self.per_node)

    @property
    def awake_complexity(self) -> int:
        """Worst-case awake complexity: ``max_v A_v``."""
        if not self.per_node:
            return 0
        return max(m.awake_rounds for m in self.per_node)

    @property
    def node_averaged_awake(self) -> float:
        """Node-averaged awake complexity: ``(1/n) * sum_v A_v``."""
        if not self.per_node:
            return 0.0
        return sum(m.awake_rounds for m in self.per_node) / len(self.per_node)

    @property
    def total_awake_rounds(self) -> int:
        """Total awake node-rounds across all nodes (energy proxy)."""
        return sum(m.awake_rounds for m in self.per_node)

    @property
    def round_complexity(self) -> int:
        """Total number of rounds until the last node terminates.

        Rounds are 0-indexed internally, so this is ``last_active_round + 1``
        (0 when no node was ever awake).
        """
        if self.last_active_round is None:
            return 0
        return self.last_active_round + 1

    @property
    def total_messages(self) -> int:
        """Total messages delivered or attempted across the run."""
        return sum(m.messages_sent for m in self.per_node)

    @property
    def max_message_bits(self) -> Optional[int]:
        """Largest single message (in estimated bits) sent during the run.

        ``None`` when the run was unmetered (sizes were never estimated),
        so a fabricated 0 can never be mistaken for a measurement.
        """
        if not self.bits_metered:
            return None
        if not self.per_node:
            return 0
        return max(m.max_message_bits for m in self.per_node)

    def summary(self) -> Dict[str, Any]:
        """Return a plain-dict summary convenient for tables and JSON."""
        return self.compact().summary()

    def compact(self) -> CompactRunMetrics:
        """Collapse the per-node counters into a :class:`CompactRunMetrics`."""
        return CompactRunMetrics(
            node_count=self.node_count,
            awake_complexity=self.awake_complexity,
            node_averaged_awake=self.node_averaged_awake,
            total_awake_rounds=self.total_awake_rounds,
            round_complexity=self.round_complexity,
            active_rounds=self.active_rounds,
            total_messages=self.total_messages,
            max_message_bits=self.max_message_bits,
        )
