"""Optional event tracing for the simulator.

Tracing is off by default (it costs memory proportional to the number of
awake node-rounds).  When enabled it records, per active round, which nodes
were awake and which messages were delivered or lost.  Examples and tests use
it to inspect and assert on the exact communication pattern of the paper's
algorithms (e.g. that VT-MIS nodes are awake exactly in their communication
set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True)
class MessageEvent:
    """One message transmission attempt."""

    round: int
    sender: Any
    receiver: Any
    payload: Any
    delivered: bool


@dataclass
class Trace:
    """Collected simulation events."""

    #: Mapping round -> list of node labels awake in that round.
    awake_by_round: Dict[int, List[Any]] = field(default_factory=dict)
    #: All message events in chronological order.
    messages: List[MessageEvent] = field(default_factory=list)

    def record_awake(self, round_number: int, labels: List[Any]) -> None:
        """Record the set of awake nodes for a round."""
        self.awake_by_round[round_number] = list(labels)

    def record_message(self, event: MessageEvent) -> None:
        """Record one message transmission attempt."""
        self.messages.append(event)

    def awake_rounds_of(self, label: Any) -> List[int]:
        """Return the sorted list of rounds in which *label* was awake."""
        return sorted(
            r for r, labels in self.awake_by_round.items() if label in labels
        )

    def delivered_messages(self) -> List[MessageEvent]:
        """Return only the messages that reached an awake receiver."""
        return [m for m in self.messages if m.delivered]

    def lost_messages(self) -> List[MessageEvent]:
        """Return messages that were lost because the receiver was asleep."""
        return [m for m in self.messages if not m.delivered]

    def active_rounds(self) -> List[int]:
        """Return all rounds in which at least one node was awake."""
        return sorted(self.awake_by_round)
