"""Messages and CONGEST size accounting.

The SLEEPING-CONGEST model allows ``O(log n)`` bits per edge per round.  The
simulator represents message payloads as ordinary Python objects (tuples of
small integers and short strings in all shipped protocols) and *accounts*
for their size with :func:`estimate_bits`, a conservative structural estimate
that charges integers their bit length and strings 8 bits per character.

The runner can be configured with a bit budget per message; exceeding it
raises :class:`repro.errors.MessageTooLargeError`.  The default harness
configuration sets the budget to ``c * log2(N)`` for the run's polynomial ID
bound ``N`` so that CONGEST violations surface as test failures instead of
silently producing an algorithm that needs LOCAL-sized messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple


def estimate_bits(payload: Any) -> int:
    """Estimate the number of bits needed to encode *payload*.

    The estimate is intentionally simple and conservative:

    * ``None`` and booleans cost 1 bit,
    * integers cost ``max(1, bit_length) + 1`` bits (sign),
    * floats cost 64 bits,
    * strings cost 8 bits per character,
    * tuples/lists/sets cost the sum of their items plus 2 bits of framing
      per item,
    * dicts cost keys + values plus framing.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8 * max(1, len(payload))
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(estimate_bits(item) + 2 for item in payload)
    if isinstance(payload, dict):
        return sum(
            estimate_bits(k) + estimate_bits(v) + 2 for k, v in payload.items()
        )
    if isinstance(payload, bytes):
        return 8 * max(1, len(payload))
    raise TypeError(
        f"unsupported message payload type {type(payload).__name__}; "
        "protocols should send tuples of ints / short strings"
    )


@dataclass(frozen=True)
class Envelope:
    """A message in flight during one simulated round.

    Attributes
    ----------
    sender:
        Global index of the sending node (simulator-internal; protocols never
        see it — they only see the arrival port, preserving anonymity).
    receiver:
        Global index of the receiving node.
    receiver_port:
        The port of the *receiver* on which the message arrives.
    payload:
        The message content.
    bits:
        Estimated size of the payload in bits.
    """

    sender: int
    receiver: int
    receiver_port: int
    payload: Any
    bits: int

    @classmethod
    def create(cls, sender: int, receiver: int, receiver_port: int,
               payload: Any) -> "Envelope":
        """Build an envelope, computing the payload's size estimate."""
        return cls(
            sender=sender,
            receiver=receiver,
            receiver_port=receiver_port,
            payload=payload,
            bits=estimate_bits(payload),
        )


#: A received message as seen by a protocol: (arrival_port, payload).
Delivery = Tuple[int, Any]
