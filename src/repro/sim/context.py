"""Per-node context handed to protocol factories.

A protocol is a *factory*: a callable ``factory(ctx) -> generator`` invoked
once per node when the simulation starts.  The :class:`NodeContext` gives the
protocol exactly the local knowledge the SLEEPING-CONGEST model allows:

* the node's degree and port numbers (ports are an arbitrary local numbering
  of incident edges; the network is anonymous),
* a private source of randomness,
* the globally known inputs (``n`` or the polynomial upper bound ``N``,
  algorithm parameters) via :attr:`inputs`,
* optionally a per-node input (e.g. a pre-assigned ID for algorithms such as
  VT-MIS that are defined for identified networks) via :attr:`local_input`.

The context deliberately does **not** expose neighbour identities or any
global view of the graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class NodeContext:
    """Local knowledge available to one simulated node."""

    #: Number of incident edges (= number of ports).
    degree: int
    #: Port numbers, always ``0 .. degree-1``.
    ports: List[int]
    #: Private random generator (seeded from the run's master seed).
    rng: random.Random
    #: Globally known inputs shared by every node (e.g. ``{"n": 128}``).
    inputs: Dict[str, Any] = field(default_factory=dict)
    #: Optional node-specific input (e.g. an assigned unique ID).
    local_input: Any = None
    #: Label of the underlying graph node.  For tracing and debugging only;
    #: protocols must not use it for algorithmic decisions (the model is
    #: anonymous).
    debug_label: Any = None

    def require_input(self, key: str) -> Any:
        """Return ``inputs[key]``, raising a helpful error when missing."""
        if key not in self.inputs:
            raise KeyError(
                f"protocol requires global input '{key}' but only "
                f"{sorted(self.inputs)} were provided"
            )
        return self.inputs[key]

    def input(self, key: str, default: Optional[Any] = None) -> Any:
        """Return ``inputs[key]`` or *default* when absent."""
        return self.inputs.get(key, default)
