"""Seeded randomness helpers.

All randomized components of the library accept either an integer seed or a
:class:`random.Random` instance.  These helpers normalise the two forms and
derive independent per-node generators from a single master seed so that
simulations are reproducible while still giving every node its own private
source of randomness (as the SLEEPING-CONGEST model requires).
"""

from __future__ import annotations

import random
from typing import Optional, Union

SeedLike = Union[int, random.Random, None]

#: Large prime used to decorrelate derived seeds.
_DERIVE_PRIME = 2_147_483_647


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for *seed*.

    ``None`` produces an OS-seeded generator, an ``int`` produces a
    deterministic generator, and an existing :class:`random.Random` is
    returned unchanged (so callers can share a generator).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def derive_seed(master: SeedLike, index: int) -> int:
    """Derive a deterministic child seed from *master* for entity *index*.

    Used to give each simulated node an independent private generator that is
    nevertheless fully determined by the run's master seed.
    """
    if isinstance(master, random.Random):
        # Draw a base value once per call; deterministic given generator state.
        base = master.randrange(2**63)
    elif master is None:
        base = random.randrange(2**63)
    else:
        base = int(master)
    return (base * _DERIVE_PRIME + 0x9E3779B9 * (index + 1)) % (2**63)


def spawn_rng(master: SeedLike, index: int) -> random.Random:
    """Return an independent generator for entity *index* under *master*."""
    return random.Random(derive_seed(master, index))


def random_unique_ids(
    count: int, id_space: int, rng: Optional[random.Random] = None
) -> list:
    """Sample *count* distinct integer IDs from ``[1, id_space]``.

    The paper's algorithms assume unique IDs drawn from a range ``[1, I]``
    that may be polynomially (or more) larger than the number of nodes.  IDs
    are sampled without replacement.
    """
    if count > id_space:
        raise ValueError(
            f"cannot draw {count} unique ids from a space of size {id_space}"
        )
    rng = rng or random.Random()
    if id_space <= 4 * count:
        population = list(range(1, id_space + 1))
        return rng.sample(population, count)
    chosen: set = set()
    while len(chosen) < count:
        chosen.add(rng.randint(1, id_space))
    result = list(chosen)
    rng.shuffle(result)
    return result
