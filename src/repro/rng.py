"""Seeded randomness helpers.

All randomized components of the library accept either an integer seed or a
:class:`random.Random` instance.  These helpers normalise the two forms and
derive independent per-node generators from a single master seed so that
simulations are reproducible while still giving every node its own private
source of randomness (as the SLEEPING-CONGEST model requires).
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Union

SeedLike = Union[int, random.Random, None]

#: Large prime used to decorrelate derived seeds.
_DERIVE_PRIME = 2_147_483_647


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for *seed*.

    ``None`` produces an OS-seeded generator, an ``int`` produces a
    deterministic generator, and an existing :class:`random.Random` is
    returned unchanged (so callers can share a generator).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def derive_seed(master: SeedLike, index: int) -> int:
    """Derive a deterministic child seed from *master* for entity *index*.

    Used to give each simulated node an independent private generator that is
    nevertheless fully determined by the run's master seed.
    """
    if isinstance(master, random.Random):
        # Draw a base value once per call; deterministic given generator state.
        base = master.randrange(2**63)
    elif master is None:
        base = random.randrange(2**63)
    else:
        base = int(master)
    return (base * _DERIVE_PRIME + 0x9E3779B9 * (index + 1)) % (2**63)


def spawn_rng(master: SeedLike, index: int) -> random.Random:
    """Return an independent generator for entity *index* under *master*."""
    return random.Random(derive_seed(master, index))


def spawn_rngs(master: SeedLike, count: int) -> List[random.Random]:
    """Spawn *count* generators for indices ``0..count-1`` under *master*.

    Bit-for-bit identical to ``[spawn_rng(master, i) for i in range(count)]``
    — the batched path below only rearranges the seed arithmetic — but much
    faster for integer masters, because the derived seeds are computed as
    one numpy array operation and the generators are seeded through the C
    layer directly.  ``Random`` and ``None`` masters draw a fresh base per
    index, so they keep the per-index loop.
    """
    if not isinstance(master, int):
        return [spawn_rng(master, index) for index in range(count)]
    base = int(master) * _DERIVE_PRIME
    golden = 0x9E3779B9
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy-less hosts
        np = None
    if np is None or count < 1024:
        return [
            random.Random((base + golden * (index + 1)) % (2**63))
            for index in range(count)
        ]
    # (x % 2**63) == (x mod 2**64) & (2**63 - 1): uint64 wraparound
    # arithmetic followed by a mask reproduces derive_seed exactly.
    seeds = (
        np.uint64(base % 2**64)
        + np.uint64(golden) * np.arange(1, count + 1, dtype=np.uint64)
    ) & np.uint64(2**63 - 1)
    try:
        import _random
    except ImportError:  # pragma: no cover - non-CPython runtimes
        return list(map(random.Random, seeds.tolist()))
    # random.Random(s) is __new__ + the pure-Python seed() wrapper, which
    # only version-checks, calls the C seed, and resets gauss_next — doing
    # those three steps directly halves construction time at 20k+ nodes.
    # Equivalence (getstate() included) is pinned by tests/test_rng.py.
    new = random.Random.__new__
    cls = random.Random
    c_seed = _random.Random.seed
    rngs: List[random.Random] = []
    append = rngs.append
    for value in seeds.tolist():
        rng = new(cls)
        c_seed(rng, value)
        rng.gauss_next = None
        append(rng)
    return rngs


def random_unique_ids(
    count: int, id_space: int, rng: Optional[random.Random] = None
) -> List[int]:
    """Sample *count* distinct integer IDs from ``[1, id_space]``.

    The paper's algorithms assume unique IDs drawn from a range ``[1, I]``
    that may be polynomially (or more) larger than the number of nodes.  IDs
    are sampled without replacement.
    """
    if count > id_space:
        raise ValueError(
            f"cannot draw {count} unique ids from a space of size {id_space}"
        )
    rng = rng or random.Random()
    if id_space <= 4 * count:
        population = list(range(1, id_space + 1))
        return rng.sample(population, count)
    chosen: Set[int] = set()
    while len(chosen) < count:
        chosen.add(rng.randint(1, id_space))
    result = list(chosen)
    rng.shuffle(result)
    return result
