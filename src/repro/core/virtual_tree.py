"""Virtual binary tree technique (paper Subsection 5.1).

The paper coordinates *when* nodes are awake via a virtual full binary tree
that every node computes locally from a single integer parameter ``i`` (an
upper bound on IDs, or on the number of batches):

* ``B([1, i])`` is the full binary tree of depth ``d = ceil(log2 i)`` whose
  ``2^(d+1) - 1`` nodes are labeled ``1 .. 2^(d+1)-1`` by an in-order
  traversal (so leaves carry the odd labels).
* ``B*([1, i])`` has the same shape but every label ``x`` is replaced by
  ``g(x) = floor(x / 2) + 1``.
* The *communication set* ``S_k([1, i])`` of an integer ``k`` in ``[1, i]`` is
  the set of ``B*`` labels on the path from the leaf whose ``B*`` label is
  ``k`` up to the root (leaf included), intersected with ``[1, i]``.

The key properties (Observations 4 and 5 in the paper) are:

* ``|S_k([1, i])| <= ceil(log2 i) + 1`` — every node is awake only
  ``O(log i)`` times, and
* for any ``k < k'`` there is a common element ``r`` of ``S_k`` and ``S_k'``
  with ``k < r <= k'`` — so the decision made by the node acting at step
  ``k`` always reaches the node acting at step ``k'`` in time.

Everything in this module is a pure function of ``i`` (and ``k``); it is used
both by :mod:`repro.algorithms.vt_mis` and by the phase scheduling of
:mod:`repro.algorithms.awake_mis`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple


def tree_depth(i: int) -> int:
    """Return the depth ``d = ceil(log2 i)`` of ``B([1, i])``.

    For ``i = 1`` the tree is a single node of depth 0.
    """
    if i < 1:
        raise ValueError(f"virtual tree parameter must be >= 1, got {i}")
    if i == 1:
        return 0
    return math.ceil(math.log2(i))


def tree_size(i: int) -> int:
    """Return the number of nodes ``2^(d+1) - 1`` of ``B([1, i])``."""
    return 2 ** (tree_depth(i) + 1) - 1


def relabel(label: int) -> int:
    """The paper's relabeling function ``g(x) = floor(x/2) + 1``.

    Maps in-order labels of ``B([1, i])`` to the labels of ``B*([1, i])``.
    """
    if label < 1:
        raise ValueError(f"labels are positive integers, got {label}")
    return label // 2 + 1


def leaf_label_in_b(k: int) -> int:
    """Return the in-order (``B``) label of the ``k``-th leaf.

    Leaves of an in-order-labeled full binary tree carry the odd labels, so
    the ``k``-th leaf (1-indexed, left to right) is labeled ``2k - 1``.  Under
    ``g`` this leaf maps to ``k`` in ``B*``, which is exactly why the paper
    identifies "the leaf labeled ``k`` in ``B*``" with step ``k``.
    """
    if k < 1:
        raise ValueError(f"leaf index must be >= 1, got {k}")
    return 2 * k - 1


def ancestors_in_b(label: int, i: int) -> List[int]:
    """Return the ``B([1, i])`` labels on the path from *label* to the root.

    The path includes *label* itself and ends at the root of the tree.  The
    in-order labeling of a full binary tree of depth ``d`` puts the root at
    ``2^d`` and gives an internal node at "height" ``h`` a label that is an
    odd multiple of ``2^h``.  The parent of a node is found by moving to the
    nearest larger power-of-two multiple, which the loop below does by
    clearing the lowest set bit pattern one level at a time.
    """
    size = tree_size(i)
    if not 1 <= label <= size:
        raise ValueError(f"label {label} outside tree of size {size}")
    path = [label]
    current = label
    root = 2 ** tree_depth(i)
    while current != root:
        height = _height_of_label(current)
        step = 2**height
        # The parent of an in-order labeled node at height h is at height h+1
        # and differs from the child by exactly 2^h, in the direction that
        # makes the parent label an odd multiple of 2^(h+1).
        if ((current + step) // (2 * step)) % 2 == 1:
            current = current + step
        else:
            current = current - step
        path.append(current)
    return path


def _height_of_label(label: int) -> int:
    """Return the height (0 for leaves) of an in-order label in ``B``."""
    height = 0
    while label % 2 == 0:
        label //= 2
        height += 1
    return height


def communication_set(k: int, i: int) -> FrozenSet[int]:
    """Return ``S_k([1, i])``: the awake-round set for step ``k``.

    This is the set of ``B*`` labels of the ancestors (leaf included) of the
    leaf labeled ``k``, truncated to ``[1, i]`` — exactly the set used in the
    paper's Figure 2 example (``S_3([1,6]) = {3, 4, 5}``,
    ``S_5([1,6]) = {5, 6}``).
    """
    if not 1 <= k <= i:
        raise ValueError(f"k={k} must lie in [1, {i}]")
    leaf = leaf_label_in_b(k)
    labels = {relabel(x) for x in ancestors_in_b(leaf, i)}
    return frozenset(label for label in labels if 1 <= label <= i)


def communication_sets(i: int) -> Dict[int, FrozenSet[int]]:
    """Return ``{k: S_k([1, i])}`` for every ``k`` in ``[1, i]``."""
    return {k: communication_set(k, i) for k in range(1, i + 1)}


def common_round(k: int, k_prime: int, i: int) -> int:
    """Return the round guaranteed by Observation 5 for ``k < k'``.

    That is, the smallest ``r`` in ``S_k intersect S_k'`` with
    ``k < r <= k'``.  Raises :class:`ValueError` if the precondition
    ``1 <= k < k' <= i`` is violated, and :class:`AssertionError` if the
    property itself fails (it never should; this is the paper's
    Observation 5 and is property-tested).
    """
    if not 1 <= k < k_prime <= i:
        raise ValueError(f"need 1 <= k < k' <= i, got k={k}, k'={k_prime}, i={i}")
    candidates = sorted(
        r
        for r in communication_set(k, i) & communication_set(k_prime, i)
        if k < r <= k_prime
    )
    if not candidates:
        raise AssertionError(
            f"Observation 5 violated for k={k}, k'={k_prime}, i={i}"
        )
    return candidates[0]


@dataclass(frozen=True)
class VirtualTree:
    """A materialised virtual binary tree ``B*([1, i])`` with its schedule.

    Convenience wrapper bundling the parameter ``i`` with the precomputed
    communication sets.  Instances are immutable and cheap to share between
    simulated nodes (in the real distributed algorithm every node recomputes
    the structure locally; sharing it here is only a simulation-level
    optimisation and does not change any measured quantity).
    """

    parameter: int
    depth: int
    size: int
    sets: Tuple[FrozenSet[int], ...]

    @classmethod
    def build(cls, i: int) -> "VirtualTree":
        """Construct the tree and all communication sets for parameter *i*."""
        sets = tuple(communication_set(k, i) for k in range(1, i + 1))
        return cls(parameter=i, depth=tree_depth(i), size=tree_size(i), sets=sets)

    def awake_rounds(self, k: int) -> FrozenSet[int]:
        """Return ``S_k([1, i])`` for ``k`` in ``[1, i]``."""
        if not 1 <= k <= self.parameter:
            raise ValueError(f"k={k} outside [1, {self.parameter}]")
        return self.sets[k - 1]

    def max_awake_rounds(self) -> int:
        """Return ``max_k |S_k|`` (the awake-complexity contribution)."""
        return max(len(s) for s in self.sets)

    def rounds_with_listener(self, r: int) -> List[int]:
        """Return every ``k`` whose communication set contains round *r*."""
        return [k for k in range(1, self.parameter + 1) if r in self.sets[k - 1]]


def figure_example() -> Dict[str, object]:
    """Regenerate the worked example of the paper's Figures 1 and 2.

    Returns a dictionary with the in-order labels of ``B([1, 6])``, the
    relabeled ``B*([1, 6])`` values, and the two communication sets shown in
    the figures.  Used by the E8 benchmark and the documentation example.
    """
    i = 6
    size = tree_size(i)
    b_labels = list(range(1, size + 1))
    b_star_labels = [relabel(x) for x in b_labels]
    return {
        "i": i,
        "depth": tree_depth(i),
        "b_labels": b_labels,
        "b_star_labels": b_star_labels,
        "S_3": sorted(communication_set(3, i)),
        "S_5": sorted(communication_set(5, i)),
        "common_round_3_5": common_round(3, 5, i),
    }
