"""Maximal independent set definitions and verification.

Every algorithm in the library (the paper's and the baselines) is checked
against these verifiers, both in tests and — optionally — after every
simulated run (:class:`repro.experiments.harness` turns verification on by
default).
"""

from __future__ import annotations

from typing import Iterable, List, Set

import networkx as nx

from repro.errors import VerificationError


def is_independent_set(graph: nx.Graph, candidate: Iterable) -> bool:
    """Return True iff no two nodes of *candidate* are adjacent in *graph*."""
    nodes = set(candidate)
    missing = nodes - set(graph.nodes)
    if missing:
        return False
    for u in nodes:
        for v in graph.neighbors(u):
            if v in nodes and v != u:
                return False
    return True


def is_maximal_independent_set(graph: nx.Graph, candidate: Iterable) -> bool:
    """Return True iff *candidate* is an independent set that is maximal.

    Maximality: every node of the graph is either in the set or adjacent to a
    node in the set (the domination condition (i) of the paper's definition).
    """
    nodes = set(candidate)
    if not is_independent_set(graph, nodes):
        return False
    for v in graph.nodes:
        if v in nodes:
            continue
        if not any(u in nodes for u in graph.neighbors(v)):
            return False
    return True


def uncovered_nodes(graph: nx.Graph, candidate: Iterable) -> List:
    """Return nodes that are neither in *candidate* nor adjacent to it."""
    nodes = set(candidate)
    return [
        v
        for v in graph.nodes
        if v not in nodes and not any(u in nodes for u in graph.neighbors(v))
    ]


def conflicting_edges(graph: nx.Graph, candidate: Iterable) -> List:
    """Return edges of *graph* whose both endpoints are in *candidate*."""
    nodes = set(candidate)
    return [(u, v) for u, v in graph.edges if u in nodes and v in nodes]


def verify_mis(graph: nx.Graph, candidate: Iterable, label: str = "output") -> Set:
    """Verify *candidate* is an MIS of *graph*, raising a detailed error if not.

    Returns the candidate as a set on success so callers can chain the call.
    """
    nodes = set(candidate)
    conflicts = conflicting_edges(graph, nodes)
    if conflicts:
        raise VerificationError(
            f"{label} is not independent: {len(conflicts)} conflicting edge(s), "
            f"e.g. {conflicts[:3]}"
        )
    uncovered = uncovered_nodes(graph, nodes)
    if uncovered:
        raise VerificationError(
            f"{label} is not maximal: {len(uncovered)} uncovered node(s), "
            f"e.g. {uncovered[:5]}"
        )
    return nodes


def greedy_mis_from_order(graph: nx.Graph, order: Iterable) -> Set:
    """Return the lexicographically-first MIS (LFMIS) for a node *order*.

    This is the sequential greedy scan the paper's Section 4.3 describes:
    process nodes in the given order and add each to the output unless a
    neighbour is already in it.  The result is the LFMIS with respect to that
    ordering, and is the ground truth the distributed LFMIS algorithms
    (VT-MIS, LDT-MIS, Awake-MIS) are compared against in tests.
    """
    order = list(order)
    order_set = set(order)
    graph_nodes = set(graph.nodes)
    if order_set != graph_nodes:
        unknown = order_set - graph_nodes
        missing = graph_nodes - order_set
        raise ValueError(
            "order must be a permutation of the graph's nodes "
            f"(unknown: {sorted(unknown)[:5]}, missing: {sorted(missing)[:5]})"
        )
    mis: Set = set()
    blocked: Set = set()
    for v in order:
        if v in blocked:
            continue
        mis.add(v)
        blocked.add(v)
        blocked.update(graph.neighbors(v))
    return mis
