"""Sequential randomized greedy MIS and the residual-sparsity machinery.

The paper's main algorithm is a distributed, awake-efficient implementation
of the classic *randomized greedy* (lexicographically-first) MIS:  draw a
uniformly random permutation of the nodes, scan it, and add each node unless
a neighbour was already added.  Two properties of this sequential process
drive the analysis:

* **Composability** (Section 3): running greedy on a prefix of the order and
  then on the residual graph of the suffix yields the same MIS as running it
  on the whole order at once.
* **Residual sparsity** (Lemma 2): after the first ``t`` nodes of the order
  have been processed, the graph induced by the *undecided* nodes among the
  first ``t' > t`` has maximum degree roughly ``(t'/t) * ln(n / eps)`` w.h.p.

This module implements the sequential process, the residual-graph operator,
and helpers used by :mod:`repro.analysis.residual` to check Lemma 2
empirically (experiment E6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import networkx as nx

from repro.core.mis import greedy_mis_from_order
from repro.rng import SeedLike, make_rng


@dataclass
class GreedyTrace:
    """Full trace of one sequential randomized-greedy execution.

    Attributes
    ----------
    order:
        The random permutation of the nodes that was processed.
    mis:
        The resulting lexicographically-first MIS.
    joined_at:
        For each MIS node, its (1-indexed) position in the order.
    decided_at:
        For every node, the position at which it became decided: the position
        at which it joined, or the position at which its earliest MIS
        neighbour joined.
    """

    order: List
    mis: Set
    joined_at: Dict = field(default_factory=dict)
    decided_at: Dict = field(default_factory=dict)


def random_order(graph: nx.Graph, seed: SeedLike = None) -> List:
    """Return a uniformly random permutation of the nodes of *graph*."""
    rng = make_rng(seed)
    order = list(graph.nodes)
    rng.shuffle(order)
    return order


def randomized_greedy_mis(graph: nx.Graph, seed: SeedLike = None) -> Set:
    """Run sequential randomized greedy MIS and return the MIS."""
    return greedy_mis_from_order(graph, random_order(graph, seed))


def randomized_greedy_trace(graph: nx.Graph, seed: SeedLike = None) -> GreedyTrace:
    """Run sequential randomized greedy MIS and return the full trace."""
    order = random_order(graph, seed)
    return greedy_trace_from_order(graph, order)


def greedy_trace_from_order(graph: nx.Graph, order: Sequence) -> GreedyTrace:
    """Run the greedy scan over *order* recording join/decide positions."""
    mis: Set = set()
    joined_at: Dict = {}
    decided_at: Dict = {}
    for position, v in enumerate(order, start=1):
        if v in decided_at:
            continue
        mis.add(v)
        joined_at[v] = position
        decided_at[v] = position
        for u in graph.neighbors(v):
            if u not in decided_at:
                decided_at[u] = position
    return GreedyTrace(order=list(order), mis=mis, joined_at=joined_at,
                       decided_at=decided_at)


def closed_neighborhood(graph: nx.Graph, nodes: Set) -> Set:
    """Return ``N(nodes)``: the nodes together with all their neighbours."""
    closed = set(nodes)
    for v in nodes:
        closed.update(graph.neighbors(v))
    return closed


def residual_graph(graph: nx.Graph, order: Sequence, t: int,
                   t_prime: Optional[int] = None) -> nx.Graph:
    """Return ``G[V_{t'} \\ N(M_t)]`` as in Lemma 2.

    ``V_t`` is the set of the first ``t`` nodes of *order*, ``M_t`` the LFMIS
    over ``G[V_t]``, and the returned graph is induced by the first ``t'``
    nodes that are neither in ``M_t`` nor adjacent to it.  ``t'`` defaults to
    ``len(order)`` (the whole graph).
    """
    order = list(order)
    n = len(order)
    if not 1 <= t <= n:
        raise ValueError(f"t={t} must be in [1, {n}]")
    t_prime = n if t_prime is None else t_prime
    if not t < t_prime <= n:
        raise ValueError(f"t'={t_prime} must satisfy t < t' <= {n}")
    prefix = order[:t]
    prefix_graph = graph.subgraph(prefix)
    mis_prefix = greedy_mis_from_order(prefix_graph, prefix)
    covered = closed_neighborhood(graph, mis_prefix)
    survivors = [v for v in order[:t_prime] if v not in covered]
    return graph.subgraph(survivors).copy()


def residual_max_degree(graph: nx.Graph, order: Sequence, t: int,
                        t_prime: Optional[int] = None) -> int:
    """Return the maximum degree of the Lemma 2 residual graph."""
    residual = residual_graph(graph, order, t, t_prime)
    if residual.number_of_nodes() == 0:
        return 0
    return max(dict(residual.degree()).values(), default=0)


def composability_check(graph: nx.Graph, order: Sequence, split: int) -> bool:
    """Check the composability property of randomized greedy MIS.

    Runs greedy on the first *split* nodes, then on the residual graph of the
    remaining nodes, and verifies that the union equals the greedy MIS of the
    full order.  Used by tests; always True per the paper's Section 3 claim.
    """
    order = list(order)
    full = greedy_mis_from_order(graph, order)
    prefix = order[:split]
    prefix_graph = graph.subgraph(prefix)
    first = greedy_mis_from_order(prefix_graph, prefix)
    covered = closed_neighborhood(graph, first)
    suffix = [v for v in order if v not in covered]
    suffix_graph = graph.subgraph(suffix)
    second = greedy_mis_from_order(suffix_graph, suffix)
    return first | second == full


@dataclass(frozen=True)
class ResidualSparsityPoint:
    """One measurement of Lemma 2: prefix size vs residual maximum degree."""

    t: int
    t_prime: int
    max_degree: int
    lemma_bound: float

    @property
    def within_bound(self) -> bool:
        """True when the measured degree respects the lemma's bound."""
        return self.max_degree <= self.lemma_bound


def residual_sparsity_profile(
    graph: nx.Graph,
    prefix_sizes: Sequence[int],
    seed: SeedLike = None,
    epsilon: float = 1.0 / 16.0,
    t_prime: Optional[int] = None,
) -> List[ResidualSparsityPoint]:
    """Measure residual max degree for several prefix sizes (experiment E6).

    For each ``t`` in *prefix_sizes*, draws the same random order (so points
    are comparable), computes the residual graph for (``t``, ``t'``) and
    records the measured maximum degree next to Lemma 2's bound
    ``(t'/t) * ln(n / eps)``.
    """
    import math

    order = random_order(graph, seed)
    n = graph.number_of_nodes()
    effective_t_prime = n if t_prime is None else t_prime
    points: List[ResidualSparsityPoint] = []
    for t in prefix_sizes:
        if not 1 <= t < effective_t_prime:
            continue
        max_deg = residual_max_degree(graph, order, t, effective_t_prime)
        bound = (effective_t_prime / t) * math.log(n / epsilon)
        points.append(
            ResidualSparsityPoint(
                t=t, t_prime=effective_t_prime, max_degree=max_deg,
                lemma_bound=bound,
            )
        )
    return points
