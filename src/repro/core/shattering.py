"""Graph shattering by random partition (paper Subsection 4.4, Lemma 3).

Lemma 3 of the paper: if the nodes of an ``n``-node graph ``H`` of maximum
degree ``Delta`` are partitioned into ``2 * Delta`` classes uniformly at
random, then each class induces a subgraph whose connected components all
have size at most ``6 ln(n / eps)`` with probability at least ``1 - eps``.

This is the property that lets ``Awake-MIS`` run ``LDT-MIS`` on each batch in
``O(log log n)`` awake rounds: the undecided nodes of a batch form
``O(log n)``-sized components.  The module implements the partitioning
process and measurement helpers used by experiment E7 and by property tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.rng import SeedLike, make_rng


def random_partition(graph: nx.Graph, classes: int, seed: SeedLike = None) -> Dict:
    """Assign each node of *graph* a uniform class in ``[1, classes]``.

    Returns a ``{node: class_index}`` mapping.  This is the "each node is in
    set U_j with probability 1/(2*Delta)" process of Lemma 3 with
    ``classes = 2 * Delta``.
    """
    if classes < 1:
        raise ValueError(f"number of classes must be >= 1, got {classes}")
    rng = make_rng(seed)
    return {v: rng.randint(1, classes) for v in graph.nodes}


def class_subgraphs(graph: nx.Graph, assignment: Dict) -> Dict[int, nx.Graph]:
    """Return the induced subgraph ``H[U_j]`` for every class ``j``."""
    by_class: Dict[int, List] = {}
    for node, cls in assignment.items():
        by_class.setdefault(cls, []).append(node)
    return {cls: graph.subgraph(nodes).copy() for cls, nodes in by_class.items()}


def component_sizes(graph: nx.Graph) -> List[int]:
    """Return the sizes of the connected components of *graph* (desc order)."""
    return sorted((len(c) for c in nx.connected_components(graph)), reverse=True)


def largest_component_per_class(graph: nx.Graph, assignment: Dict) -> Dict[int, int]:
    """Return, for each class, the size of its largest induced component."""
    result: Dict[int, int] = {}
    for cls, subgraph in class_subgraphs(graph, assignment).items():
        sizes = component_sizes(subgraph)
        result[cls] = sizes[0] if sizes else 0
    return result


def lemma3_bound(n: int, epsilon: float = 1.0 / 16.0) -> float:
    """Return Lemma 3's component-size bound ``6 ln(n / eps)``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    return 6.0 * math.log(n / epsilon)


@dataclass(frozen=True)
class ShatteringMeasurement:
    """One measurement of Lemma 3 on a given graph.

    Records the graph size and maximum degree, the number of classes used,
    the largest induced component observed over all classes, and the lemma's
    bound for comparison.
    """

    n: int
    max_degree: int
    classes: int
    largest_component: int
    lemma_bound: float

    @property
    def within_bound(self) -> bool:
        """True when the observed largest component respects the bound."""
        return self.largest_component <= self.lemma_bound


def measure_shattering(
    graph: nx.Graph,
    seed: SeedLike = None,
    epsilon: float = 1.0 / 16.0,
    classes: Optional[int] = None,
) -> ShatteringMeasurement:
    """Partition *graph* into ``2 * Delta`` classes and measure shattering.

    *classes* overrides the default ``2 * max_degree`` (used by tests that
    deliberately under-partition to watch the bound fail).
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise ValueError("cannot measure shattering of an empty graph")
    max_degree = max(dict(graph.degree()).values(), default=0)
    effective_classes = classes if classes is not None else max(1, 2 * max_degree)
    assignment = random_partition(graph, effective_classes, seed)
    per_class = largest_component_per_class(graph, assignment)
    largest = max(per_class.values(), default=0)
    return ShatteringMeasurement(
        n=n,
        max_degree=max_degree,
        classes=effective_classes,
        largest_component=largest,
        lemma_bound=lemma3_bound(n, epsilon),
    )


def shattering_profile(
    graph: nx.Graph,
    trials: int,
    seed: SeedLike = None,
    epsilon: float = 1.0 / 16.0,
) -> List[ShatteringMeasurement]:
    """Repeat :func:`measure_shattering` over *trials* independent partitions."""
    rng = make_rng(seed)
    return [
        measure_shattering(graph, seed=rng.randrange(2**63), epsilon=epsilon)
        for _ in range(trials)
    ]


def empirical_failure_rate(measurements: Sequence[ShatteringMeasurement]) -> float:
    """Return the fraction of measurements that exceeded the Lemma 3 bound."""
    if not measurements:
        return 0.0
    failures = sum(1 for m in measurements if not m.within_bound)
    return failures / len(measurements)
