"""Transmission schedules for LDT procedures (paper Appendix A.1).

All LDT procedures (broadcast, upcast, transmit-adjacent, ranking,
re-orientation) are built on the same deterministic *transmission schedule*:
a block of ``2 * n_bound + 1`` consecutive rounds in which a node at depth
``d`` of its LDT is assigned five named rounds:

=====================  =========================
name                   round offset within block
=====================  =========================
``Down-Receive``       ``d``
``Down-Send``          ``d + 1``
``Side-Send-Receive``  ``n_bound + 1``
``Up-Receive``         ``2 * n_bound - d + 1``
``Up-Send``            ``2 * n_bound - d + 2``
=====================  =========================

(the root, at depth 0, only uses ``Down-Send``, ``Side-Send-Receive`` and
``Up-Receive``).  Offsets are 1-based as in the paper.  Because all
participants know ``n_bound`` and the block's start round, every procedure is
globally synchronised without any extra communication, and each procedure
costs O(1) awake rounds and O(n_bound) total rounds per block.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransmissionSchedule:
    """Named round numbers of one schedule block for one node.

    Instances are produced by :func:`schedule_for`; all values are *absolute*
    round numbers.
    """

    block_start: int
    n_bound: int
    depth: int
    down_receive: int
    down_send: int
    side: int
    up_receive: int
    up_send: int


def block_length(n_bound: int) -> int:
    """Return the number of rounds one schedule block occupies.

    The paper uses ``2 * n_bound + 1`` named offsets (1-based); we reserve
    ``2 * n_bound + 2`` rounds per block so that consecutive blocks never
    overlap even for depth-0 corner cases.
    """
    if n_bound < 1:
        raise ValueError(f"n_bound must be >= 1, got {n_bound}")
    return 2 * n_bound + 2


def schedule_for(block_start: int, n_bound: int, depth: int) -> TransmissionSchedule:
    """Return the absolute named rounds for a node at *depth*.

    ``block_start`` is the absolute round corresponding to offset 1 of the
    block (i.e. the first usable round).
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if depth > n_bound:
        raise ValueError(
            f"depth {depth} exceeds the LDT size bound {n_bound}; the bound "
            "is too small for this component"
        )
    base = block_start - 1  # so that offset k lands on block_start + k - 1
    return TransmissionSchedule(
        block_start=block_start,
        n_bound=n_bound,
        depth=depth,
        down_receive=base + max(1, depth),
        down_send=base + depth + 1,
        side=base + n_bound + 1,
        up_receive=base + 2 * n_bound - depth + 1,
        up_send=base + 2 * n_bound - depth + 2,
    )


def next_block(block_start: int, n_bound: int, blocks: int = 1) -> int:
    """Return the start round of the block *blocks* after *block_start*."""
    return block_start + blocks * block_length(n_bound)
