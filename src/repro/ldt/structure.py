"""Labeled distance tree (LDT) per-node state.

An LDT (paper Section 5.2 / Appendix A.1) is a rooted spanning tree of a
connected node set in which every node knows

* the ID of the tree's root (the *LDT ID*),
* its own depth (hop distance to the root along tree edges), and
* which of its ports lead to its parent and to its children.

During construction each node starts as a singleton LDT (it is its own root
with depth 0) and fragments are merged until one LDT spans the component.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional


@dataclass
class LDTState:
    """The local view one node has of the LDT it belongs to."""

    #: ID of the LDT = ID of its root node.
    ldt_id: int
    #: This node's depth in the tree (0 for the root).
    depth: int
    #: Port leading to the parent, or ``None`` for the root.
    parent_port: Optional[int]
    #: Ports leading to the children (possibly empty).
    children_ports: List[int] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        """True when this node is the root of its LDT."""
        return self.parent_port is None

    @property
    def is_leaf(self) -> bool:
        """True when this node has no children in the LDT."""
        return not self.children_ports

    def copy(self) -> "LDTState":
        """Return an independent copy (children list included)."""
        return replace(self, children_ports=list(self.children_ports))

    @classmethod
    def singleton(cls, node_id: int) -> "LDTState":
        """The initial state: every node is the root of its own LDT."""
        return cls(ldt_id=node_id, depth=0, parent_port=None, children_ports=[])

    def reroot_towards(self, new_ldt_id: int, new_depth: int,
                       new_parent_port: Optional[int],
                       old_parent_becomes_child: bool) -> None:
        """Apply a re-orientation step during fragment merging.

        ``new_parent_port`` becomes the parent; when
        *old_parent_becomes_child* is True the previous parent port is added
        to the children (this happens for nodes on the path from the merge
        point to the old root).
        """
        old_parent = self.parent_port
        self.ldt_id = new_ldt_id
        self.depth = new_depth
        if new_parent_port is not None and new_parent_port in self.children_ports:
            self.children_ports.remove(new_parent_port)
        self.parent_port = new_parent_port
        if old_parent_becomes_child and old_parent is not None:
            if old_parent not in self.children_ports:
                self.children_ports.append(old_parent)
