"""Cole–Vishkin colour reduction on rooted trees / forests.

The LDT construction (paper Appendix A.2, stage 2c) 6-colours the fragment
supergraph — a rooted forest whose "nodes" are LDT fragments and whose edges
are the chosen outgoing edges — using a Cole–Vishkin style iteration: in each
step every fragment replaces its colour by ``2 * i + b`` where ``i`` is the
index of the lowest bit in which its colour differs from its parent's colour
and ``b`` is its own bit at that index.  Starting from distinct IDs, after
``O(log* I)`` iterations the colours lie in ``{0, ..., 5}`` and the colouring
is proper (adjacent fragments differ).

This module holds the *pure* arithmetic: one reduction step, the number of
iterations required for a given ID space, and a sequential reference
implementation on an explicit parent map used to cross-check the distributed
simulation in tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

#: Number of colours Cole–Vishkin converges to on trees.
FINAL_COLORS = 6


def cv_step(color: int, parent_color: int) -> int:
    """One Cole–Vishkin reduction step for a non-root node.

    Requires ``color != parent_color``; returns ``2 * i + b`` for the lowest
    differing bit index ``i`` and own bit value ``b``.
    """
    if color < 0 or parent_color < 0:
        raise ValueError("colours must be non-negative integers")
    if color == parent_color:
        raise ValueError(
            f"cv_step requires distinct colours, got {color} twice; "
            "the colouring invariant was violated"
        )
    diff = color ^ parent_color
    index = (diff & -diff).bit_length() - 1
    own_bit = (color >> index) & 1
    return 2 * index + own_bit


def cv_root_step(color: int) -> int:
    """The reduction step for a root (which has no parent).

    The root pretends its parent's colour is its own with bit 0 flipped,
    which makes its new colour its own bit 0 (0 or 1) while preserving
    properness with respect to every child (see the analysis in the module
    docstring of :mod:`repro.ldt.construct`).
    """
    return cv_step(color, color ^ 1)


def iterations_to_six_colors(id_space: int) -> int:
    """Return a sufficient number of CV iterations for IDs in ``[1, id_space]``.

    Computed by iterating the worst-case bit-length recurrence
    ``b -> bit_length(2 * b - 1)`` until it stabilises at 3 bits, plus one
    final iteration (at 3 bits one more step lands in ``{0, ..., 5}``), plus
    one iteration of slack.
    """
    bits = max(1, int(id_space).bit_length())
    iterations = 0
    while bits > 3:
        bits = (2 * bits - 1).bit_length()
        iterations += 1
        if iterations > 64:  # pragma: no cover - defensive
            break
    return iterations + 2


def six_color_rooted_forest(parents: Dict[int, Optional[int]],
                            colors: Dict[int, int],
                            iterations: Optional[int] = None) -> Dict[int, int]:
    """Sequential reference: run CV on an explicit rooted forest.

    *parents* maps every node to its parent (``None`` for roots); *colors*
    gives the initial colours, which must be distinct on adjacent pairs
    (IDs always are).  Returns the final colouring; used by tests to verify
    the distributed fragment-level simulation and the convergence bound.
    """
    current = dict(colors)
    if iterations is None:
        iterations = iterations_to_six_colors(max(current.values()) + 1)
    for _ in range(iterations):
        updated = {}
        for node, parent in parents.items():
            if parent is None:
                updated[node] = cv_root_step(current[node])
            else:
                updated[node] = cv_step(current[node], current[parent])
        current = updated
    return current


def is_proper_coloring(parents: Dict[int, Optional[int]],
                       colors: Dict[int, int]) -> bool:
    """Return True when no node shares a colour with its parent."""
    return all(
        parent is None or colors[node] != colors[parent]
        for node, parent in parents.items()
    )


def color_classes_used(colors: Iterable[int]) -> int:
    """Return the number of distinct colours in use."""
    return len(set(colors))
