"""Distributed construction of a labeled distance tree (paper Appendix A.2).

``LDT-Construct-Round`` builds an LDT spanning each connected component of
the participating nodes by GHS-style fragment merging:

1.  every node starts as a singleton fragment (its own LDT);
2.  in each *merge phase* every fragment finds its minimum outgoing edge
    (stage 1), the fragments of each supergraph component organise into a
    rooted tree, 6-colour themselves with Cole–Vishkin, compute a maximal
    matching of fragments, and unmatched fragments attach to a matched
    neighbour (stage 2);
3.  each resulting merge group (one matched pair plus attached fragments —
    diameter at most 4) merges into a single LDT whose ID is the smaller ID
    of the matched pair, re-orienting parent pointers and recomputing depths
    with two transmission-schedule waves (stage 3).

Each phase at least halves the number of fragments, so
``ceil(log2(n_bound)) + 1`` phases suffice.  A fragment that finds no
outgoing edge spans its whole component; its nodes stop participating (the
remaining construction rounds are sleeping rounds for them), which keeps the
awake cost of small shattered components proportional to *their* size rather
than to the bound.

Every phase consists of a fixed number of schedule *blocks* computed only
from globally known quantities (``n_bound`` and the ID space), so all
participants stay in lockstep without extra coordination.  Per phase a node
is awake O(1) rounds per block for O(log* I) + O(1) blocks, matching the
bounds of Lemma 7 / Lemma 15: O(log n' · log* I) awake complexity and
O(poly(n') · log* I) round complexity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ldt.cole_vishkin import cv_root_step, cv_step, iterations_to_six_colors
from repro.ldt.procedures import (
    fragment_broadcast,
    reroot_fragment,
    transmit_adjacent,
    upcast_min,
)
from repro.ldt.schedule import block_length
from repro.ldt.structure import LDTState

#: Number of matching sub-phases (one per Cole–Vishkin colour).
MATCHING_COLORS = 6
#: Blocks used per matching sub-phase.
BLOCKS_PER_MATCHING_SUBPHASE = 6
#: Blocks used by stage 1 + supergraph-root detection.
BLOCKS_STAGE1 = 6
#: Blocks used by the attach step (status refresh, candidate upcast,
#: candidate broadcast, attach notifications).
BLOCKS_ATTACH = 4
#: Blocks used by each of the two merge waves (transmit + two re-root blocks).
BLOCKS_PER_WAVE = 3


def cv_iterations(id_space: int) -> int:
    """Number of Cole–Vishkin iterations used by the construction."""
    return iterations_to_six_colors(id_space)


def blocks_per_phase(id_space: int) -> int:
    """Total schedule blocks per merge phase (identical for all nodes)."""
    return (
        BLOCKS_STAGE1
        + 3 * cv_iterations(id_space)
        + MATCHING_COLORS * BLOCKS_PER_MATCHING_SUBPHASE
        + BLOCKS_ATTACH
        + 2 * BLOCKS_PER_WAVE
    )


def merge_phases(n_bound: int) -> int:
    """Number of merge phases that always suffice for components <= n_bound."""
    return max(1, math.ceil(math.log2(max(2, n_bound)))) + 1


def construction_rounds(n_bound: int, id_space: int) -> int:
    """Total rounds reserved by ``ldt_construct`` (a globally known constant)."""
    return merge_phases(n_bound) * blocks_per_phase(id_space) * block_length(n_bound)


@dataclass
class ConstructionResult:
    """What ``ldt_construct`` returns to its caller."""

    ldt: LDTState
    #: Ports of the neighbours that participated in the construction (i.e.
    #: the node's neighbourhood inside its component of the induced subgraph).
    participant_ports: List[int] = field(default_factory=list)
    #: Merge phases actually executed before the fragment spanned the
    #: component (diagnostics; bounded by :func:`merge_phases`).
    phases_used: int = 0


def ldt_construct(
    my_id: int,
    id_space: int,
    ports: List[int],
    n_bound: int,
    start_round: int,
):
    """Sub-protocol building an LDT over this node's component.

    Parameters
    ----------
    my_id:
        This node's unique ID in ``[1, id_space]``.
    id_space:
        Common upper bound ``I`` on IDs (drives the Cole–Vishkin budget).
    ports:
        Ports over which participating neighbours may be reached (messages
        sent to non-participants are simply lost; actual participants are
        discovered in the first block).
    n_bound:
        Upper bound on the component size, known to every participant.
    start_round:
        Absolute round at which the (globally agreed) construction schedule
        begins.  The construction occupies exactly
        :func:`construction_rounds` rounds.

    Returns a :class:`ConstructionResult`.  Drive with ``yield from``.
    """
    blk = block_length(n_bound)
    per_phase = blocks_per_phase(id_space)
    phases = merge_phases(n_bound)
    iterations = cv_iterations(id_space)

    ldt = LDTState.singleton(my_id)
    participant_ports: List[int] = list(ports)
    discovered = False
    phases_used = 0

    def block_start(phase: int, block_index: int) -> int:
        return start_round + (phase * per_phase + block_index) * blk

    for phase in range(phases):
        phases_used = phase + 1

        # ---------------- Stage 1: minimum outgoing edge ------------------ #
        # Block 0: exchange (fragment id, node id) with neighbours.
        inbox = yield from transmit_adjacent(
            ldt.depth, n_bound, block_start(phase, 0),
            [(port, ("frag", ldt.ldt_id, my_id)) for port in participant_ports],
        )
        neighbor_frag: Dict[int, int] = {}
        neighbor_node: Dict[int, int] = {}
        for port, payload in inbox:
            if isinstance(payload, tuple) and payload[0] == "frag":
                neighbor_frag[port] = payload[1]
                neighbor_node[port] = payload[2]
        if not discovered:
            participant_ports = sorted(neighbor_frag)
            discovered = True

        outgoing_ports = [
            port for port in participant_ports
            if neighbor_frag.get(port) is not None
            and neighbor_frag[port] != ldt.ldt_id
        ]

        # Block 1: upcast the fragment's minimum outgoing edge.
        candidate = None
        for port in outgoing_ports:
            other = neighbor_node[port]
            edge_key = (min(my_id, other), max(my_id, other))
            entry = (edge_key[0], edge_key[1], my_id, port, neighbor_frag[port])
            if candidate is None or entry < candidate:
                candidate = entry
        subtree_best = yield from upcast_min(
            ldt, n_bound, block_start(phase, 1), candidate
        )

        # Block 2: broadcast the chosen edge (or "done").
        chosen = yield from fragment_broadcast(
            ldt, n_bound, block_start(phase, 2),
            subtree_best if ldt.is_root else None,
        )
        if chosen is None:
            # No outgoing edge: the fragment spans the whole component.
            break
        _, _, owner_id, owner_port, parent_frag = chosen
        i_am_owner = owner_id == my_id

        # Block 3: the owner notifies the other endpoint; everyone learns
        # which incident edges were chosen *into* its fragment.
        sends = []
        if i_am_owner:
            sends.append((owner_port, ("chosen", ldt.ldt_id)))
        inbox = yield from transmit_adjacent(
            ldt.depth, n_bound, block_start(phase, 3), sends
        )
        in_chosen: Dict[int, int] = {}
        for port, payload in inbox:
            if isinstance(payload, tuple) and payload[0] == "chosen":
                in_chosen[port] = payload[1]
        reciprocal = i_am_owner and owner_port in in_chosen

        # Block 4 + 5: determine whether the fragment is one of the two
        # fragments joined by its component's minimum edge (the "root pair").
        pair_value = (0, parent_frag) if reciprocal else None
        pair_best = yield from upcast_min(
            ldt, n_bound, block_start(phase, 4), pair_value
        )
        pair_info = yield from fragment_broadcast(
            ldt, n_bound, block_start(phase, 5),
            pair_best if ldt.is_root else None,
        )
        is_pair = pair_info is not None
        pair_partner = pair_info[1] if is_pair else None
        is_tree_root = bool(is_pair and ldt.ldt_id < pair_partner)

        # ---------------- Stage 2a: Cole–Vishkin 6-colouring -------------- #
        color = ldt.ldt_id
        cv_base = BLOCKS_STAGE1
        for iteration in range(iterations):
            b0 = block_start(phase, cv_base + 3 * iteration)
            b1 = block_start(phase, cv_base + 3 * iteration + 1)
            b2 = block_start(phase, cv_base + 3 * iteration + 2)

            # Share the fragment colour with the fragments that chose an edge
            # into us (their owner reads it), and read our parent's colour.
            parent_color = None
            need_send = bool(in_chosen)
            need_listen = i_am_owner and not is_tree_root
            if need_send or need_listen:
                inbox = yield from transmit_adjacent(
                    ldt.depth, n_bound, b0,
                    [(port, ("col", color)) for port in in_chosen],
                )
                if need_listen:
                    for port, payload in inbox:
                        if (port == owner_port and isinstance(payload, tuple)
                                and payload[0] == "col"):
                            parent_color = payload[1]

            up_value = (parent_color,) if parent_color is not None else None
            up_best = yield from upcast_min(ldt, n_bound, b1, up_value)

            if ldt.is_root:
                if is_tree_root or up_best is None:
                    new_color = cv_root_step(color)
                else:
                    new_color = cv_step(color, up_best[0])
                color = yield from fragment_broadcast(ldt, n_bound, b2, new_color)
            else:
                color = yield from fragment_broadcast(ldt, n_bound, b2)
            if color is None:  # pragma: no cover - defensive
                color = ldt.ldt_id

        # ---------------- Stage 2b: maximal matching of fragments --------- #
        matching_base = cv_base + 3 * iterations
        matched = False
        partner_frag: Optional[int] = None
        match_endpoint_id: Optional[int] = None
        match_endpoint_port: Optional[int] = None
        #: Child fragments (by in-chosen port) known to be matched already.
        child_matched_ports: set = set()

        for sub_phase in range(MATCHING_COLORS):
            m = matching_base + BLOCKS_PER_MATCHING_SUBPHASE * sub_phase
            m0 = block_start(phase, m)
            m1 = block_start(phase, m + 1)
            m2 = block_start(phase, m + 2)
            m3 = block_start(phase, m + 3)
            m4 = block_start(phase, m + 4)
            m5 = block_start(phase, m + 5)

            # m0: owners report their fragment's matched status to their
            # parent fragment; nodes with in-chosen edges learn which child
            # fragments are still unmatched.
            child_unmatched: Dict[int, bool] = {}
            sends = []
            if i_am_owner:
                sends.append((owner_port, ("mst", matched)))
            if sends or in_chosen:
                inbox = yield from transmit_adjacent(ldt.depth, n_bound, m0, sends)
                for port, payload in inbox:
                    if port in in_chosen and isinstance(payload, tuple) \
                            and payload[0] == "mst":
                        child_unmatched[port] = not payload[1]
                        if payload[1]:
                            child_matched_ports.add(port)

            # m1 + m2: unmatched fragments of the current colour pick an
            # unmatched child fragment to match with.
            proposal = None
            if not matched and color == sub_phase:
                for port, available in sorted(child_unmatched.items()):
                    if available:
                        proposal = (my_id, port, in_chosen[port])
                        break
            proposal_best = yield from upcast_min(ldt, n_bound, m1, proposal)
            decision = yield from fragment_broadcast(
                ldt, n_bound, m2,
                proposal_best if ldt.is_root and not matched and color == sub_phase
                else None,
            )
            send_match_port = None
            if decision is not None:
                matched = True
                match_endpoint_id, match_endpoint_port = decision[0], decision[1]
                partner_frag = decision[2]
                if decision[0] == my_id:
                    send_match_port = decision[1]
                    child_matched_ports.add(decision[1])

            # m3: the selected edge's parent-side endpoint tells the child
            # fragment it has been matched.
            got_match_from: Optional[int] = None
            sends = []
            if send_match_port is not None:
                sends.append((send_match_port, ("match", ldt.ldt_id)))
            if sends or (i_am_owner and not matched):
                inbox = yield from transmit_adjacent(ldt.depth, n_bound, m3, sends)
                if i_am_owner and not matched:
                    for port, payload in inbox:
                        if (port == owner_port and isinstance(payload, tuple)
                                and payload[0] == "match"):
                            got_match_from = payload[1]

            # m4 + m5: propagate "our parent matched us" through the fragment.
            notify = (got_match_from, my_id, owner_port) \
                if got_match_from is not None else None
            notify_best = yield from upcast_min(ldt, n_bound, m4, notify)
            update = yield from fragment_broadcast(
                ldt, n_bound, m5,
                notify_best if ldt.is_root and not matched else None,
            )
            if update is not None and not matched:
                matched = True
                partner_frag = update[0]
                match_endpoint_id, match_endpoint_port = update[1], update[2]

        # ---------------- Stage 2c: attach unmatched fragments ------------ #
        attach_base = matching_base + MATCHING_COLORS * BLOCKS_PER_MATCHING_SUBPHASE
        a_refresh = block_start(phase, attach_base)
        a0 = block_start(phase, attach_base + 1)
        a1 = block_start(phase, attach_base + 2)
        a2 = block_start(phase, attach_base + 3)

        # Status refresh: owners report the final matched status of their
        # fragment, so an unmatched supergraph root can attach to a child
        # that is guaranteed to be matched (such a child always exists).
        sends = []
        if i_am_owner:
            sends.append((owner_port, ("mst", matched)))
        if sends or in_chosen:
            inbox = yield from transmit_adjacent(
                ldt.depth, n_bound, a_refresh, sends
            )
            for port, payload in inbox:
                if port in in_chosen and isinstance(payload, tuple) \
                        and payload[0] == "mst" and payload[1]:
                    child_matched_ports.add(port)

        attach_candidate = None
        if not matched and is_tree_root:
            matched_children = sorted(child_matched_ports)
            pool = matched_children if matched_children else sorted(in_chosen)
            if pool:
                attach_candidate = (my_id, pool[0])
        attach_best = yield from upcast_min(ldt, n_bound, a0, attach_candidate)
        attach_winner = yield from fragment_broadcast(
            ldt, n_bound, a1,
            attach_best if ldt.is_root and not matched and is_tree_root else None,
        )

        sends = []
        attach_endpoint_port: Optional[int] = None
        if not matched:
            if is_tree_root and attach_winner is not None \
                    and attach_winner[0] == my_id:
                sends.append((attach_winner[1], ("attach", ldt.ldt_id)))
            if not is_tree_root and i_am_owner:
                sends.append((owner_port, ("attach", ldt.ldt_id)))
        listen_for_attach = bool(in_chosen) or i_am_owner
        attach_children_ports: List[int] = []
        if sends or listen_for_attach:
            inbox = yield from transmit_adjacent(ldt.depth, n_bound, a2, sends)
            for port, payload in inbox:
                if isinstance(payload, tuple) and payload[0] == "attach":
                    attach_children_ports.append(port)
        if not matched:
            if is_tree_root and attach_winner is not None:
                attach_endpoint_port = attach_winner[1] \
                    if attach_winner[0] == my_id else None
            else:
                attach_endpoint_port = owner_port if i_am_owner else None

        # ---------------- Stage 3, wave 1: merge matched pairs ------------ #
        wave1_base = attach_base + BLOCKS_ATTACH
        w1_ta = block_start(phase, wave1_base)
        w1_reroot = block_start(phase, wave1_base + 1)
        core_id = min(ldt.ldt_id, partner_frag) if matched else ldt.ldt_id
        merge_info: Optional[Tuple[int, int, int]] = None

        if matched and match_endpoint_id == my_id:
            if ldt.ldt_id == core_id:
                # Core side: announce the core ID and our depth over the
                # matched edge, then adopt the partner's endpoint as a child.
                yield from transmit_adjacent(
                    ldt.depth, n_bound, w1_ta,
                    [(match_endpoint_port, ("mergeinfo", core_id, ldt.depth))],
                )
                if match_endpoint_port not in ldt.children_ports:
                    ldt.children_ports.append(match_endpoint_port)
            else:
                inbox = yield from transmit_adjacent(ldt.depth, n_bound, w1_ta, [])
                for port, payload in inbox:
                    if (port == match_endpoint_port and isinstance(payload, tuple)
                            and payload[0] == "mergeinfo"):
                        merge_info = (payload[1], payload[2] + 1, port)
        if matched and ldt.ldt_id != core_id:
            yield from reroot_fragment(ldt, n_bound, w1_reroot, merge_info)

        # ---------------- Stage 3, wave 2: merge attached fragments ------- #
        wave2_base = wave1_base + BLOCKS_PER_WAVE
        w2_ta = block_start(phase, wave2_base)
        w2_reroot = block_start(phase, wave2_base + 1)
        merge_info = None

        sends = []
        if matched and attach_children_ports:
            for port in attach_children_ports:
                sends.append((port, ("mergeinfo", ldt.ldt_id, ldt.depth)))
        expect_attach_info = (not matched) and attach_endpoint_port is not None
        if sends or expect_attach_info:
            inbox = yield from transmit_adjacent(ldt.depth, n_bound, w2_ta, sends)
            if expect_attach_info:
                for port, payload in inbox:
                    if (port == attach_endpoint_port and isinstance(payload, tuple)
                            and payload[0] == "mergeinfo"):
                        merge_info = (payload[1], payload[2] + 1, port)
        if matched and attach_children_ports:
            for port in attach_children_ports:
                if port not in ldt.children_ports:
                    ldt.children_ports.append(port)
        if not matched:
            yield from reroot_fragment(ldt, n_bound, w2_reroot, merge_info)

    return ConstructionResult(
        ldt=ldt,
        participant_ports=participant_ports,
        phases_used=phases_used,
    )
