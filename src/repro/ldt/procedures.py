"""Awake-efficient procedures over labeled distance trees.

These are the paper's Appendix A primitives, each implemented as a composable
sub-generator (driven with ``yield from`` inside a protocol) on top of the
transmission schedule of :mod:`repro.ldt.schedule`:

* :func:`fragment_broadcast` — the root's message reaches every node
  (O(1) awake, one block);
* :func:`upcast_min` — the minimum of the nodes' values reaches the root
  (O(1) awake, one block);
* :func:`transmit_adjacent` — every node exchanges messages with neighbours
  in *other* fragments (O(1) awake, one block);
* :func:`ldt_ranking` — every node learns its rank in a total order of the
  LDT and the LDT's exact size (O(1) awake, two blocks);
* :func:`broadcast_chunks` — a sequence of broadcasts used to ship the
  root's random permutation under the CONGEST message-size budget;
* :func:`reroot_fragment` — the re-orientation step used when fragments
  merge (O(1) awake, two blocks).

Every procedure occupies a fixed number of schedule blocks that depends only
on globally known quantities, so independently executing fragments stay in
lockstep without communication.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.ldt.schedule import next_block, schedule_for
from repro.ldt.structure import LDTState
from repro.sim.actions import WakeCall

#: Number of schedule blocks each procedure occupies.
BLOCKS_BROADCAST = 1
BLOCKS_UPCAST = 1
BLOCKS_TRANSMIT_ADJACENT = 1
BLOCKS_RANKING = 2
BLOCKS_REROOT = 2


def _inbox_from(inbox: List[Tuple[int, Any]], port: int) -> Optional[Any]:
    """Return the payload received on *port*, or None."""
    for arrival_port, payload in inbox:
        if arrival_port == port:
            return payload
    return None


# --------------------------------------------------------------------------- #
# Broadcast / upcast / transmit-adjacent
# --------------------------------------------------------------------------- #
def fragment_broadcast(ldt: LDTState, n_bound: int, block_start: int,
                       payload: Any = None):
    """Broadcast the root's *payload* to every node of the LDT.

    The root passes the value to send; non-roots pass anything (ignored) and
    receive the root's value as the generator's return value.  O(1) awake
    rounds, one schedule block.
    """
    schedule = schedule_for(block_start, n_bound, ldt.depth)
    if ldt.is_root:
        message = ("bc", payload)
        if ldt.children_ports:
            yield WakeCall(
                round=schedule.down_send,
                sends=[(port, message) for port in ldt.children_ports],
            )
        return payload

    inbox = yield WakeCall(round=schedule.down_receive, sends=[])
    received = _inbox_from(inbox, ldt.parent_port)
    value = received[1] if isinstance(received, tuple) and received[0] == "bc" else None
    if ldt.children_ports:
        yield WakeCall(
            round=schedule.down_send,
            sends=[(port, ("bc", value)) for port in ldt.children_ports],
        )
    return value


def upcast_min(ldt: LDTState, n_bound: int, block_start: int,
               value: Optional[Any] = None):
    """Deliver the minimum of the nodes' *value*s to the root.

    ``None`` means "no value".  Values must be mutually comparable (the
    callers use tuples of integers).  Every node returns the minimum of its
    own subtree; the root's return value is the global minimum (or ``None``
    when no node supplied a value).  O(1) awake rounds, one block.
    """
    schedule = schedule_for(block_start, n_bound, ldt.depth)
    best = value
    if ldt.children_ports:
        inbox = yield WakeCall(round=schedule.up_receive, sends=[])
        for port in ldt.children_ports:
            received = _inbox_from(inbox, port)
            if isinstance(received, tuple) and received[0] == "up":
                child_best = received[1]
                if child_best is not None and (best is None or child_best < best):
                    best = child_best
    if not ldt.is_root:
        yield WakeCall(
            round=schedule.up_send,
            sends=[(ldt.parent_port, ("up", best))],
        )
    return best


def transmit_adjacent(depth: int, n_bound: int, block_start: int,
                      sends: Sequence[Tuple[int, Any]]):
    """Exchange messages with neighbours during the side round of a block.

    All participating nodes (of every fragment) are awake in the same
    absolute round, so messages cross fragment boundaries.  Returns the
    inbox.  O(1) awake rounds, one block.
    """
    schedule = schedule_for(block_start, n_bound, depth)
    inbox = yield WakeCall(round=schedule.side, sends=list(sends))
    return inbox


# --------------------------------------------------------------------------- #
# Ranking
# --------------------------------------------------------------------------- #
def ldt_ranking(ldt: LDTState, n_bound: int, block_start: int):
    """Compute this node's rank in a total order of the LDT and the LDT size.

    The order is the paper's generalised in-order traversal: first the
    subtree of the first child, then the node itself, then the remaining
    subtrees.  Returns ``(rank, total)`` with ``rank`` in ``[1, total]``.
    O(1) awake rounds, two blocks.
    """
    # ---- Block 1 (upward): subtree sizes -------------------------------- #
    schedule = schedule_for(block_start, n_bound, ldt.depth)
    child_sizes: Dict[int, int] = {}
    if ldt.children_ports:
        inbox = yield WakeCall(round=schedule.up_receive, sends=[])
        for port in ldt.children_ports:
            received = _inbox_from(inbox, port)
            if isinstance(received, tuple) and received[0] == "sz":
                child_sizes[port] = received[1]
            else:
                child_sizes[port] = 0
    subtree_size = 1 + sum(child_sizes.values())
    if not ldt.is_root:
        yield WakeCall(
            round=schedule.up_send,
            sends=[(ldt.parent_port, ("sz", subtree_size))],
        )

    # ---- Block 2 (downward): rank prefixes ------------------------------ #
    down_start = next_block(block_start, n_bound)
    schedule2 = schedule_for(down_start, n_bound, ldt.depth)
    if ldt.is_root:
        prefix = 0
        total = subtree_size
    else:
        inbox = yield WakeCall(round=schedule2.down_receive, sends=[])
        received = _inbox_from(inbox, ldt.parent_port)
        if isinstance(received, tuple) and received[0] == "rk":
            prefix, total = received[1], received[2]
        else:  # pragma: no cover - defensive (parent asleep)
            prefix, total = 0, subtree_size

    ordered_children = [p for p in ldt.children_ports]
    first_child_size = child_sizes.get(ordered_children[0], 0) if ordered_children else 0
    rank = prefix + first_child_size + 1

    if ordered_children:
        sends = []
        running = prefix
        for index, port in enumerate(ordered_children):
            if index == 0:
                sends.append((port, ("rk", prefix, total)))
                running = rank  # nodes ranked so far: first subtree + self
            else:
                sends.append((port, ("rk", running, total)))
                running += child_sizes.get(port, 0)
        yield WakeCall(round=schedule2.down_send, sends=sends)
    return rank, total


# --------------------------------------------------------------------------- #
# Chunked broadcast (for the random permutation of LDT-MIS)
# --------------------------------------------------------------------------- #
def broadcast_chunks(ldt: LDTState, n_bound: int, block_start: int,
                     chunk_count: int, chunks: Optional[List[Any]] = None):
    """Run *chunk_count* consecutive broadcasts.

    The root supplies ``chunks`` (padded/truncated to *chunk_count*); every
    node returns the list of received chunks.  Awake complexity
    O(chunk_count); round complexity O(chunk_count * n_bound).
    """
    received: List[Any] = []
    for index in range(chunk_count):
        start = next_block(block_start, n_bound, index)
        if ldt.is_root:
            payload = None
            if chunks is not None and index < len(chunks):
                payload = chunks[index]
            value = yield from fragment_broadcast(ldt, n_bound, start, payload)
        else:
            value = yield from fragment_broadcast(ldt, n_bound, start)
        received.append(value)
    return received


# --------------------------------------------------------------------------- #
# Re-rooting (fragment merge re-orientation)
# --------------------------------------------------------------------------- #
def reroot_fragment(ldt: LDTState, n_bound: int, block_start: int,
                    merge_info: Optional[Tuple[int, int, int]] = None):
    """Re-orient an LDT whose merge endpoint acquired a new parent.

    *merge_info* is ``(new_ldt_id, new_depth, new_parent_port)`` and is
    passed only by the merge-edge endpoint (the node that just learned, via a
    transmit-adjacent exchange, that its fragment merges into another one);
    every other node of the fragment passes ``None``.

    The paper's two-instance trick (Appendix A.2, stage 3b) is used: the
    first schedule instance walks the update *up* the old tree from the
    endpoint to the old root, flipping parent pointers along the way; the
    second instance pushes the update *down* to every remaining node, whose
    orientation does not change.  Mutates *ldt* in place and also returns it.
    O(1) awake rounds, two blocks.
    """
    old_depth = ldt.depth
    old_parent = ldt.parent_port
    old_children = list(ldt.children_ports)
    updated = False
    path_child_port: Optional[int] = None

    if merge_info is not None:
        new_id, new_depth, new_parent_port = merge_info
        ldt.reroot_towards(new_id, new_depth, new_parent_port,
                           old_parent_becomes_child=True)
        updated = True

    # ---- Instance 1: walk the path from the endpoint to the old root ---- #
    schedule = schedule_for(block_start, n_bound, old_depth)
    if not updated and old_children:
        # Only a node with (old) children can lie on the endpoint-to-root
        # path strictly above the endpoint, so only such nodes listen.
        inbox = yield WakeCall(round=schedule.up_receive, sends=[])
        for port, payload in inbox:
            if isinstance(payload, tuple) and payload[0] == "rr":
                _, received_id, sender_depth = payload
                path_child_port = port
                ldt.reroot_towards(received_id, sender_depth + 1, port,
                                   old_parent_becomes_child=True)
                updated = True
                break
    if updated and old_parent is not None:
        yield WakeCall(
            round=schedule.up_send,
            sends=[(old_parent, ("rr", ldt.ldt_id, ldt.depth))],
        )

    # ---- Instance 2: push the update down the (old) tree ---------------- #
    down_start = next_block(block_start, n_bound)
    schedule2 = schedule_for(down_start, n_bound, old_depth)
    if not updated:
        inbox = yield WakeCall(round=schedule2.down_receive, sends=[])
        received = _inbox_from(inbox, old_parent) if old_parent is not None else None
        if isinstance(received, tuple) and received[0] == "rr2":
            _, received_id, parent_depth = received
            ldt.ldt_id = received_id
            ldt.depth = parent_depth + 1
            updated = True

    # Forward to the old children whose subtrees hang below us in the old
    # orientation; the path child (now our parent) is already up to date.
    forward_ports = [port for port in old_children if port != path_child_port]
    if updated and forward_ports:
        yield WakeCall(
            round=schedule2.down_send,
            sends=[(port, ("rr2", ldt.ldt_id, ldt.depth)) for port in forward_ports],
        )
    return ldt
