"""Labeled distance trees: structure, schedules, procedures, construction."""

from repro.ldt.cole_vishkin import (
    cv_root_step,
    cv_step,
    is_proper_coloring,
    iterations_to_six_colors,
    six_color_rooted_forest,
)
from repro.ldt.construct import (
    ConstructionResult,
    blocks_per_phase,
    construction_rounds,
    cv_iterations,
    ldt_construct,
    merge_phases,
)
from repro.ldt.procedures import (
    broadcast_chunks,
    fragment_broadcast,
    ldt_ranking,
    reroot_fragment,
    transmit_adjacent,
    upcast_min,
)
from repro.ldt.schedule import TransmissionSchedule, block_length, next_block, schedule_for
from repro.ldt.structure import LDTState

__all__ = [
    "ConstructionResult",
    "LDTState",
    "TransmissionSchedule",
    "block_length",
    "blocks_per_phase",
    "broadcast_chunks",
    "construction_rounds",
    "cv_iterations",
    "cv_root_step",
    "cv_step",
    "fragment_broadcast",
    "is_proper_coloring",
    "iterations_to_six_colors",
    "ldt_construct",
    "ldt_ranking",
    "merge_phases",
    "next_block",
    "reroot_fragment",
    "schedule_for",
    "six_color_rooted_forest",
    "transmit_adjacent",
    "upcast_min",
]
