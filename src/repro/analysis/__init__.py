"""Empirical analyses of the paper's probabilistic lemmas and scaling laws."""

from repro.analysis.components import (
    ShatteringExperimentResult,
    run_shattering_experiment,
    undersized_partition_failure,
)
from repro.analysis.fitting import (
    GROWTH_LAWS,
    Fit,
    best_fit,
    fit_law,
    fit_report,
    growth_ratio,
)
from repro.analysis.residual import ResidualExperimentResult, run_residual_experiment
from repro.analysis.stats import Summary, geometric_sizes, percentile, summarize

__all__ = [
    "Fit",
    "GROWTH_LAWS",
    "ResidualExperimentResult",
    "ShatteringExperimentResult",
    "Summary",
    "best_fit",
    "fit_law",
    "fit_report",
    "geometric_sizes",
    "growth_ratio",
    "percentile",
    "run_residual_experiment",
    "run_shattering_experiment",
    "summarize",
    "undersized_partition_failure",
]
