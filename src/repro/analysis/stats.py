"""Small statistics helpers used by sweeps and experiment reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    median: float

    def as_dict(self) -> Dict[str, float]:
        """Return the summary as a plain dictionary (rounded for tables)."""
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "stdev": round(self.stdev, 3),
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of *values* (empty input -> zeros)."""
    data = [float(v) for v in values]
    if not data:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    n = len(data)
    mean = sum(data) / n
    variance = sum((v - mean) ** 2 for v in data) / n
    ordered = sorted(data)
    mid = n // 2
    median = ordered[mid] if n % 2 == 1 else (ordered[mid - 1] + ordered[mid]) / 2
    return Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=ordered[0],
        maximum=ordered[-1],
        median=median,
    )


def percentile(values: Sequence[float], q: float) -> float:
    """Return the *q*-th percentile (0..100) with linear interpolation."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def geometric_sizes(start: int, stop: int, factor: int = 2) -> List[int]:
    """Return ``start, start*factor, ...`` up to and including *stop*."""
    if start < 1 or stop < start or factor < 2:
        raise ValueError("need 1 <= start <= stop and factor >= 2")
    sizes = []
    value = start
    while value <= stop:
        sizes.append(value)
        value *= factor
    return sizes
