"""Experiment E7: graph shattering by random partition (Lemma 3).

Wraps :mod:`repro.core.shattering` into the sweep the benchmark prints: for
several maximum degrees Δ, partition a Δ-bounded-degree graph into 2Δ classes
and compare the largest induced component against ``6 ln(n / eps)``.  A
second helper measures the quantity ``Awake-MIS`` actually relies on: the
component sizes of the *batches* its own batch-selection rule produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.shattering import (
    ShatteringMeasurement,
    empirical_failure_rate,
    measure_shattering,
    shattering_profile,
)
from repro.graphs.generators import bounded_degree_graph
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class ShatteringExperimentResult:
    """Shattering measurements across a sweep of maximum degrees."""

    n: int
    epsilon: float
    by_degree: Dict[int, List[ShatteringMeasurement]]

    def rows(self) -> List[Dict[str, object]]:
        """One table row per maximum degree."""
        rows = []
        for degree in sorted(self.by_degree):
            measurements = self.by_degree[degree]
            largest = max(m.largest_component for m in measurements)
            bound = measurements[0].lemma_bound if measurements else 0.0
            rows.append(
                {
                    "max_degree": degree,
                    "classes": measurements[0].classes if measurements else 0,
                    "trials": len(measurements),
                    "largest_component": largest,
                    "lemma3_bound": round(bound, 2),
                    "failure_rate": round(empirical_failure_rate(measurements), 4),
                }
            )
        return rows

    @property
    def all_within_bound(self) -> bool:
        """True when no trial exceeded the Lemma 3 bound."""
        return all(
            m.within_bound
            for measurements in self.by_degree.values()
            for m in measurements
        )


def run_shattering_experiment(
    n: int = 2048,
    degrees: Sequence[int] = (4, 8, 16, 32),
    trials: int = 5,
    seed: SeedLike = None,
    epsilon: float = 1.0 / 16.0,
) -> ShatteringExperimentResult:
    """Sweep maximum degree Δ and measure Lemma 3 on Δ-bounded graphs."""
    rng = make_rng(seed)
    by_degree: Dict[int, List[ShatteringMeasurement]] = {}
    for degree in degrees:
        graph = bounded_degree_graph(n, degree, seed=rng.randrange(2**63))
        by_degree[degree] = shattering_profile(
            graph, trials=trials, seed=rng.randrange(2**63), epsilon=epsilon
        )
    return ShatteringExperimentResult(n=n, epsilon=epsilon, by_degree=by_degree)


def undersized_partition_failure(
    n: int = 1024,
    degree: int = 16,
    classes: int = 2,
    trials: int = 3,
    seed: SeedLike = None,
) -> List[ShatteringMeasurement]:
    """Control experiment: partition into far fewer than 2Δ classes.

    With only a couple of classes the induced subgraphs are *not* shattered
    (a giant component survives), which shows the 2Δ in Lemma 3 is doing real
    work.  Used by tests and the E7 report as a negative control.
    """
    rng = make_rng(seed)
    graph = bounded_degree_graph(n, degree, seed=rng.randrange(2**63))
    return [
        measure_shattering(graph, seed=rng.randrange(2**63), classes=classes)
        for _ in range(trials)
    ]
