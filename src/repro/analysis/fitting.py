"""Growth-law fitting for the scaling experiments.

The paper's headline claims are *asymptotic* (awake complexity O(log log n)
versus the O(log n) of the baselines), so the experiment reports do not try
to match absolute constants; instead each measured series ``(n, value)`` is
fitted — by least squares over the scale ``a * f(n) + b`` — against the
candidate growth laws the paper distinguishes, and the report states which
law fits best.  That is the "shape" comparison EXPERIMENTS.md records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

#: Candidate growth laws, in increasing order of growth.
GROWTH_LAWS: Dict[str, Callable[[float], float]] = {
    "constant": lambda n: 1.0,
    "loglog(n)": lambda n: math.log2(max(2.0, math.log2(max(2.0, n)))),
    "log(n)": lambda n: math.log2(max(2.0, n)),
    "log^2(n)": lambda n: math.log2(max(2.0, n)) ** 2,
    "sqrt(n)": lambda n: math.sqrt(n),
    "n": lambda n: float(n),
}


@dataclass(frozen=True)
class Fit:
    """Least-squares fit of one growth law to a series."""

    law: str
    scale: float
    offset: float
    residual: float
    r_squared: float


def fit_law(ns: Sequence[float], values: Sequence[float],
            law: str) -> Fit:
    """Fit ``value ~ scale * law(n) + offset`` by least squares."""
    if law not in GROWTH_LAWS:
        raise KeyError(f"unknown growth law '{law}'; known: {sorted(GROWTH_LAWS)}")
    if len(ns) != len(values) or len(ns) < 2:
        raise ValueError("need at least two (n, value) points of equal length")
    xs = [GROWTH_LAWS[law](float(n)) for n in ns]
    ys = [float(v) for v in values]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        scale = 0.0
        offset = mean_y
    else:
        scale = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
        offset = mean_y - scale * mean_x
    residual = sum((y - (scale * x + offset)) ** 2 for x, y in zip(xs, ys))
    total = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if total == 0 else max(0.0, 1.0 - residual / total)
    return Fit(law=law, scale=scale, offset=offset, residual=residual,
               r_squared=r_squared)


def best_fit(ns: Sequence[float], values: Sequence[float],
             laws: Sequence[str] = ("constant", "loglog(n)", "log(n)", "n"),
             ) -> Fit:
    """Return the candidate law with the smallest residual.

    Non-negative ``scale`` is required for a law to be considered (a
    *decreasing* fit against a growing law is meaningless for complexity
    curves); if every candidate has negative scale the flattest law wins.
    """
    fits = [fit_law(ns, values, law) for law in laws]
    valid = [f for f in fits if f.scale >= 0]
    pool = valid if valid else fits
    return min(pool, key=lambda f: f.residual)


def growth_ratio(ns: Sequence[float], values: Sequence[float]) -> float:
    """Return ``value[last] / value[first]`` (1.0 when the first is zero).

    A quick, fit-free indicator of how much a measured quantity grows while
    ``n`` spans the sweep; the comparison tables print it next to the best
    fit.
    """
    if not values:
        return 1.0
    first, last = float(values[0]), float(values[-1])
    if first == 0:
        return 1.0
    return last / first


def fit_report(ns: Sequence[float], values: Sequence[float]) -> Dict[str, object]:
    """Convenience: best fit + growth ratio as a flat dictionary."""
    fit = best_fit(ns, values)
    return {
        "best_law": fit.law,
        "scale": round(fit.scale, 3),
        "offset": round(fit.offset, 3),
        "r_squared": round(fit.r_squared, 4),
        "growth_ratio": round(growth_ratio(ns, values), 3),
    }
