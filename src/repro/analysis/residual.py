"""Experiment E6: residual sparsity of randomized greedy MIS (Lemma 2).

Wraps the measurement primitives of :mod:`repro.core.greedy` into the
table/series form the benchmark and example scripts print: for a geometric
sweep of prefix sizes ``t``, the measured maximum degree of the residual
graph ``G[V_{t'} \\ N(M_t)]`` next to the lemma's bound
``(t'/t) * ln(n / eps)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.analysis.stats import geometric_sizes
from repro.core.greedy import ResidualSparsityPoint, residual_sparsity_profile
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class ResidualExperimentResult:
    """All measurements of one residual-sparsity experiment."""

    n: int
    epsilon: float
    points: List[ResidualSparsityPoint]
    trials: int

    @property
    def all_within_bound(self) -> bool:
        """True when every measured point respects Lemma 2's bound."""
        return all(point.within_bound for point in self.points)

    def rows(self) -> List[Dict[str, object]]:
        """Table rows: one per (t, measured degree, bound)."""
        return [
            {
                "t": point.t,
                "t_prime": point.t_prime,
                "max_residual_degree": point.max_degree,
                "lemma2_bound": round(point.lemma_bound, 2),
                "within_bound": point.within_bound,
            }
            for point in self.points
        ]


def run_residual_experiment(
    graph: nx.Graph,
    prefix_sizes: Optional[Sequence[int]] = None,
    trials: int = 3,
    seed: SeedLike = None,
    epsilon: float = 1.0 / 16.0,
) -> ResidualExperimentResult:
    """Measure Lemma 2 on *graph* over several prefix sizes and trials.

    For each trial a fresh random order is drawn; the reported point for a
    prefix size is the *worst* (largest) residual degree across trials, so
    "all_within_bound" is a conservative check of the lemma.
    """
    n = graph.number_of_nodes()
    if prefix_sizes is None:
        prefix_sizes = geometric_sizes(max(1, n // 64), max(1, n // 2))
    rng = make_rng(seed)
    worst: Dict[int, ResidualSparsityPoint] = {}
    for _ in range(max(1, trials)):
        profile = residual_sparsity_profile(
            graph, prefix_sizes, seed=rng.randrange(2**63), epsilon=epsilon
        )
        for point in profile:
            current = worst.get(point.t)
            if current is None or point.max_degree > current.max_degree:
                worst[point.t] = point
    points = [worst[t] for t in sorted(worst)]
    return ResidualExperimentResult(
        n=n, epsilon=epsilon, points=points, trials=trials
    )
