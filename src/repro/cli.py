"""Command-line interface: ``repro-mis`` / ``python -m repro``.

Sub-commands
------------

``run``
    Run one MIS algorithm on one generated graph and print its metrics.
``sweep``
    Run a scaling sweep over several sizes/algorithms and print the table
    plus growth-law fits.  ``--jobs K`` fans the grid out over ``K`` worker
    processes (``--jobs 0`` uses every CPU); because the sweep executor
    derives every task seed up front, the printed rows and fits are
    identical for every ``--jobs`` value.
``experiment``
    Regenerate one of the paper experiments E1–E8 (see DESIGN.md §3).
    ``--jobs`` parallelises the sweep-backed experiments E1–E5 the same
    way; E6–E8 ignore it.
``figure``
    Print the paper's Figure 1/2 worked example.
``list``
    List available algorithms, graph families and experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.harness import available_algorithms, run_mis
from repro.experiments.registry import available_experiments, run_experiment
from repro.experiments.sweeps import run_sweep
from repro.experiments.tables import format_table
from repro.graphs.generators import FAMILIES, by_name


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description="Reproduction of 'Distributed MIS in O(log log n) Awake "
                    "Complexity' (PODC 2023)",
    )
    sub = parser.add_subparsers(dest="command")

    run_parser = sub.add_parser("run", help="run one algorithm on one graph")
    run_parser.add_argument("--algorithm", default="awake_mis",
                            choices=available_algorithms())
    run_parser.add_argument("--family", default="gnp", choices=sorted(FAMILIES))
    run_parser.add_argument("--n", type=int, default=128)
    run_parser.add_argument("--seed", type=int, default=1)

    sweep_parser = sub.add_parser("sweep", help="scaling sweep")
    sweep_parser.add_argument("--algorithms", nargs="+",
                              default=["awake_mis", "luby"],
                              choices=available_algorithms())
    sweep_parser.add_argument("--sizes", nargs="+", type=int,
                              default=[64, 128, 256])
    sweep_parser.add_argument("--families", nargs="+", default=["gnp"],
                              choices=sorted(FAMILIES))
    sweep_parser.add_argument("--repetitions", type=int, default=2)
    sweep_parser.add_argument("--seed", type=int, default=1)
    sweep_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes for the grid "
                                   "(1 = in-process, 0 = one per CPU)")

    experiment_parser = sub.add_parser("experiment",
                                       help="regenerate a paper experiment")
    experiment_parser.add_argument("experiment_id",
                                   choices=available_experiments())
    experiment_parser.add_argument("--scale", default="default",
                                   choices=["smoke", "default", "full"])
    experiment_parser.add_argument("--seed", type=int, default=None)
    experiment_parser.add_argument("--jobs", type=int, default=1,
                                   help="worker processes for the sweep-backed "
                                        "experiments E1-E5 (1 = in-process, "
                                        "0 = one per CPU)")

    sub.add_parser("figure", help="print the Figure 1/2 worked example")
    sub.add_parser("list", help="list algorithms, families and experiments")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "jobs", None) is not None and args.jobs < 0:
        parser.error("--jobs must be >= 0 (1 = in-process, 0 = one per CPU)")

    if args.command == "run":
        graph = by_name(args.family, args.n, seed=args.seed)
        result = run_mis(graph, algorithm=args.algorithm, seed=args.seed)
        print(format_table([result.summary()],
                           title=f"{args.algorithm} on {args.family}(n={args.n})"))
        return 0 if result.verified else 1

    if args.command == "sweep":
        sweep = run_sweep(
            algorithms=args.algorithms,
            sizes=args.sizes,
            families=args.families,
            repetitions=args.repetitions,
            seed=args.seed,
            jobs=args.jobs,
        )
        print(format_table(sweep.rows(), title="sweep results"))
        fits = sweep.fits("awake_max")
        if fits:
            print()
            print(format_table(fits, title="growth-law fits (awake complexity)"))
        return 0 if sweep.all_verified else 1

    if args.command == "experiment":
        report = run_experiment(args.experiment_id, scale=args.scale,
                                seed=args.seed, jobs=args.jobs)
        print(report.render())
        return 0 if report.passed else 1

    if args.command == "figure":
        from repro.core.virtual_tree import figure_example

        example = figure_example()
        rows = [{"quantity": key, "value": value} for key, value in example.items()]
        print(format_table(rows, title="Figure 1 / Figure 2 worked example"))
        return 0

    if args.command == "list":
        print("algorithms :", ", ".join(available_algorithms()))
        print("families   :", ", ".join(sorted(FAMILIES)))
        print("experiments:", ", ".join(available_experiments()))
        return 0

    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
