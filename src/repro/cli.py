"""Command-line interface: ``repro-mis`` / ``python -m repro``.

Sub-commands
------------

``run``
    Run one MIS algorithm on one generated graph and print its metrics.
``sweep``
    Run a scaling sweep over several sizes/algorithms and print the table
    plus growth-law fits.  ``--jobs K`` fans the grid out over ``K``
    workers (``--jobs 0`` uses every CPU) and ``--backend`` picks where
    they run (serial/thread/process/async); because the sweep executor
    derives every task seed up front, the printed rows and fits are
    identical for every ``--jobs``/``--backend`` combination.  ``--output
    FILE`` persists every result to a JSONL store as it completes
    (``--shards N`` splits it into N shard files); ``--resume`` continues
    an interrupted sweep from that store without re-running recorded tasks.
``experiment``
    Regenerate one of the paper experiments E1–E9 (see DESIGN.md §3).
    ``--jobs``/``--backend`` parallelise the sweep-backed experiments
    E1–E5 and E9 the same way; ``--output``/``--shards``/``--resume`` give
    them the resumable store; E6–E8 ignore all of them.
``report``
    Rebuild the sweep table and growth-law fits from a JSONL store written
    by ``sweep``/``experiment --output``, without re-running anything.
    Accepts single-file and sharded stores; ``--csv FILE`` additionally
    exports the rows for notebook-side analysis.
``figure``
    Print the paper's Figure 1/2 worked example.
``worker serve``
    Serve sweep tasks over TCP (``--listen HOST:PORT``) for the socket
    transport: run one per core on any host, point a sweep at them with
    ``--workers host:port,...``.
``store merge``
    Compact one or more stores of the same sweep (sharded or not) into a
    single fresh store file.
``list``
    List available algorithms, graph families, schedulers, transports,
    backends and experiments.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments.backends import (available_backends,
                                        available_schedulers,
                                        available_transports, make_backend)
from repro.experiments.harness import available_algorithms, run_mis
from repro.experiments.registry import available_experiments, run_experiment
from repro.experiments.store import (load_sweep_result, merge_stores,
                                     open_store)
from repro.experiments.sweeps import run_sweep
from repro.experiments.tables import (format_table, format_telemetry,
                                      render_sweep)
from repro.graphs.generators import FAMILIES, by_name

#: Shared --help epilog for the store-aware subcommands.
_STORE_EPILOG = (
    "Results store: --output FILE appends one JSON record per completed "
    "task (atomic line writes keyed by the task's spec hash), so a killed "
    "run loses at most the line being written.  Re-running with --resume "
    "replays recorded tasks from the store instead of executing them; the "
    "final table and fits are byte-identical to an uninterrupted run.  "
    "--resume requires --output, and a store holds exactly one sweep "
    "configuration.  --shards N splits the store into N JSONL shard files "
    "(FILE.shard-0 ... FILE.shard-N-1, or shard-K.jsonl inside FILE when "
    "it is a directory) with the same per-shard durability; reads merge "
    "every shard, so --resume and 'repro-mis report' accept the base path "
    "under any shard count; compact shards later with 'repro-mis store "
    "merge'.  "
    "Execution: --backend serial|thread|process|async|socket picks a "
    "(scheduler x transport) composition; --scheduler "
    "fifo|large-first|cost-model overrides the dispatch order "
    "(large-first sends big-n tasks out first to cut the straggler "
    "tail; cost-model ranks tasks by estimated cost from family x "
    "algorithm x n, so a dense small graph outranks a sparse large one "
    "on mixed grids) and --transport picks the byte path explicitly.  "
    "Results are byte-identical for every combination; the "
    "crash-recovering transports (async/subprocess, socket) restart "
    "or fail over dead workers and requeue their tasks.  "
    "Running a multi-host sweep: on each worker host run "
    "'repro-mis worker serve --listen 0.0.0.0:8750 --slots N' (one "
    "serving process per host; with N > 1 each slot runs in its own "
    "subprocess, so N slots donate N cores, and the slots map one "
    "shared-memory CSR graph cache read-only — each graph is built "
    "once per host instead of once per slot), then on "
    "the coordinator run 'repro-mis sweep ... --backend socket "
    "--workers hostA:8750*4,hostB:8750*2'.  A 'host:port*K' entry "
    "dials K connections to that worker — one execution slot each; "
    "bracket IPv6 hosts as '[::1]:8750'.  The handshake refuses "
    "workers running incompatible code (CODE_SCHEMA_VERSION), and a "
    "connection lost mid-task fails over to the remaining slots with "
    "byte-identical results.  The socket transport pipelines: each "
    "connection keeps a sliding window of task frames in flight that "
    "starts at 1 and self-tunes (AIMD: +1 per acked result, halved on "
    "reconnect or a slow ack), so remote workers stop paying one "
    "round-trip per task; --window N caps it, --window adaptive is the "
    "default, and --max-batch N groups tiny tasks into one frame.  "
    "What counts as a slow ack self-calibrates: every connection "
    "carries a Jacobson/Karels RTT estimator (EWMA srtt + rttvar per "
    "acked frame) and halves its window when an ack exceeds the "
    "estimator's srtt + 4*rttvar timeout; the same estimate paces how "
    "long a partial batch waits for more window.  Passing an explicit "
    "ack_timeout (library API) pins the legacy fixed threshold "
    "instead.  --progress prints stderr progress lines plus a "
    "per-worker telemetry table afterwards (srtt, peak window, frames, "
    "acks, batches, requeues, reconnects, bytes) — stdout stays "
    "byte-identical with and without it.  A "
    "connection lost mid-window requeues every in-flight frame, and "
    "workers that predate the windowed protocol are driven one frame "
    "at a time — results are byte-identical at every window, batch "
    "and RTT-calibration setting.  Add --output/--resume so a coordinator "
    "crash resumes instead of re-running.  Inspect a store later with "
    "'repro-mis report FILE'."
)

_BACKEND_HELP = ("execution backend for the grid (default: serial when "
                 "--jobs 1, process pool otherwise; async = crash-"
                 "recovering worker subprocesses, socket = TCP workers "
                 "via --workers)")
_SCHEDULER_HELP = ("task dispatch order: fifo (planned order, default), "
                   "large-first (descending n, cuts the straggler tail on "
                   "skewed grids) or cost-model (descending estimated "
                   "cost from family x algorithm x n — better on "
                   "mixed-family grids); never changes results, only "
                   "wall-clock")
_TRANSPORT_HELP = ("execution transport (overrides the --backend alias): "
                   "inline|thread|process|subprocess|socket")
_WORKERS_HELP = ("socket workers to dial, as HOST:PORT[*SLOTS][,...] "
                 "(serve them with 'repro-mis worker serve'; '*K' dials "
                 "K connections to one multi-slot worker, '[::1]:8750' "
                 "for IPv6); implies --transport socket")
_WINDOW_HELP = ("task frames kept in flight per worker connection "
                "(framed transports only): an integer cap, or 'adaptive' "
                "(the socket default) to start at 1 and self-tune via "
                "AIMD — +1 per acked result, halved on reconnect; a lost "
                "connection requeues every in-flight frame, so results "
                "never depend on the window")
_MAX_BATCH_HELP = ("group up to N tiny tasks into one 'tasks' frame to "
                   "amortize per-frame overhead (framed transports only; "
                   "default 1 = no batching; workers without batch "
                   "support fall back to single-task frames)")


def _add_execution_arguments(parser: argparse.ArgumentParser,
                             jobs_help: str) -> None:
    """The shared --jobs/--backend/--scheduler/--transport/--workers flags."""
    parser.add_argument("--jobs", type=int, default=1, help=jobs_help)
    parser.add_argument("--backend", default=None,
                        choices=available_backends(), help=_BACKEND_HELP)
    parser.add_argument("--scheduler", default=None,
                        choices=available_schedulers(),
                        help=_SCHEDULER_HELP)
    parser.add_argument("--transport", default=None,
                        choices=available_transports(),
                        help=_TRANSPORT_HELP)
    parser.add_argument("--workers", metavar="HOST:PORT,...", default=None,
                        help=_WORKERS_HELP)
    parser.add_argument("--window", metavar="N|adaptive", default=None,
                        help=_WINDOW_HELP)
    parser.add_argument("--max-batch", dest="max_batch", type=int,
                        default=None, metavar="N", help=_MAX_BATCH_HELP)
    parser.add_argument("--progress", action="store_true",
                        help="print progress lines while the grid runs "
                             "and a per-worker transport telemetry table "
                             "(srtt, windows, frames, acks, batches, "
                             "requeues, reconnects, bytes) afterwards — "
                             "all on stderr, so stdout stays "
                             "byte-identical with and without it")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description="Reproduction of 'Distributed MIS in O(log log n) Awake "
                    "Complexity' (PODC 2023)",
    )
    sub = parser.add_subparsers(dest="command")

    run_parser = sub.add_parser(
        "run", help="run one algorithm on one graph",
        epilog="Engines: runs enforce CONGEST metering by default (the "
               "simulator's metered loop).  Programmatic callers that pass "
               "enforce_congest=False get the generator fast loop, and — "
               "for algorithms with a vectorized twin (luby) — the numpy "
               "whole-round engine over the CSR arrays.  Engine choice "
               "never changes outputs or awake/round/message counts, only "
               "wall-clock time.")
    run_parser.add_argument("--algorithm", default="awake_mis",
                            choices=available_algorithms())
    run_parser.add_argument("--family", default="gnp",
                            help="graph family (see 'repro-mis list')")
    run_parser.add_argument("--n", type=int, default=128)
    run_parser.add_argument("--seed", type=int, default=1)

    sweep_parser = sub.add_parser(
        "sweep", help="scaling sweep",
        epilog=_STORE_EPILOG
               + "  Engines: sweep tasks meter CONGEST bits by default, which "
                 "keeps them on the simulator's metered loop.  Unmetered "
                 "runs (algorithm_params with enforce_congest=False via the "
                 "Python API) use the generator fast loop, or the numpy "
                 "whole-round engine for algorithms that opt in (luby); "
                 "engine choice never changes recorded rows, only "
                 "wall-clock time.")
    sweep_parser.add_argument("--algorithms", nargs="+",
                              default=["awake_mis", "luby"],
                              choices=available_algorithms())
    sweep_parser.add_argument("--sizes", nargs="+", type=int,
                              default=[64, 128, 256])
    sweep_parser.add_argument("--families", nargs="+", default=["gnp"],
                              help="graph families (see 'repro-mis list')")
    sweep_parser.add_argument("--repetitions", type=int, default=2)
    sweep_parser.add_argument("--seed", type=int, default=1)
    _add_execution_arguments(sweep_parser,
                             jobs_help="workers for the grid "
                                       "(1 = in-process, 0 = one per CPU)")
    sweep_parser.add_argument("--output", metavar="FILE", default=None,
                              help="JSONL results store: persist every task "
                                   "result as it completes")
    sweep_parser.add_argument("--shards", type=int, default=None,
                              metavar="N",
                              help="split --output into N JSONL shard files "
                                   "(one append stream per shard; reads "
                                   "merge all shards)")
    sweep_parser.add_argument("--resume", action="store_true",
                              help="skip tasks already recorded in --output "
                                   "and replay their stored metrics")

    experiment_parser = sub.add_parser("experiment",
                                       help="regenerate a paper experiment",
                                       epilog=_STORE_EPILOG)
    experiment_parser.add_argument("experiment_id",
                                   choices=available_experiments())
    experiment_parser.add_argument("--scale", default="default",
                                   choices=["smoke", "default", "full"])
    experiment_parser.add_argument("--seed", type=int, default=None)
    _add_execution_arguments(experiment_parser,
                             jobs_help="workers for the sweep-backed "
                                       "experiments E1-E5 and E9 (1 = "
                                       "in-process, 0 = one per CPU)")
    experiment_parser.add_argument("--output", metavar="FILE", default=None,
                                   help="JSONL results store for the "
                                        "sweep-backed experiments")
    experiment_parser.add_argument("--shards", type=int, default=None,
                                   metavar="N",
                                   help="split --output into N JSONL shard "
                                        "files")
    experiment_parser.add_argument("--resume", action="store_true",
                                   help="skip tasks already recorded in "
                                        "--output")

    report_parser = sub.add_parser(
        "report",
        help="rebuild tables/fits from a results store without re-running",
        epilog="The store must have been written by 'repro-mis sweep "
               "--output' or 'repro-mis experiment --output'; a complete "
               "store reproduces the original run's table byte-for-byte.  "
               "FILE may be a single-file store, the base path of a "
               "sharded store (FILE.shard-K siblings), or a shard "
               "directory — shards are merged automatically.  --csv OUT "
               "additionally writes the table rows as CSV ('-' = stdout) "
               "for notebook-side analysis.",
    )
    report_parser.add_argument("store", metavar="FILE",
                               help="JSONL results store to read (single "
                                    "file, sharded base path, or shard "
                                    "directory)")
    report_parser.add_argument("--metric", default="awake_max",
                               help="metric for the growth-law fits "
                                    "(default: awake_max)")
    report_parser.add_argument("--csv", metavar="OUT", default=None,
                               help="also write the table rows as CSV to "
                                    "OUT ('-' = stdout)")

    worker_parser = sub.add_parser(
        "worker", help="run a sweep-task worker (socket transport)")
    worker_sub = worker_parser.add_subparsers(dest="worker_command")
    serve_parser = worker_sub.add_parser(
        "serve",
        help="serve sweep tasks over TCP for --backend socket",
        epilog="--slots N serves up to N coordinator connections "
               "concurrently from one serving process (dial them all "
               "with --workers host:port*N on the coordinator).  With "
               "N > 1 each connection is handed to its own slot "
               "subprocess, so N slots donate N cores instead of "
               "time-slicing one GIL; --slot-mode thread restores the "
               "historical in-process threads, and --slots 1 stays "
               "in-process unless --slot-mode process is explicit.  "
               "Process slots never rebuild graphs the server already "
               "has: the serving process builds each (family, n, seed) "
               "graph once as flat CSR arrays in a shared-memory "
               "segment (named repro-csr-<pid>-<k>), and every slot "
               "maps it read-only, zero-copy.  Segments are owned by "
               "the serving process and unlinked exactly once — at LRU "
               "eviction (REPRO_GRAPH_CACHE entries, default 32) or at "
               "shutdown; a server start also reaps segments orphaned "
               "by a SIGKILL'd predecessor.  After a sweep finishes "
               "each slot loops back to accepting, so long-lived "
               "workers serve any number of sweeps.  The coordinator's "
               "handshake refuses a worker "
               "whose CODE_SCHEMA_VERSION differs from its own, and "
               "--max-connections only counts connections that actually "
               "served a task — a garbage peer cannot burn a bounded "
               "worker's budget.  The worker advertises the windowed "
               "protocol (its hello lists the 'window' and 'batch' "
               "features): coordinators may keep several frames in "
               "flight per connection and group tiny tasks into one "
               "'tasks' frame (--window/--max-batch on the sweep side); "
               "each connection is still served sequentially, replying "
               "in order, so no worker-side tuning is needed.",
    )
    serve_parser.add_argument("--listen", metavar="HOST:PORT",
                              required=True,
                              help="address to listen on (port 0 = pick "
                                   "an ephemeral port and announce it on "
                                   "stderr; [IPV6]:PORT accepted)")
    serve_parser.add_argument("--slots", type=int, default=1, metavar="N",
                              help="serve up to N coordinator connections "
                                   "concurrently; N > 1 runs each slot in "
                                   "its own subprocess mapping a shared "
                                   "read-only CSR graph cache (default: 1)")
    serve_parser.add_argument("--slot-mode", choices=("thread", "process"),
                              default=None,
                              help="force slot execution mode (default: "
                                   "process when --slots > 1, else thread)")
    serve_parser.add_argument("--start-method",
                              choices=("fork", "spawn", "forkserver"),
                              default=None,
                              help="multiprocessing start method for "
                                   "process slots (default: the "
                                   "platform default)")
    serve_parser.add_argument("--max-connections", type=int, default=None,
                              metavar="N",
                              help="exit after N connections that served "
                                   "at least one task (default: serve "
                                   "forever)")

    store_parser = sub.add_parser(
        "store", help="maintenance tooling for results stores")
    store_sub = store_parser.add_subparsers(dest="store_command")
    merge_parser = store_sub.add_parser(
        "merge",
        help="compact stores of one sweep into a single fresh store file",
        epilog="Sources may be any mix of single-file stores, sharded "
               "base paths and shard directories; they must all belong "
               "to the same sweep configuration (mixed grids are "
               "refused).  Records are rewritten in planned-grid order "
               "with duplicates collapsed, so reporting or resuming from "
               "the merged store is byte-identical to using the sources. "
               "The sources are left untouched; delete them yourself "
               "once satisfied.",
    )
    merge_parser.add_argument("sources", metavar="SRC", nargs="+",
                              help="stores to merge (single files, "
                                   "sharded base paths or shard "
                                   "directories)")
    merge_parser.add_argument("--output", metavar="OUT", required=True,
                              help="fresh single-file store to write "
                                   "(must not already hold data)")

    sub.add_parser("figure", help="print the Figure 1/2 worked example")
    sub.add_parser("list", help="list algorithms, families and experiments")
    return parser


def _open_store(parser: argparse.ArgumentParser, args: argparse.Namespace):
    """Build the results store for --output/--shards/--resume (or None).

    ``--shards N`` selects a sharded store explicitly; without it the path
    is sniffed, so resuming a store that was written sharded keeps working
    without repeating the flag.
    """
    if getattr(args, "resume", False) and not getattr(args, "output", None):
        parser.error("--resume requires --output (the store to resume from)")
    shards = getattr(args, "shards", None)
    if shards is not None and shards < 1:
        parser.error("--shards must be >= 1 (the number of shard files)")
    if shards is not None and not getattr(args, "output", None):
        parser.error("--shards requires --output (the store to shard)")
    if getattr(args, "output", None):
        return open_store(args.output, shards=shards)
    return None


def _compose_backend(args: argparse.Namespace):
    """Build the execution backend from --backend/--scheduler/--transport.

    Returns ``None`` when no flag was given, so the historical jobs-driven
    default (which also sees the grid size) still applies downstream.
    Raises :class:`~repro.errors.ConfigurationError` for an unrunnable
    composition — callers invoke this *before* opening the results store,
    so e.g. ``--transport socket`` with no workers configured fails fast
    without stamping a store header for a sweep that never starts.
    """
    return make_backend(backend=args.backend, scheduler=args.scheduler,
                        transport=args.transport, workers=args.workers,
                        jobs=args.jobs, window=args.window,
                        max_batch=args.max_batch)


def _progress_printer():
    """Build the ``--progress`` callback: stderr-only progress lines.

    Prints roughly every 5% of the grid (and always the final task) so a
    long sweep shows life without flooding CI logs.  Strictly stderr:
    the stdout table must stay byte-identical with and without the flag
    (the cluster-smoke CI job diffs stdout across backends).
    """
    def progress(task, result, done, total):
        del result
        step = max(1, total // 20)
        if done == total or done % step == 0:
            percent = 100 * done // total
            print(f"progress: {done}/{total} tasks ({percent}%) — "
                  f"{task.algorithm} on {task.family} n={task.n}",
                  file=sys.stderr, flush=True)
    return progress


def _print_telemetry(backend) -> None:
    """Print the backend's per-worker telemetry table to stderr."""
    telemetry = getattr(backend, "telemetry", None)
    if not callable(telemetry):
        # Jobs-driven default backends are resolved inside the executor;
        # there is no object to read counters from.
        print("transport telemetry: unavailable (pass --backend/"
              "--transport/--workers to compose an instrumented backend)",
              file=sys.stderr, flush=True)
        return
    print(format_telemetry(telemetry()), file=sys.stderr, flush=True)


def _write_rows_csv(rows: List[dict], destination: str) -> None:
    """Write table rows as CSV to *destination* (``-`` = stdout)."""
    if not rows:
        return
    handle = sys.stdout if destination == "-" else open(
        destination, "w", newline="", encoding="utf-8")
    try:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    finally:
        if handle is not sys.stdout:
            handle.close()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "jobs", None) is not None and args.jobs < 0:
        parser.error("--jobs must be >= 0 (1 = in-process, 0 = one per CPU)")

    if args.command == "run":
        try:
            graph = by_name(args.family, args.n, seed=args.seed)
            result = run_mis(graph, algorithm=args.algorithm, seed=args.seed)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(format_table([result.summary()],
                           title=f"{args.algorithm} on {args.family}(n={args.n})"))
        return 0 if result.verified else 1

    if args.command == "sweep":
        try:
            backend = _compose_backend(args)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        store = _open_store(parser, args)
        try:
            sweep = run_sweep(
                algorithms=args.algorithms,
                sizes=args.sizes,
                families=args.families,
                repetitions=args.repetitions,
                seed=args.seed,
                jobs=args.jobs,
                backend=backend,
                keep_runs=False,
                store=store,
                resume=args.resume,
                progress=_progress_printer() if args.progress else None,
            )
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        finally:
            if store is not None:
                store.close()
        if args.progress:
            _print_telemetry(backend)
        print(render_sweep(sweep, title="sweep results"))
        return 0 if sweep.all_verified else 1

    if args.command == "experiment":
        try:
            backend = _compose_backend(args)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        store = _open_store(parser, args)
        try:
            report = run_experiment(args.experiment_id, scale=args.scale,
                                    seed=args.seed, jobs=args.jobs,
                                    backend=backend,
                                    store=store, resume=args.resume,
                                    progress=(_progress_printer()
                                              if args.progress else None))
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        finally:
            if store is not None:
                store.close()
        if args.progress:
            _print_telemetry(backend)
        print(report.render())
        return 0 if report.passed else 1

    if args.command == "worker":
        if args.worker_command != "serve":
            print("usage: repro-mis worker serve --listen HOST:PORT",
                  file=sys.stderr)
            return 2
        from repro.experiments.worker import serve

        try:
            return serve(args.listen, max_connections=args.max_connections,
                         slots=args.slots, slot_mode=args.slot_mode,
                         start_method=args.start_method)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    if args.command == "store":
        if args.store_command != "merge":
            print("usage: repro-mis store merge SRC [SRC ...] --output OUT",
                  file=sys.stderr)
            return 2
        try:
            written = merge_stores(args.sources, args.output)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"merged {len(args.sources)} store(s) into {args.output} "
              f"({written} result records)")
        return 0

    if args.command == "report":
        try:
            header, sweep = load_sweep_result(args.store)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if sweep.cells:
            known_metrics = sorted(
                key for key, value in sweep.cells[0].row().items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
                and key not in ("n", "runs")  # grid keys, not measurements
            )
            if args.metric not in known_metrics:
                print(f"error: unknown metric '{args.metric}'; known: "
                      f"{', '.join(known_metrics)}", file=sys.stderr)
                return 2
        config = header.get("sweep", {})
        # An interrupted sweep leaves a store with fewer records than its
        # header's grid implies; never present that as a finished sweep.
        recorded = sum(cell.run_count for cell in sweep.cells)
        expected = (len(config.get("algorithms", []))
                    * len(config.get("sizes", []))
                    * len(config.get("families", []))
                    * config.get("repetitions", 0))
        incomplete = expected > 0 and recorded < expected
        if incomplete:
            print(f"note: store is incomplete ({recorded} of {expected} "
                  "grid tasks recorded); resume the sweep with --resume to "
                  "finish it", file=sys.stderr)
        title = (f"stored sweep results ({args.store}; "
                 f"algorithms={config.get('algorithms')}, "
                 f"sizes={config.get('sizes')}"
                 + (f"; INCOMPLETE {recorded}/{expected} tasks" if incomplete
                    else "") + ")")
        print(render_sweep(sweep, title=title, fit_metric=args.metric))
        if args.csv is not None:
            _write_rows_csv(sweep.rows(), args.csv)
        return 0 if sweep.all_verified and not incomplete else 1

    if args.command == "figure":
        from repro.core.virtual_tree import figure_example

        example = figure_example()
        rows = [{"quantity": key, "value": value} for key, value in example.items()]
        print(format_table(rows, title="Figure 1 / Figure 2 worked example"))
        return 0

    if args.command == "list":
        print("algorithms :", ", ".join(available_algorithms()))
        print("families   :", ", ".join(sorted(FAMILIES)))
        print("backends   :", ", ".join(available_backends()))
        print("schedulers :", ", ".join(available_schedulers()))
        print("transports :", ", ".join(available_transports()))
        print("experiments:", ", ".join(available_experiments()))
        return 0

    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
