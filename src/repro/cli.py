"""Command-line interface: ``repro-mis`` / ``python -m repro``.

Sub-commands
------------

``run``
    Run one MIS algorithm on one generated graph and print its metrics.
``sweep``
    Run a scaling sweep over several sizes/algorithms and print the table
    plus growth-law fits.  ``--jobs K`` fans the grid out over ``K`` worker
    processes (``--jobs 0`` uses every CPU); because the sweep executor
    derives every task seed up front, the printed rows and fits are
    identical for every ``--jobs`` value.  ``--output FILE`` persists every
    result to a JSONL store as it completes; ``--resume`` continues an
    interrupted sweep from that store without re-running recorded tasks.
``experiment``
    Regenerate one of the paper experiments E1–E9 (see DESIGN.md §3).
    ``--jobs`` parallelises the sweep-backed experiments E1–E5 and E9 the
    same way; ``--output``/``--resume`` give them the resumable store;
    E6–E8 ignore all three.
``report``
    Rebuild the sweep table and growth-law fits from a JSONL store written
    by ``sweep``/``experiment --output``, without re-running anything.
``figure``
    Print the paper's Figure 1/2 worked example.
``list``
    List available algorithms, graph families and experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments.harness import available_algorithms, run_mis
from repro.experiments.registry import available_experiments, run_experiment
from repro.experiments.store import ResultStore, load_sweep_result
from repro.experiments.sweeps import run_sweep
from repro.experiments.tables import format_table, render_sweep
from repro.graphs.generators import FAMILIES, by_name

#: Shared --help epilog for the store-aware subcommands.
_STORE_EPILOG = (
    "Results store: --output FILE appends one JSON record per completed "
    "task (atomic line writes keyed by the task's spec hash), so a killed "
    "run loses at most the line being written.  Re-running with --resume "
    "replays recorded tasks from the store instead of executing them; the "
    "final table and fits are byte-identical to an uninterrupted run.  "
    "--resume requires --output, and a store holds exactly one sweep "
    "configuration.  Inspect a store later with 'repro-mis report FILE'."
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mis",
        description="Reproduction of 'Distributed MIS in O(log log n) Awake "
                    "Complexity' (PODC 2023)",
    )
    sub = parser.add_subparsers(dest="command")

    run_parser = sub.add_parser("run", help="run one algorithm on one graph")
    run_parser.add_argument("--algorithm", default="awake_mis",
                            choices=available_algorithms())
    run_parser.add_argument("--family", default="gnp", choices=sorted(FAMILIES))
    run_parser.add_argument("--n", type=int, default=128)
    run_parser.add_argument("--seed", type=int, default=1)

    sweep_parser = sub.add_parser("sweep", help="scaling sweep",
                                  epilog=_STORE_EPILOG)
    sweep_parser.add_argument("--algorithms", nargs="+",
                              default=["awake_mis", "luby"],
                              choices=available_algorithms())
    sweep_parser.add_argument("--sizes", nargs="+", type=int,
                              default=[64, 128, 256])
    sweep_parser.add_argument("--families", nargs="+", default=["gnp"],
                              choices=sorted(FAMILIES))
    sweep_parser.add_argument("--repetitions", type=int, default=2)
    sweep_parser.add_argument("--seed", type=int, default=1)
    sweep_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes for the grid "
                                   "(1 = in-process, 0 = one per CPU)")
    sweep_parser.add_argument("--output", metavar="FILE", default=None,
                              help="JSONL results store: persist every task "
                                   "result as it completes")
    sweep_parser.add_argument("--resume", action="store_true",
                              help="skip tasks already recorded in --output "
                                   "and replay their stored metrics")

    experiment_parser = sub.add_parser("experiment",
                                       help="regenerate a paper experiment",
                                       epilog=_STORE_EPILOG)
    experiment_parser.add_argument("experiment_id",
                                   choices=available_experiments())
    experiment_parser.add_argument("--scale", default="default",
                                   choices=["smoke", "default", "full"])
    experiment_parser.add_argument("--seed", type=int, default=None)
    experiment_parser.add_argument("--jobs", type=int, default=1,
                                   help="worker processes for the sweep-backed "
                                        "experiments E1-E5 and E9 (1 = "
                                        "in-process, 0 = one per CPU)")
    experiment_parser.add_argument("--output", metavar="FILE", default=None,
                                   help="JSONL results store for the "
                                        "sweep-backed experiments")
    experiment_parser.add_argument("--resume", action="store_true",
                                   help="skip tasks already recorded in "
                                        "--output")

    report_parser = sub.add_parser(
        "report",
        help="rebuild tables/fits from a results store without re-running",
        epilog="The store must have been written by 'repro-mis sweep "
               "--output' or 'repro-mis experiment --output'; a complete "
               "store reproduces the original run's table byte-for-byte.",
    )
    report_parser.add_argument("store", metavar="FILE",
                               help="JSONL results store to read")
    report_parser.add_argument("--metric", default="awake_max",
                               help="metric for the growth-law fits "
                                    "(default: awake_max)")

    sub.add_parser("figure", help="print the Figure 1/2 worked example")
    sub.add_parser("list", help="list algorithms, families and experiments")
    return parser


def _open_store(parser: argparse.ArgumentParser,
                args: argparse.Namespace) -> Optional[ResultStore]:
    """Build the ResultStore for --output/--resume (None when unused)."""
    if getattr(args, "resume", False) and not getattr(args, "output", None):
        parser.error("--resume requires --output (the store to resume from)")
    if getattr(args, "output", None):
        return ResultStore(args.output)
    return None


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "jobs", None) is not None and args.jobs < 0:
        parser.error("--jobs must be >= 0 (1 = in-process, 0 = one per CPU)")

    if args.command == "run":
        graph = by_name(args.family, args.n, seed=args.seed)
        result = run_mis(graph, algorithm=args.algorithm, seed=args.seed)
        print(format_table([result.summary()],
                           title=f"{args.algorithm} on {args.family}(n={args.n})"))
        return 0 if result.verified else 1

    if args.command == "sweep":
        store = _open_store(parser, args)
        try:
            sweep = run_sweep(
                algorithms=args.algorithms,
                sizes=args.sizes,
                families=args.families,
                repetitions=args.repetitions,
                seed=args.seed,
                jobs=args.jobs,
                keep_runs=False,
                store=store,
                resume=args.resume,
            )
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        finally:
            if store is not None:
                store.close()
        print(render_sweep(sweep, title="sweep results"))
        return 0 if sweep.all_verified else 1

    if args.command == "experiment":
        store = _open_store(parser, args)
        try:
            report = run_experiment(args.experiment_id, scale=args.scale,
                                    seed=args.seed, jobs=args.jobs,
                                    store=store, resume=args.resume)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        finally:
            if store is not None:
                store.close()
        print(report.render())
        return 0 if report.passed else 1

    if args.command == "report":
        try:
            header, sweep = load_sweep_result(args.store)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if sweep.cells:
            known_metrics = sorted(
                key for key, value in sweep.cells[0].row().items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
                and key not in ("n", "runs")  # grid keys, not measurements
            )
            if args.metric not in known_metrics:
                print(f"error: unknown metric '{args.metric}'; known: "
                      f"{', '.join(known_metrics)}", file=sys.stderr)
                return 2
        config = header.get("sweep", {})
        # An interrupted sweep leaves a store with fewer records than its
        # header's grid implies; never present that as a finished sweep.
        recorded = sum(cell.run_count for cell in sweep.cells)
        expected = (len(config.get("algorithms", []))
                    * len(config.get("sizes", []))
                    * len(config.get("families", []))
                    * config.get("repetitions", 0))
        incomplete = expected > 0 and recorded < expected
        if incomplete:
            print(f"note: store is incomplete ({recorded} of {expected} "
                  "grid tasks recorded); resume the sweep with --resume to "
                  "finish it", file=sys.stderr)
        title = (f"stored sweep results ({args.store}; "
                 f"algorithms={config.get('algorithms')}, "
                 f"sizes={config.get('sizes')}"
                 + (f"; INCOMPLETE {recorded}/{expected} tasks" if incomplete
                    else "") + ")")
        print(render_sweep(sweep, title=title, fit_metric=args.metric))
        return 0 if sweep.all_verified and not incomplete else 1

    if args.command == "figure":
        from repro.core.virtual_tree import figure_example

        example = figure_example()
        rows = [{"quantity": key, "value": value} for key, value in example.items()]
        print(format_table(rows, title="Figure 1 / Figure 2 worked example"))
        return 0

    if args.command == "list":
        print("algorithms :", ", ".join(available_algorithms()))
        print("families   :", ", ".join(sorted(FAMILIES)))
        print("experiments:", ", ".join(available_experiments()))
        return 0

    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
