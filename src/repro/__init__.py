"""repro — reproduction of "Distributed MIS in O(log log n) Awake Complexity".

The package implements, from scratch in Python:

* a **SLEEPING-CONGEST simulator** (:mod:`repro.sim`) that measures awake and
  round complexity exactly as the paper defines them,
* the paper's algorithms (:mod:`repro.algorithms`): ``VT-MIS``, ``LDT-MIS``,
  ``LDT-MIS-ROUND`` and the main ``Awake-MIS``, plus the baselines the paper
  compares against (Luby, naive greedy, an O(log n)-awake sleeping baseline),
* the supporting machinery: virtual binary trees, labeled distance trees with
  their transmission-schedule procedures, sequential randomized greedy MIS,
  residual sparsity and shattering analyses (:mod:`repro.core`,
  :mod:`repro.ldt`, :mod:`repro.analysis`),
* workload generators (:mod:`repro.graphs`) and an experiment harness
  (:mod:`repro.experiments`) that regenerates every claim catalogued in
  ``EXPERIMENTS.md``.

Quickstart
----------

>>> from repro import graphs, run_mis
>>> graph = graphs.gnp_graph(200, expected_degree=8, seed=1)
>>> result = run_mis(graph, algorithm="awake_mis", seed=1)
>>> result.verified, result.metrics.awake_complexity  # doctest: +SKIP
(True, 47)
"""

from repro._version import __version__
from repro.experiments.harness import available_algorithms, run_mis

__all__ = ["__version__", "available_algorithms", "run_mis"]
