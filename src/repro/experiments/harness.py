"""Single-run experiment harness.

:func:`run_mis` is the main entry point used by the examples, the CLI, the
benchmarks and most integration tests: it runs one MIS algorithm on one graph
under one seed, verifies the output, and packages the paper-relevant metrics
into an :class:`MISRunResult`.

Algorithms are registered by name in :data:`ALGORITHMS`; registration values
are small adapter callables so that importing the harness stays cheap and the
set of available algorithms is discoverable programmatically
(:func:`available_algorithms`).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Set, Union

import networkx as nx

from repro.core.mis import is_independent_set, is_maximal_independent_set
from repro.errors import ConfigurationError
from repro.rng import SeedLike, make_rng
from repro.sim.metrics import CompactRunMetrics, RunMetrics
from repro.sim.runner import RunResult, run_protocol


@dataclass
class MISRunResult:
    """Outcome of one algorithm run on one graph.

    ``metrics`` is a full :class:`~repro.sim.metrics.RunMetrics` by default;
    runs executed with ``collect_raw=False`` (the parallel sweep workers)
    carry the scalar :class:`~repro.sim.metrics.CompactRunMetrics` instead —
    both expose the same aggregate attributes, so every consumer of
    :meth:`summary` and the sweep layer works with either form.
    """

    algorithm: str
    graph_nodes: int
    graph_edges: int
    mis: Set
    verified: bool
    independent: bool
    maximal: bool
    metrics: Union[RunMetrics, CompactRunMetrics]
    wall_time_seconds: float
    seed: Optional[int] = None
    parameters: Dict[str, Any] = field(default_factory=dict)
    raw: Optional[RunResult] = None

    def compact(self) -> "MISRunResult":
        """Return a copy with scalar metrics and no raw simulation payload.

        Used to keep results small (and cheap to pickle) before shipping
        them from a worker process back to the sweep coordinator.
        """
        metrics = self.metrics
        if isinstance(metrics, RunMetrics):
            metrics = metrics.compact()
        return replace(self, metrics=metrics, parameters=dict(self.parameters),
                       raw=None)

    def to_record(self) -> Dict[str, Any]:
        """JSON-safe dict for the on-disk results store.

        The record always carries compact metrics (per-node counters and the
        raw payload never hit disk); :meth:`from_record` restores an
        equivalent compacted :class:`MISRunResult`.  ``node_averaged_awake``
        and friends survive at full float precision, which is what lets a
        resumed sweep re-aggregate to byte-identical rows.
        """
        compacted = self.compact()
        return {
            "algorithm": compacted.algorithm,
            "graph_nodes": compacted.graph_nodes,
            "graph_edges": compacted.graph_edges,
            "mis": sorted(compacted.mis),
            "verified": compacted.verified,
            "independent": compacted.independent,
            "maximal": compacted.maximal,
            "metrics": compacted.metrics.to_json_dict(),
            "wall_time_seconds": compacted.wall_time_seconds,
            "seed": compacted.seed,
            "parameters": dict(compacted.parameters),
        }

    @classmethod
    def from_record(cls, data: Dict[str, Any]) -> "MISRunResult":
        """Inverse of :meth:`to_record` (metrics come back compact)."""
        return cls(
            algorithm=data["algorithm"],
            graph_nodes=int(data["graph_nodes"]),
            graph_edges=int(data["graph_edges"]),
            mis=set(data["mis"]),
            verified=bool(data["verified"]),
            independent=bool(data["independent"]),
            maximal=bool(data["maximal"]),
            metrics=CompactRunMetrics.from_json_dict(data["metrics"]),
            wall_time_seconds=float(data["wall_time_seconds"]),
            seed=data["seed"],
            parameters=dict(data["parameters"]),
            raw=None,
        )

    def summary(self) -> Dict[str, Any]:
        """Flat dictionary used by tables, sweeps and the CLI."""
        data = {
            "algorithm": self.algorithm,
            "n": self.graph_nodes,
            "m": self.graph_edges,
            "mis_size": len(self.mis),
            "verified": self.verified,
            "awake_complexity": self.metrics.awake_complexity,
            "node_averaged_awake": round(self.metrics.node_averaged_awake, 3),
            "round_complexity": self.metrics.round_complexity,
            "total_messages": self.metrics.total_messages,
            "max_message_bits": self.metrics.max_message_bits,
            "wall_time_s": round(self.wall_time_seconds, 4),
        }
        return data


# --------------------------------------------------------------------------- #
# Algorithm adapters
# --------------------------------------------------------------------------- #
AlgorithmAdapter = Callable[..., RunResult]


def _id_local_inputs(graph: nx.Graph, seed: SeedLike, id_bound: int) -> Dict:
    """Assign each node a unique random ID (a random permutation of [1, n])."""
    rng = make_rng(seed)
    labels = list(graph.nodes)
    rng.shuffle(labels)
    return {label: {"id": position} for position, label in enumerate(labels, 1)}


def _run_vt_mis(graph: nx.Graph, seed: SeedLike, **params) -> RunResult:
    from repro.algorithms.vt_mis import vt_mis_protocol

    n = graph.number_of_nodes()
    id_bound = params.get("id_bound", max(1, n))
    local_inputs = params.get("local_inputs")
    if local_inputs is None:
        local_inputs = _id_local_inputs(graph, seed, id_bound)
    return run_protocol(
        graph,
        vt_mis_protocol,
        inputs={"id_bound": id_bound},
        local_inputs=local_inputs,
        seed=seed,
        message_bit_limit=params.get("message_bit_limit"),
        trace=params.get("trace", False),
    )


def _run_naive_greedy(graph: nx.Graph, seed: SeedLike, **params) -> RunResult:
    from repro.algorithms.naive_greedy import naive_greedy_protocol

    n = graph.number_of_nodes()
    id_bound = params.get("id_bound", max(1, n))
    local_inputs = params.get("local_inputs")
    if local_inputs is None:
        local_inputs = _id_local_inputs(graph, seed, id_bound)
    return run_protocol(
        graph,
        naive_greedy_protocol,
        inputs={"id_bound": id_bound},
        local_inputs=local_inputs,
        seed=seed,
        message_bit_limit=params.get("message_bit_limit"),
        trace=params.get("trace", False),
    )


def _run_luby(graph: nx.Graph, seed: SeedLike, **params) -> RunResult:
    from repro.algorithms.luby import luby_protocol

    return run_protocol(
        graph,
        luby_protocol,
        inputs={"max_iterations": params.get("max_iterations", 4096)},
        seed=seed,
        message_bit_limit=params.get("message_bit_limit"),
        trace=params.get("trace", False),
        vectorized=params.get("vectorized"),
    )


def _run_rank_greedy(graph: nx.Graph, seed: SeedLike, **params) -> RunResult:
    from repro.algorithms.rank_greedy import rank_greedy_protocol

    return run_protocol(
        graph,
        rank_greedy_protocol,
        inputs={},
        seed=seed,
        message_bit_limit=params.get("message_bit_limit"),
        trace=params.get("trace", False),
    )


def _run_ldt_mis(graph: nx.Graph, seed: SeedLike, **params) -> RunResult:
    from repro.algorithms.ldt_mis import run_ldt_mis

    return run_ldt_mis(
        graph,
        seed=seed,
        message_bit_limit=params.get("message_bit_limit"),
        trace=params.get("trace", False),
        n_bound=params.get("n_bound"),
        id_space=params.get("id_space"),
        variant=params.get("variant", "awake"),
        max_active_rounds=params.get("max_active_rounds", 10_000_000),
    )


def _run_awake_mis(graph: nx.Graph, seed: SeedLike, **params) -> RunResult:
    from repro.algorithms.awake_mis import run_awake_mis

    return run_awake_mis(
        graph,
        seed=seed,
        preset=params.get("preset", "scaled"),
        variant=params.get("variant", "awake"),
        params=params.get("params"),
        message_bit_limit=params.get("message_bit_limit"),
        trace=params.get("trace", False),
        max_active_rounds=params.get("max_active_rounds", 20_000_000),
    )


#: Registry of available algorithms: name -> adapter.
ALGORITHMS: Dict[str, AlgorithmAdapter] = {
    "vt_mis": _run_vt_mis,
    "naive_greedy": _run_naive_greedy,
    "luby": _run_luby,
    "rank_greedy": _run_rank_greedy,
    "ldt_mis": _run_ldt_mis,
    "awake_mis": _run_awake_mis,
}


def available_algorithms() -> List[str]:
    """Return the names accepted by :func:`run_mis`."""
    return sorted(ALGORITHMS)


def default_message_bit_limit(n: int) -> int:
    """CONGEST budget used by default: ``64 * ceil(log2(n + 2))`` bits.

    The model allows O(log n)-bit messages; the constant 64 accommodates the
    small tuples of IDs/counters the protocols exchange while still scaling
    logarithmically, so a protocol that needed polynomially many bits (the
    LOCAL-only algorithms the paper cites) would be rejected.
    """
    return 64 * max(1, math.ceil(math.log2(n + 2)))


def run_mis(
    graph: nx.Graph,
    algorithm: str = "awake_mis",
    seed: SeedLike = None,
    verify: bool = True,
    enforce_congest: bool = True,
    keep_raw: bool = False,
    collect_raw: bool = True,
    **params: Any,
) -> MISRunResult:
    """Run *algorithm* on *graph* and return a verified :class:`MISRunResult`.

    Parameters
    ----------
    graph:
        Any simple undirected graph.
    algorithm:
        One of :func:`available_algorithms`.
    seed:
        Master seed controlling every random choice of the run.
    verify:
        When True (default) the output set is checked for independence and
        maximality; the result records the outcome in ``verified``.
    enforce_congest:
        When True (default) the simulator enforces the CONGEST message-size
        budget of :func:`default_message_bit_limit`.  Passing False lifts
        the bit limit, which also unlocks the simulator's fast engines —
        including the numpy whole-round engine for algorithms that opt in
        (``luby``; select with the ``vectorized`` parameter, tri-state as
        in :func:`repro.sim.runner.run_protocol`).  Engine choice never
        changes outputs or awake/round/message counts, only wall-clock.
    keep_raw:
        When True the full :class:`repro.sim.runner.RunResult` (including the
        per-node outputs) is attached as ``raw``.
    collect_raw:
        When False the result is compacted: per-node metric counters are
        collapsed into a :class:`~repro.sim.metrics.CompactRunMetrics` and no
        raw payload is kept, so the result stays small enough to ship across
        process boundaries.  The parallel sweep executor runs in this mode.
    params:
        Algorithm-specific parameters forwarded to the adapter.
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm '{algorithm}'; available: {available_algorithms()}"
        )
    if graph.number_of_nodes() == 0:
        raise ConfigurationError("cannot run an MIS algorithm on an empty graph")
    if keep_raw and not collect_raw:
        raise ConfigurationError(
            "keep_raw=True requires collect_raw=True; a compacted result "
            "cannot carry the raw simulation payload"
        )

    if enforce_congest and "message_bit_limit" not in params:
        params["message_bit_limit"] = default_message_bit_limit(
            graph.number_of_nodes()
        )

    from repro.algorithms.common import mis_from_result

    started = time.perf_counter()
    raw = ALGORITHMS[algorithm](graph, seed, **params)
    elapsed = time.perf_counter() - started

    mis = mis_from_result(raw)
    independent = maximal = True
    if verify:
        independent = is_independent_set(graph, mis)
        maximal = is_maximal_independent_set(graph, mis)

    result = MISRunResult(
        algorithm=algorithm,
        graph_nodes=graph.number_of_nodes(),
        graph_edges=graph.number_of_edges(),
        mis=mis,
        verified=independent and maximal,
        independent=independent,
        maximal=maximal,
        metrics=raw.metrics,
        wall_time_seconds=elapsed,
        seed=seed if isinstance(seed, int) else None,
        parameters={k: v for k, v in params.items() if k != "local_inputs"},
        raw=raw if keep_raw else None,
    )
    return result if collect_raw else result.compact()
