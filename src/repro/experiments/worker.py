"""Framed-JSON task worker (stdio pipes or a TCP listener).

Run as ``python -m repro.experiments.worker`` to serve tasks over the
stdio pipes (how :class:`~repro.experiments.transports
.SubprocessTransport` spawns it), or with ``--listen HOST:PORT`` /
``repro-mis worker serve --listen HOST:PORT`` to serve them over TCP for
:class:`~repro.experiments.transports.SocketTransport` — the same loop,
framing and failure semantics either way.

The protocol is length-prefixed JSON: each frame is a 4-byte big-endian
length followed by that many bytes of UTF-8 JSON.

Worker → coordinator, once per connection (the handshake)::

    {"kind": "hello", "schema": CODE_SCHEMA_VERSION, "pid": 4242,
     "features": ["batch", "window"]}

Coordinator → worker::

    {"kind": "task", "seq": 0, "index": 7, "task": {...SweepTask.to_json()...}}
    {"kind": "tasks", "items": [{"seq": 1, "index": 8, "task": {...}}, ...]}

Worker → coordinator, one reply per task, in the order received::

    {"kind": "result", "seq": 0, "index": 7,
     "result": {...MISRunResult.to_record()...}}
    {"kind": "error",  "seq": 0, "index": 7, "error": "<traceback text>"}

The hello's schema version is :data:`~repro.experiments.store
.CODE_SCHEMA_VERSION` — the same version that keys the results store —
so a coordinator refuses workers whose metrics would not be comparable.
Its ``features`` list advertises protocol capabilities: ``"window"``
(the coordinator may keep several frames in flight on this connection —
safe because the worker serves each connection sequentially and replies
strictly in send order) and ``"batch"`` (the ``tasks`` frame above,
carrying several tiny tasks in one frame).  A coordinator talking to a
hello without these features degrades to the historical one-frame-
at-a-time protocol; ``seq`` is optional on task frames and echoed on
replies when present, which is how the coordinator cross-checks its
per-connection in-flight tracking.

EOF on the task stream is the shutdown signal (over TCP the worker then
loops back to ``accept``, so a long-lived worker serves many sweeps).  A
task exception is reported as an ``error`` frame (the worker survives and
keeps serving); only an actual worker death — which the coordinator
detects as EOF/reset on *its* end — triggers restart/reconnect-and-
requeue.

``--slots N`` makes one TCP worker serve up to N coordinator connections
concurrently (the handshake is unchanged — it happens once per
connection, and its ``pid`` is the pid of whatever actually executes the
tasks).  With more than one slot, each accepted connection is served by
a **slot subprocess** (``--slot-mode process``, the default), so an
N-slot worker donates N cores instead of N threads fighting over one
GIL.  What the slots share is the graph work: the *serving* process owns
a :class:`~repro.experiments.shm_cache.SharedGraphCache` of flat CSR
adjacency arrays (:mod:`repro.graphs.csr`) in
``multiprocessing.shared_memory`` — one segment per ``(family, n,
graph_seed)``, generated once per host — and every slot maps the
segments read-only (zero-copy) instead of regenerating graphs.  That
sharing is safe because graphs are **read-only** after construction —
algorithms never mutate them (pinned by ``tests/test_executor.py``) —
and the segments are owned by the serving process and unlinked exactly
once (LRU eviction or shutdown), never by a slot.  ``--slot-mode
thread`` restores the historical thread slots (shared in-process
:func:`~repro.experiments.executor._build_graph` LRU, GIL-bound);
``--start-method fork|spawn|forkserver`` pins how slot subprocesses are
started.  A single-slot worker stays in-process either way unless
``--slot-mode process`` is asked for explicitly.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import socket
import stat
import struct
import sys
import threading
import traceback
from typing import Any, BinaryIO, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.store import CODE_SCHEMA_VERSION
from repro.experiments.transports import (WORKER_FAULT_DIR_ENV,
                                          format_address, split_host_port)
from repro.experiments.executor import SweepTask, run_task


def _read_exactly(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes, or ``None`` on EOF before that.

    A single ``read(n)`` may legally return fewer than ``n`` bytes —
    guaranteed on sockets once frames span TCP segments, possible on
    pipes — so the read is looped until exactly-n or EOF.  An EOF
    mid-frame (torn frame) also returns ``None``: to a frame reader a
    peer that died mid-write looks the same as one that closed cleanly.
    """
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO,
               on_bytes: Optional[Callable[[int], None]] = None,
               ) -> Optional[Dict[str, Any]]:
    """Read one length-prefixed JSON frame; ``None`` on clean/torn EOF.

    *on_bytes*, when given, receives the frame's wire size (header +
    payload) once the frame arrived whole — the transport telemetry's
    bytes-received accounting, costing nothing when absent.
    """
    header = _read_exactly(stream, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    payload = _read_exactly(stream, length)
    if payload is None:
        return None
    if on_bytes is not None:
        on_bytes(4 + length)
    return json.loads(payload.decode("utf-8"))


def write_frame(stream: BinaryIO, record: Dict[str, Any]) -> int:
    """Write one length-prefixed JSON frame and flush it.

    Returns the wire size written (header + payload) so senders can
    account bytes without re-serialising the record.
    """
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    stream.write(struct.pack(">I", len(payload)) + payload)
    stream.flush()
    return 4 + len(payload)


def hello_frame() -> Dict[str, Any]:
    """The handshake frame a worker sends once per connection.

    ``features`` advertises the windowed/batched protocol extensions (see
    the module docstring) so coordinators degrade gracefully against
    workers that predate them — and vice versa.
    """
    return {"kind": "hello", "schema": CODE_SCHEMA_VERSION,
            "pid": os.getpid(), "features": ["batch", "window"]}


#: Environment variable naming a file the worker appends one line to per
#: task execution attempt (the task's ``run_seed``).  Test-only: the
#: chaos suite counts lines per run_seed to bound requeue amplification —
#: a task may be requeued across connection flaps, but every execution
#: lands exactly one line here regardless of which connection carried it.
WORKER_EXEC_LOG_ENV = "REPRO_WORKER_EXEC_LOG"


def _log_execution(task: SweepTask) -> None:
    """Append one ``run_seed`` line to the execution log, when armed.

    Open-append-close per line: O_APPEND keeps concurrent writes from
    slot threads (and multiple worker processes) whole for lines this
    small.
    """
    path = os.environ.get(WORKER_EXEC_LOG_ENV)
    if not path:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{task.run_seed}\n")


class _InjectedConnectionDeath(Exception):
    """Raised by :func:`maybe_crash` to kill one connection, not the process.

    Only fault injection raises it; the multi-slot serve loop turns it
    into an abrupt connection close, which the coordinator observes as a
    peer death (EOF mid-task) exactly like a killed single-slot worker.
    """


def maybe_crash(task: SweepTask, scope: str = "process") -> None:
    """Test-only fault injection: die mid-task when a marker file says so.

    When :data:`~repro.experiments.transports.WORKER_FAULT_DIR_ENV` names
    a directory containing ``crash-run_seed-<seed>``, the marker is
    removed and the fault fires — *after* accepting the task but *before*
    producing its result, exactly the window a real crash/kill/OOM hits.
    Removing the marker first makes the fault one-shot: the retry of the
    requeued task succeeds, which is what the recovery tests need.  Works
    identically for pipe and socket workers.

    *scope* picks what dies.  ``"process"`` (single-slot workers, stdio
    workers) exits hard with code 17 — the historical behaviour the
    crash-recovery suites assert on.  ``"connection"`` (multi-slot
    workers, where one slot cannot take the process down without killing
    its siblings) raises :class:`_InjectedConnectionDeath`, which the
    serve loop turns into an abrupt close of just that connection.
    """
    fault_dir = os.environ.get(WORKER_FAULT_DIR_ENV)
    if not fault_dir:
        return
    marker = os.path.join(fault_dir, f"crash-run_seed-{task.run_seed}")
    if os.path.exists(marker):
        os.unlink(marker)
        if scope == "connection":
            raise _InjectedConnectionDeath(
                f"fault marker for run_seed {task.run_seed}")
        os._exit(17)


def serve_stream(reader: BinaryIO, writer: BinaryIO,
                 fault_scope: str = "process",
                 stats: Optional[Dict[str, int]] = None) -> int:
    """Serve one framed task stream until EOF (pipe or socket alike).

    Returns the number of task frames handled.  *stats*, when given, has
    its ``"tasks"`` entry updated incrementally — so a caller watching a
    stream that dies mid-connection (garbage frames, a vanished peer)
    can still tell whether the peer ever proved itself with a valid task
    frame; :func:`serve` uses that for its ``max_connections`` budget.
    """
    handled = 0
    write_frame(writer, hello_frame())
    while True:
        frame = read_frame(reader)
        if frame is None:
            return handled
        # A windowed coordinator may batch several tiny tasks into one
        # `tasks` frame; each item gets its own reply, in order, so the
        # coordinator's head-of-window matching never changes.
        items = frame["items"] if frame.get("kind") == "tasks" else [frame]
        for item in items:
            task = SweepTask.from_json(item["task"])
            handled += 1
            if stats is not None:
                stats["tasks"] = handled
            maybe_crash(task, scope=fault_scope)
            _log_execution(task)
            # `seq` is echoed when present so the coordinator can
            # cross-check its in-flight tracking; old coordinators never
            # send it and get the historical reply shape back.
            reply = {"index": item["index"]}
            if "seq" in item:
                reply["seq"] = item["seq"]
            try:
                result = run_task(task)
            except Exception as error:
                # ``configuration`` lets the coordinator re-raise a
                # ConfigurationError as itself (matching what an
                # in-process transport would do), so the CLI renders it
                # as a clean `error:` line on every transport.
                write_frame(writer, {
                    "kind": "error",
                    "message": str(error),
                    "configuration": isinstance(error, ConfigurationError),
                    "error": traceback.format_exc(),
                    **reply,
                })
                continue
            write_frame(writer, {"kind": "result",
                                 "result": result.to_record(), **reply})


def _close_inherited_sockets(keep: Tuple[int, ...]) -> None:
    """Close socket fds a forked slot inherited from the serving process.

    A fork duplicates the parent's whole fd table.  When :func:`serve`
    is embedded in the coordinator's own process, that table includes
    the coordinator side of *sibling* connections — and a slot holding
    such a duplicate keeps the sibling's socket alive past the
    coordinator's ``close()``, so the sibling slot never sees EOF and
    ``serve()`` never drains.  Closing every inherited socket except our
    own connection and control pipe restores fork/spawn parity (spawn
    children never inherit them in the first place).  Non-socket fds
    (pipes, files, multiprocessing's resource-tracker FIFO) are left
    alone.
    """
    keep_fds = set(keep) | {0, 1, 2}
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):
        return  # no procfs — only reachable where we never fork slots
    for fd in fds:
        if fd in keep_fds:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _slot_process_main(connection: socket.socket, control: Any) -> None:
    """Entry point of one slot subprocess: serve exactly one connection.

    The accepted socket travels here through ``multiprocessing``'s fd
    reduction (works under fork and spawn alike), so the framed protocol
    — hello included, now carrying *this* process's pid — is unchanged.
    *control* is the pipe back to the serving process; it carries graph
    requests (``("graph", family, n, graph_seed)`` → ``("ok",
    segment_name)``) and a one-shot ``("served",)`` once the first valid
    task frame arrives (the serving process's ``max_connections``
    budget).  Fetched segments are attached zero-copy and parked in the
    slot-local :func:`~repro.experiments.executor._build_graph` LRU, so
    the control round-trip happens once per combo per slot.

    Fault injection runs with ``scope="process"`` here: ``os._exit(17)``
    kills *this slot only* — the serving process survives, the
    coordinator sees a connection death, and the shared segments stay
    owned (and eventually unlinked) by the server.
    """
    import signal

    with contextlib.suppress(Exception):
        # The operator's Ctrl-C belongs to the serving process, which
        # terminates slots in an orderly way; a process-group SIGINT must
        # not splatter one traceback per slot.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    with contextlib.suppress(Exception):
        _close_inherited_sockets((connection.fileno(), control.fileno()))

    from repro.experiments import executor, shm_cache

    def _fetch(family: str, n: int, graph_seed: int):
        try:
            control.send(("graph", family, n, graph_seed))
            kind, payload = control.recv()
        except (EOFError, OSError):
            return None
        if kind != "ok":
            return None
        try:
            return shm_cache.attach_segment(payload)
        except Exception:
            # Segment evicted between reply and attach (or any mapping
            # hiccup): regenerate locally rather than failing the task.
            return None

    executor._reset_worker_graph_cache()
    executor.set_shared_graph_source(_fetch)
    notified = {"sent": False}

    class _ServedSignal(dict):
        """Stats dict that tells the server about the first valid task."""

        def __setitem__(self, key, value):
            super().__setitem__(key, value)
            if key == "tasks" and value > 0 and not notified["sent"]:
                notified["sent"] = True
                with contextlib.suppress(OSError):
                    control.send(("served",))

    stats = _ServedSignal(tasks=0)
    reader = connection.makefile("rb")
    writer = connection.makefile("wb")
    try:
        serve_stream(reader, writer, fault_scope="process", stats=stats)
    except OSError:
        pass  # the coordinator vanished mid-frame
    except Exception as error:
        print(f"repro-mis worker: slot {os.getpid()} dropping its "
              f"connection: {error!r}", file=sys.stderr, flush=True)
    finally:
        for stream in (reader, writer):
            with contextlib.suppress(OSError):
                stream.close()
        with contextlib.suppress(OSError):
            connection.close()
        with contextlib.suppress(OSError):
            control.close()


def parse_listen_address(listen: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` / ``[IPV6]:PORT`` listen address (port 0 =
    ephemeral)."""
    try:
        return split_host_port(listen, allow_ephemeral=True)
    except ValueError as error:
        raise ConfigurationError(
            f"invalid listen address '{listen}': {error} — --listen takes "
            "HOST:PORT or [IPV6]:PORT (e.g. 0.0.0.0:8750, [::1]:8750; "
            "port 0 for an OS-assigned ephemeral port)"
        ) from None


def serve(listen: str, max_connections: Optional[int] = None,
          slots: int = 1,
          on_listening: Optional[Callable[[str, int], None]] = None,
          slot_mode: Optional[str] = None,
          start_method: Optional[str] = None) -> int:
    """Serve the framed task protocol over TCP until interrupted.

    *slots* is how many coordinator connections are served concurrently,
    and the accept loop stops handing out connections while all slots
    are busy.  *slot_mode* picks what a slot is:

    - ``"process"`` (the default whenever ``slots > 1``): each accepted
      connection is served by a subprocess, so N slots donate N cores.
      Graphs are shared through this process's
      :class:`~repro.experiments.shm_cache.SharedGraphCache` — flat CSR
      arrays in ``multiprocessing.shared_memory``, generated once per
      ``(family, n, graph_seed)`` and mapped read-only by every slot.
      The segments are owned *here* and unlinked exactly once (eviction
      or the shutdown path below); slots only close their mappings.
    - ``"thread"`` (the default for ``slots == 1``, and the historical
      multi-slot behaviour): slot threads in this process sharing the
      in-process :func:`~repro.experiments.executor._build_graph` LRU.

    *start_method* (``fork``/``spawn``/``forkserver``) pins how slot
    subprocesses start; ``None`` uses the platform default.

    *max_connections* bounds how many connections are served before
    returning (``None`` = forever); tests and demos use it for a
    self-terminating worker.  Only connections that prove themselves —
    deliver at least one valid task frame after the hello — count
    toward the budget: a port-scanner, a garbage peer or a coordinator
    that refused our schema and hung up must not permanently consume a
    bounded worker's capacity.

    The actual listening address is announced on stderr (``listening on
    HOST:PORT``) so callers binding port 0 learn the ephemeral port;
    *on_listening*, when given, receives ``(host, port)`` as well (for
    in-process callers that cannot watch stderr).
    """
    host, port = parse_listen_address(listen)
    if not isinstance(slots, int) or isinstance(slots, bool) or slots < 1:
        raise ConfigurationError(
            f"invalid slots value {slots!r}: need a positive int (the "
            "number of coordinator connections served concurrently)"
        )
    if slot_mode not in (None, "thread", "process"):
        raise ConfigurationError(
            f"invalid slot mode {slot_mode!r}: choose 'thread' or "
            "'process'")
    resolved_mode = slot_mode or ("process" if slots > 1 else "thread")
    mp_context = None
    shared_cache = None
    if resolved_mode == "process":
        try:
            mp_context = multiprocessing.get_context(start_method)
        except ValueError:
            raise ConfigurationError(
                f"invalid start method {start_method!r}: this platform "
                f"supports {multiprocessing.get_all_start_methods()}"
            ) from None
        from repro.experiments.shm_cache import (SharedGraphCache,
                                                 reap_stale_segments)

        reaped = reap_stale_segments()
        if reaped:
            print(f"repro-mis worker: reaped {len(reaped)} orphaned shared "
                  "graph segment(s) from dead workers",
                  file=sys.stderr, flush=True)
        shared_cache = SharedGraphCache()
    elif start_method is not None:
        raise ConfigurationError(
            "--start-method only applies to process slots "
            "(slot mode 'process')")
    family = socket.AF_INET6 if ":" in host else socket.AF_INET
    server = socket.create_server((host, port), family=family)
    lock = threading.Lock()
    state = {"served": 0, "closing": False}
    capacity = threading.BoundedSemaphore(slots)
    threads: List[threading.Thread] = []
    slot_processes: List[Any] = []
    # A single-slot in-process worker dies whole on an injected fault (the
    # historical exit-17 the crash suites assert on); in a multi-slot
    # worker one slot cannot take its siblings down, so the fault kills
    # just the connection (thread slots) or just the slot subprocess
    # (process slots — which exits 17, the same signature, without
    # touching the serving process).
    fault_scope = "process" if slots == 1 else "connection"
    interrupted = False

    def _exhausted() -> bool:
        return (max_connections is not None
                and state["served"] >= max_connections)

    def _count_connection(proved: bool) -> None:
        with lock:
            if proved:
                state["served"] += 1
            if _exhausted():
                # The accept loop polls `closing` (closing the listener
                # from here would not wake a blocked accept).
                state["closing"] = True

    def _serve_connection(connection: socket.socket, peer: str) -> None:
        stats = {"tasks": 0}
        try:
            with connection:
                reader = connection.makefile("rb")
                writer = connection.makefile("wb")
                try:
                    serve_stream(reader, writer, fault_scope=fault_scope,
                                 stats=stats)
                except _InjectedConnectionDeath as death:
                    # Test-only: drop this connection abruptly (no result
                    # frame) so the coordinator sees a peer death.
                    print(f"repro-mis worker: fault injection killed the "
                          f"connection from {peer}: {death}",
                          file=sys.stderr, flush=True)
                except OSError:
                    pass  # the coordinator vanished mid-frame
                except Exception as error:
                    # A malformed frame (garbage bytes, JSON without a
                    # task) must cost one connection, not the worker: a
                    # donated long-lived worker never dies because one
                    # peer misbehaved.
                    print("repro-mis worker: dropping connection from "
                          f"{peer}: {error!r}", file=sys.stderr, flush=True)
                finally:
                    for stream in (reader, writer):
                        with contextlib.suppress(OSError):
                            stream.close()
            print(f"repro-mis worker: coordinator {peer} disconnected",
                  file=sys.stderr, flush=True)
        finally:
            _count_connection(stats["tasks"] > 0)
            capacity.release()

    def _relay_connection(connection: socket.socket, peer: str) -> None:
        """Serve one connection through a slot subprocess.

        This (serving-process) thread does no task work: it forwards the
        accepted socket to a fresh slot process, then services the slot's
        control pipe — shared-segment requests and the served-a-task
        signal — until the slot exits.
        """
        proved = False
        process = None
        parent_end = None
        try:
            parent_end, child_end = mp_context.Pipe()
            process = mp_context.Process(
                target=_slot_process_main, args=(connection, child_end),
                name=f"repro-worker-slot[{peer}]", daemon=True)
            process.start()
            with lock:
                slot_processes.append(process)
            # The slot owns its duplicates now; keeping ours would hold
            # the connection (and the pipe write end) open past its death.
            child_end.close()
            connection.close()
            while True:
                try:
                    message = parent_end.recv()
                except (EOFError, OSError):
                    break
                if message[0] == "graph":
                    _, graph_family, n, graph_seed = message
                    try:
                        reply = ("ok", shared_cache.get_or_create(
                            graph_family, n, graph_seed))
                    except Exception as error:
                        reply = ("error", repr(error))
                    try:
                        parent_end.send(reply)
                    except (OSError, BrokenPipeError):
                        break
                elif message[0] == "served":
                    proved = True
        finally:
            with contextlib.suppress(OSError):
                connection.close()
            if parent_end is not None:
                with contextlib.suppress(OSError):
                    parent_end.close()
            if process is not None:
                if process.pid is not None:
                    process.join()
                with lock:
                    with contextlib.suppress(ValueError):
                        slot_processes.remove(process)
                if process.exitcode == 17:
                    print("repro-mis worker: fault injection killed the "
                          f"slot serving {peer} (exit 17); worker "
                          "continues", file=sys.stderr, flush=True)
                elif process.exitcode not in (0, None):
                    print(f"repro-mis worker: slot serving {peer} exited "
                          f"with code {process.exitcode}",
                          file=sys.stderr, flush=True)
            print(f"repro-mis worker: coordinator {peer} disconnected",
                  file=sys.stderr, flush=True)
            _count_connection(proved)
            capacity.release()

    handler = (_relay_connection if resolved_mode == "process"
               else _serve_connection)

    try:
        bound_host, bound_port = server.getsockname()[:2]
        print("repro-mis worker: listening on "
              f"{format_address(bound_host, bound_port)}",
              file=sys.stderr, flush=True)
        if slots > 1 or resolved_mode == "process":
            detail = ("process slots, shared-memory CSR graph cache"
                      if resolved_mode == "process"
                      else "thread slots, shared graph cache")
            print(f"repro-mis worker: serving up to {slots} concurrent "
                  f"connections ({detail})", file=sys.stderr, flush=True)
        if on_listening is not None:
            on_listening(bound_host, bound_port)
        # Accept with a short timeout rather than blocking forever: a slot
        # thread reaching the connection budget can only *flag* shutdown
        # (closing the listener from another thread does not interrupt a
        # blocked accept), so the loop has to come up for air to see it.
        server.settimeout(0.25)
        accepted = 0
        while True:
            with lock:
                if state["closing"] or _exhausted():
                    break
            capacity.acquire()
            with lock:
                if state["closing"] or _exhausted():
                    capacity.release()
                    break
            try:
                connection, peer_address = server.accept()
            except socket.timeout:
                capacity.release()
                continue
            except OSError:
                # The server socket died under us; stop serving.
                capacity.release()
                break
            # Timeout mode must not leak onto the connection: result
            # frames legitimately block for as long as a task computes.
            connection.settimeout(None)
            # Batched replies are small writes fired back-to-back;
            # without TCP_NODELAY, Nagle holds each one until the
            # coordinator's delayed ACK (~40ms), pacing the pipelined
            # protocol down to stop-and-wait speed.
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            accepted += 1
            # Keep only live threads around for the shutdown join — a
            # serve-forever worker must not accumulate one dead Thread
            # object per connection it ever served.
            threads[:] = [t for t in threads if t.is_alive()]
            thread = threading.Thread(
                target=handler,
                args=(connection,
                      format_address(peer_address[0], peer_address[1])),
                name=f"repro-worker-slot-{accepted}", daemon=True)
            threads.append(thread)
            thread.start()
    except KeyboardInterrupt:
        interrupted = True
    finally:
        with lock:
            state["closing"] = True
        with contextlib.suppress(OSError):
            server.close()
        # Let in-flight connections finish so a returned serve() means no
        # slot thread is still running (the worker-side leak detector
        # pins this).  On a graceful exit (connection budget reached) the
        # wait is unbounded — an in-flight task may legitimately compute
        # for longer than any fixed timeout, and its coordinator will
        # disconnect when done, exactly like the historical sequential
        # serve loop.  Only an operator interrupt gives up after a grace
        # period: slot subprocesses are terminated (their relay threads
        # then join them) and any remaining daemon threads abandoned.
        if interrupted:
            with lock:
                lingering = list(slot_processes)
            for process in lingering:
                with contextlib.suppress(Exception):
                    process.terminate()
        for thread in threads:
            thread.join(timeout=5.0 if interrupted else None)
        if shared_cache is not None:
            # Every slot has been joined (or abandoned as terminated), so
            # this is the single place the segments are unlinked.
            stats = shared_cache.stats()
            shared_cache.close()
            print("repro-mis worker: shared graph cache "
                  f"hits={stats['hits']} misses={stats['misses']} "
                  f"evictions={stats['evictions']} "
                  f"unlinked={stats['currsize']}",
                  file=sys.stderr, flush=True)
    return 0


def spawn_local_worker(extra_env: Optional[Dict[str, str]] = None,
                       host: str = "127.0.0.1", slots: int = 1,
                       max_connections: Optional[int] = None,
                       slot_mode: Optional[str] = None,
                       start_method: Optional[str] = None,
                       ) -> Tuple[Any, str]:
    """Spawn a local TCP worker on an ephemeral port (test/demo helper).

    Starts ``python -m repro.experiments.worker --listen host:0`` (plus
    ``--slots``/``--max-connections`` when given), waits for the
    ``listening on HOST:PORT`` announcement, and returns ``(Popen,
    "host:port")`` ready for ``--workers``/:class:`~repro.experiments
    .transports.SocketTransport` — append ``*K`` to the address to dial
    all K slots of a multi-slot worker.  A drain thread keeps the
    worker's stderr from ever filling its pipe.  The caller owns the
    process (kill + wait when done).
    """
    import re
    import subprocess

    env = os.environ.copy()
    if extra_env:
        env.update(extra_env)
    command = [sys.executable, "-m", "repro.experiments.worker",
               "--listen", f"{host}:0"]
    if slots != 1:
        command += ["--slots", str(slots)]
    if max_connections is not None:
        command += ["--max-connections", str(max_connections)]
    if slot_mode is not None:
        command += ["--slot-mode", slot_mode]
    if start_method is not None:
        command += ["--start-method", start_method]
    process = subprocess.Popen(command, stderr=subprocess.PIPE, text=True,
                               env=env)
    # The announcement is not necessarily the first stderr line (a
    # starting worker may first report reaping orphaned segments), so
    # scan until it appears or the stream ends.
    match = None
    seen = []
    while match is None:
        announcement = process.stderr.readline()
        if not announcement:
            break
        seen.append(announcement)
        match = re.search(r"listening on \S+:(\d+)", announcement)
    if not match:
        process.kill()
        process.wait()
        raise RuntimeError(
            f"worker failed to announce its port: {''.join(seen)!r}")
    threading.Thread(target=process.stderr.read, daemon=True).start()
    return process, f"{host}:{match.group(1)}"


def main(argv: Optional[list] = None) -> int:
    """Entry point: stdio worker by default, TCP worker with ``--listen``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-mis-worker",
        description="framed-JSON sweep-task worker (stdio or TCP)",
    )
    parser.add_argument("--listen", metavar="HOST:PORT", default=None,
                        help="serve over TCP on this address instead of "
                             "the stdio pipes (port 0 = ephemeral, "
                             "[IPV6]:PORT accepted)")
    parser.add_argument("--slots", type=int, default=1, metavar="N",
                        help="serve up to N coordinator connections "
                             "concurrently, sharing the host's graph "
                             "work (default: 1; TCP mode only)")
    parser.add_argument("--max-connections", type=int, default=None,
                        metavar="N",
                        help="exit after N connections that served at "
                             "least one task (default: serve forever)")
    parser.add_argument("--slot-mode", choices=["thread", "process"],
                        default=None,
                        help="what a slot is: 'process' (subprocess per "
                             "connection, shared-memory CSR graph cache; "
                             "default when --slots > 1) or 'thread' "
                             "(historical GIL-bound slot threads; default "
                             "for --slots 1)")
    parser.add_argument("--start-method",
                        choices=["fork", "spawn", "forkserver"],
                        default=None,
                        help="multiprocessing start method for process "
                             "slots (default: platform default)")
    args = parser.parse_args(argv)
    if args.listen is not None:
        # SIGTERM (plain `kill`, fixture teardown) takes the same orderly
        # shutdown path as Ctrl-C: join/terminate slots, unlink every
        # shared graph segment exactly once.  SIGKILL is unmaskable; the
        # next worker to start reaps any segments it orphaned.
        import signal

        def _terminate(signum, frame):
            raise KeyboardInterrupt

        with contextlib.suppress(ValueError, OSError):
            signal.signal(signal.SIGTERM, _terminate)
        try:
            return serve(args.listen, max_connections=args.max_connections,
                         slots=args.slots, slot_mode=args.slot_mode,
                         start_method=args.start_method)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    serve_stream(sys.stdin.buffer, sys.stdout.buffer)
    return 0


if __name__ == "__main__":
    sys.exit(main())
