"""Framed-JSON task worker (stdio pipes or a TCP listener).

Run as ``python -m repro.experiments.worker`` to serve tasks over the
stdio pipes (how :class:`~repro.experiments.transports
.SubprocessTransport` spawns it), or with ``--listen HOST:PORT`` /
``repro-mis worker serve --listen HOST:PORT`` to serve them over TCP for
:class:`~repro.experiments.transports.SocketTransport` — the same loop,
framing and failure semantics either way.

The protocol is length-prefixed JSON: each frame is a 4-byte big-endian
length followed by that many bytes of UTF-8 JSON.

Worker → coordinator, once per connection (the handshake)::

    {"kind": "hello", "schema": CODE_SCHEMA_VERSION, "pid": 4242}

Coordinator → worker::

    {"kind": "task", "index": 7, "task": {...SweepTask.to_json()...}}

Worker → coordinator::

    {"kind": "result", "index": 7, "result": {...MISRunResult.to_record()...}}
    {"kind": "error",  "index": 7, "error": "<traceback text>"}

The hello's schema version is :data:`~repro.experiments.store
.CODE_SCHEMA_VERSION` — the same version that keys the results store —
so a coordinator refuses workers whose metrics would not be comparable.

EOF on the task stream is the shutdown signal (over TCP the worker then
loops back to ``accept``, so a long-lived worker serves many sweeps).  A
task exception is reported as an ``error`` frame (the worker survives and
keeps serving); only an actual worker death — which the coordinator
detects as EOF/reset on *its* end — triggers restart/reconnect-and-
requeue.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import sys
import traceback
from typing import Any, BinaryIO, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.store import CODE_SCHEMA_VERSION
from repro.experiments.transports import WORKER_FAULT_DIR_ENV
from repro.experiments.executor import SweepTask, run_task


def _read_exactly(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes, or ``None`` on EOF before that.

    A single ``read(n)`` may legally return fewer than ``n`` bytes —
    guaranteed on sockets once frames span TCP segments, possible on
    pipes — so the read is looped until exactly-n or EOF.  An EOF
    mid-frame (torn frame) also returns ``None``: to a frame reader a
    peer that died mid-write looks the same as one that closed cleanly.
    """
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Read one length-prefixed JSON frame; ``None`` on clean/torn EOF."""
    header = _read_exactly(stream, 4)
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    payload = _read_exactly(stream, length)
    if payload is None:
        return None
    return json.loads(payload.decode("utf-8"))


def write_frame(stream: BinaryIO, record: Dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame and flush it."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    stream.write(struct.pack(">I", len(payload)) + payload)
    stream.flush()


def hello_frame() -> Dict[str, Any]:
    """The handshake frame a worker sends once per connection."""
    return {"kind": "hello", "schema": CODE_SCHEMA_VERSION,
            "pid": os.getpid()}


def maybe_crash(task: SweepTask) -> None:
    """Test-only fault injection: die mid-task when a marker file says so.

    When :data:`~repro.experiments.transports.WORKER_FAULT_DIR_ENV` names
    a directory containing ``crash-run_seed-<seed>``, the marker is
    removed and the process exits hard — *after* accepting the task but
    *before* producing its result, exactly the window a real
    crash/kill/OOM hits.  Removing the marker first makes the fault
    one-shot: the retry of the requeued task succeeds, which is what the
    recovery tests need.  Works identically for pipe and socket workers.
    """
    fault_dir = os.environ.get(WORKER_FAULT_DIR_ENV)
    if not fault_dir:
        return
    marker = os.path.join(fault_dir, f"crash-run_seed-{task.run_seed}")
    if os.path.exists(marker):
        os.unlink(marker)
        os._exit(17)


def serve_stream(reader: BinaryIO, writer: BinaryIO) -> None:
    """Serve one framed task stream until EOF (pipe or socket alike)."""
    write_frame(writer, hello_frame())
    while True:
        frame = read_frame(reader)
        if frame is None:
            return
        task = SweepTask.from_json(frame["task"])
        maybe_crash(task)
        try:
            result = run_task(task)
        except Exception as error:
            # ``configuration`` lets the coordinator re-raise a
            # ConfigurationError as itself (matching what an in-process
            # transport would do), so the CLI renders it as a clean
            # `error:` line on every transport.
            write_frame(writer, {
                "kind": "error",
                "index": frame["index"],
                "message": str(error),
                "configuration": isinstance(error, ConfigurationError),
                "error": traceback.format_exc(),
            })
            continue
        write_frame(writer, {"kind": "result", "index": frame["index"],
                             "result": result.to_record()})


def parse_listen_address(listen: str) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` listen address (port 0 = ephemeral)."""
    host, separator, port_text = listen.rpartition(":")
    if not separator or not host or not port_text.isdigit():
        raise ConfigurationError(
            f"invalid listen address '{listen}': expected HOST:PORT "
            "(e.g. 0.0.0.0:8750, port 0 for an ephemeral port)"
        )
    return host, int(port_text)


def serve(listen: str, max_connections: Optional[int] = None) -> int:
    """Serve the framed task protocol over TCP until interrupted.

    Connections are served one at a time — one socket worker is one
    execution slot; run several workers for more parallelism.  After a
    coordinator disconnects the worker loops back to ``accept``, so one
    long-lived worker serves any number of sweeps.  *max_connections*
    bounds how many connections are served before returning (``None`` =
    forever); tests and demos use it for a self-terminating worker.

    The actual listening address is announced on stderr (``listening on
    HOST:PORT``) so callers binding port 0 learn the ephemeral port.
    """
    host, port = parse_listen_address(listen)
    server = socket.create_server((host, port))
    try:
        bound_host, bound_port = server.getsockname()[:2]
        print(f"repro-mis worker: listening on {bound_host}:{bound_port}",
              file=sys.stderr, flush=True)
        served = 0
        while max_connections is None or served < max_connections:
            connection, peer_address = server.accept()
            served += 1
            with connection:
                reader = connection.makefile("rb")
                writer = connection.makefile("wb")
                try:
                    serve_stream(reader, writer)
                except OSError:
                    # The coordinator vanished mid-frame; back to accept.
                    pass
                except Exception as error:
                    # A malformed frame (garbage bytes, JSON without a
                    # task) must cost one connection, not the worker: a
                    # donated long-lived worker never dies because one
                    # peer misbehaved.
                    print("repro-mis worker: dropping connection from "
                          f"{peer_address[0]}:{peer_address[1]}: "
                          f"{error!r}", file=sys.stderr, flush=True)
                finally:
                    for stream in (reader, writer):
                        try:
                            stream.close()
                        except OSError:
                            pass
                print(f"repro-mis worker: coordinator "
                      f"{peer_address[0]}:{peer_address[1]} disconnected",
                      file=sys.stderr, flush=True)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def spawn_local_worker(extra_env: Optional[Dict[str, str]] = None,
                       host: str = "127.0.0.1") -> Tuple[Any, str]:
    """Spawn a local TCP worker on an ephemeral port (test/demo helper).

    Starts ``python -m repro.experiments.worker --listen host:0``, waits
    for the ``listening on HOST:PORT`` announcement, and returns
    ``(Popen, "host:port")`` ready for ``--workers``/:class:`~repro
    .experiments.transports.SocketTransport`.  A drain thread keeps the
    worker's stderr from ever filling its pipe.  The caller owns the
    process (kill + wait when done).
    """
    import re
    import subprocess
    import threading

    env = os.environ.copy()
    if extra_env:
        env.update(extra_env)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.worker",
         "--listen", f"{host}:0"],
        stderr=subprocess.PIPE, text=True, env=env,
    )
    announcement = process.stderr.readline()
    match = re.search(r"listening on [0-9.]+:(\d+)", announcement)
    if not match:
        process.kill()
        process.wait()
        raise RuntimeError(
            f"worker failed to announce its port: {announcement!r}")
    threading.Thread(target=process.stderr.read, daemon=True).start()
    return process, f"{host}:{match.group(1)}"


def main(argv: Optional[list] = None) -> int:
    """Entry point: stdio worker by default, TCP worker with ``--listen``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-mis-worker",
        description="framed-JSON sweep-task worker (stdio or TCP)",
    )
    parser.add_argument("--listen", metavar="HOST:PORT", default=None,
                        help="serve over TCP on this address instead of "
                             "the stdio pipes (port 0 = ephemeral)")
    parser.add_argument("--max-connections", type=int, default=None,
                        metavar="N",
                        help="exit after serving N connections "
                             "(default: serve forever)")
    args = parser.parse_args(argv)
    if args.listen is not None:
        try:
            return serve(args.listen, max_connections=args.max_connections)
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    serve_stream(sys.stdin.buffer, sys.stdout.buffer)
    return 0


if __name__ == "__main__":
    sys.exit(main())
