"""Subprocess worker for :class:`~repro.experiments.backends.AsyncSubprocessBackend`.

Run as ``python -m repro.experiments.worker``.  The protocol is
length-prefixed JSON over the stdio pipes: each frame is a 4-byte
big-endian length followed by that many bytes of UTF-8 JSON.

Coordinator → worker::

    {"kind": "task", "index": 7, "task": {...SweepTask.to_json()...}}

Worker → coordinator::

    {"kind": "result", "index": 7, "result": {...MISRunResult.to_record()...}}
    {"kind": "error",  "index": 7, "error": "<traceback text>"}

EOF on stdin is the shutdown signal.  A task exception is reported as an
``error`` frame (the worker survives and keeps serving); only an actual
process death — which the coordinator detects as EOF on *its* end —
triggers restart-and-requeue.

The framing is deliberately transport-agnostic: the same worker loop works
over a socket, which is what makes this backend the stepping stone to a
cluster backend.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import traceback
from typing import Any, BinaryIO, Dict, Optional

from repro.errors import ConfigurationError
from repro.experiments.backends import WORKER_FAULT_DIR_ENV
from repro.experiments.executor import SweepTask, run_task


def read_frame(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    """Read one length-prefixed JSON frame; ``None`` on clean/torn EOF."""
    header = stream.read(4)
    if header is None or len(header) < 4:
        return None
    (length,) = struct.unpack(">I", header)
    payload = stream.read(length)
    if payload is None or len(payload) < length:
        return None
    return json.loads(payload.decode("utf-8"))


def write_frame(stream: BinaryIO, record: Dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame and flush it."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    stream.write(struct.pack(">I", len(payload)) + payload)
    stream.flush()


def maybe_crash(task: SweepTask) -> None:
    """Test-only fault injection: die mid-task when a marker file says so.

    When :data:`~repro.experiments.backends.WORKER_FAULT_DIR_ENV` names a
    directory containing ``crash-run_seed-<seed>``, the marker is removed
    and the process exits hard — *after* accepting the task but *before*
    producing its result, exactly the window a real crash/kill/OOM hits.
    Removing the marker first makes the fault one-shot: the retry of the
    requeued task succeeds, which is what the recovery tests need.
    """
    fault_dir = os.environ.get(WORKER_FAULT_DIR_ENV)
    if not fault_dir:
        return
    marker = os.path.join(fault_dir, f"crash-run_seed-{task.run_seed}")
    if os.path.exists(marker):
        os.unlink(marker)
        os._exit(17)


def main() -> int:
    """Serve tasks from stdin until EOF."""
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    while True:
        frame = read_frame(stdin)
        if frame is None:
            return 0
        task = SweepTask.from_json(frame["task"])
        maybe_crash(task)
        try:
            result = run_task(task)
        except Exception as error:
            # ``configuration`` lets the coordinator re-raise a
            # ConfigurationError as itself (matching what the process
            # pool's pickled exception would do), so the CLI renders it
            # as a clean `error:` line on every backend.
            write_frame(stdout, {
                "kind": "error",
                "index": frame["index"],
                "message": str(error),
                "configuration": isinstance(error, ConfigurationError),
                "error": traceback.format_exc(),
            })
            continue
        write_frame(stdout, {"kind": "result", "index": frame["index"],
                             "result": result.to_record()})


if __name__ == "__main__":
    sys.exit(main())
