"""Shared-memory CSR graph cache for process-backed worker slots.

One :class:`SharedGraphCache` lives in the *serving* worker process.  Slot
subprocesses never generate graphs themselves for cached keys: they ask
the serving process (over their control pipe) for the segment name of a
``(family, n, graph_seed)`` combo, and the serving process generates the
graph once, serialises it as flat CSR arrays
(:class:`repro.graphs.csr.CSRGraph`) into one
``multiprocessing.shared_memory`` segment, and replies with the name.
Every slot then maps that segment read-only via :func:`attach_segment` —
a zero-copy O(1) attach regardless of graph size.

Ownership invariant (pinned in ROADMAP and the leak tests): **segments
are owned by the serving process and unlinked exactly once** — either
when LRU eviction drops them or when :meth:`SharedGraphCache.close` runs
at worker shutdown.  Slot processes only ever ``close()`` their mapping;
they must not unlink (on Linux an unlinked-but-mapped segment stays
usable until the last mapping closes, so eviction never breaks a slot
mid-task).  A slot that dies mid-task therefore leaks nothing: the
segment it mapped is still owned — and later unlinked — by the server.

Attaching from a slot needs one CPython workaround: before 3.13,
``SharedMemory(name=...)`` registers the mapping with the
``resource_tracker`` even for non-owners, and the tracker *unlinks* the
segment when the attaching process exits (bpo-39959) — which would let a
finishing slot yank a cached graph out from under its siblings.  We pass
``track=False`` where available and unregister manually otherwise.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import threading
from collections import OrderedDict
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

from repro.graphs.csr import CSRGraph, CSRGraphView

#: Segment names look like ``repro-csr-<server pid>-<counter>``; the
#: prefix is what leak checks (and CI's ``ls /dev/shm`` artifacts) grep.
SEGMENT_PREFIX = "repro-csr"


class _AttachedSegment(shared_memory.SharedMemory):
    """A non-owning mapping whose ``close`` tolerates live views.

    At interpreter shutdown the ``SharedMemory`` finalizer may run while
    CSR memoryviews into the buffer are still alive (GC order is
    arbitrary), which raises ``BufferError`` from ``close``.  The mapping
    is released by process exit regardless, so swallow it.
    """

    def close(self) -> None:  # see class docstring
        with contextlib.suppress(BufferError):
            super().close()


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from unlinking a segment we don't own.

    Only needed when the attaching process is *not* the serving process:
    segment names embed the owner's pid, and in the owner the creation-time
    registration must survive (its ``unlink`` pairs with it).  Elsewhere,
    pre-3.13 ``SharedMemory`` attach registers the segment too, and the
    tracker would unlink it when this process exits (bpo-39959).
    """
    if f"-{os.getpid()}-" in shm.name:
        return
    from multiprocessing import resource_tracker

    with contextlib.suppress(Exception):
        resource_tracker.unregister(getattr(shm, "_name", shm.name),
                                    "shared_memory")


def attach_segment(name: str) -> CSRGraphView:
    """Map segment *name* read-only and return the CSR graph view.

    The returned view keeps the mapping alive (the ``SharedMemory``
    object rides along as the array owner); nothing is copied.  Raises
    ``FileNotFoundError`` if the segment is gone (e.g. evicted between
    the reply and the attach) — callers fall back to regenerating.
    """
    try:
        shm = _AttachedSegment(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        shm = _AttachedSegment(name=name)
        _untrack(shm)
    try:
        return CSRGraph.from_buffer(shm.buf, owner=shm).view()
    except Exception:
        shm.close()
        raise


def active_segments() -> List[str]:
    """Names of live ``repro-csr`` segments on this host (Linux: /dev/shm).

    Diagnostic for leak tests and CI failure artifacts; returns ``[]``
    where /dev/shm doesn't exist.
    """
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(name for name in names if name.startswith(SEGMENT_PREFIX))


def reap_stale_segments() -> List[str]:
    """Unlink ``repro-csr`` segments whose owning process is dead.

    A SIGKILL'd (or OOM-killed) serving process cannot run its shutdown
    unlink; its segments would otherwise persist until reboot.  Segment
    names embed the owner's pid, so any server starting on the host can
    safely reap orphans: a pid that no longer exists cannot be serving
    slots from them.  Segments whose owner is still alive — including a
    recycled pid — are left strictly alone.  Returns the reaped names.
    """
    reaped: List[str] = []
    for name in active_segments():
        parts = name.split("-")
        try:
            owner_pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        try:
            os.kill(owner_pid, 0)
        except ProcessLookupError:
            pass  # owner is gone; the segment is an orphan
        except OSError:
            continue  # e.g. EPERM: someone else's live process
        else:
            continue  # owner still running
        with contextlib.suppress(OSError):
            os.unlink(os.path.join("/dev/shm", name))
            reaped.append(name)
    return reaped


class SharedGraphCache:
    """LRU of shared-memory CSR segments, owned by the serving process.

    Sized like the worker-local graph cache (``REPRO_GRAPH_CACHE``,
    default 32, floor 1 — a zero-sized shared cache would thrash every
    request).  Eviction and :meth:`close` are the only two places a
    segment is ever unlinked, and :meth:`close` is idempotent, so each
    segment is unlinked exactly once.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is None:
            from repro.experiments.executor import _resolve_graph_cache_size
            max_entries = _resolve_graph_cache_size()
        self._max_entries = max(1, max_entries)
        self._lock = threading.Lock()
        self._segments: "OrderedDict[Tuple[str, int, int], shared_memory.SharedMemory]" = OrderedDict()
        self._counter = itertools.count()
        self._closed = False
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_create(self, family: str, n: int, graph_seed: int) -> str:
        """Return the segment name for a combo, creating it on first use."""
        key = (family, n, graph_seed)
        with self._lock:
            if self._closed:
                raise RuntimeError("shared graph cache is closed")
            segment = self._segments.get(key)
            if segment is not None:
                self._segments.move_to_end(key)
                self._hits += 1
                return segment.name
        # Generate outside the lock: graph construction dominates, and
        # concurrent requests for *different* keys shouldn't serialise.
        from repro.graphs.generators import build_csr

        csr = build_csr(family, n, seed=graph_seed)
        evicted: List[shared_memory.SharedMemory] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("shared graph cache is closed")
            segment = self._segments.get(key)
            if segment is not None:  # lost a build race; theirs wins
                self._segments.move_to_end(key)
                self._hits += 1
                return segment.name
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(self._counter)}"
            segment = shared_memory.SharedMemory(name=name, create=True,
                                                 size=csr.nbytes)
            csr.pack_into(segment.buf)
            self._misses += 1
            self._segments[key] = segment
            while len(self._segments) > self._max_entries:
                _, old = self._segments.popitem(last=False)
                self._evictions += 1
                evicted.append(old)
        for old in evicted:
            self._unlink(old)
        return segment.name

    @staticmethod
    def _unlink(segment: shared_memory.SharedMemory) -> None:
        with contextlib.suppress(OSError):
            segment.close()
        with contextlib.suppress(FileNotFoundError, OSError):
            segment.unlink()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "maxsize": self._max_entries,
                "currsize": len(self._segments),
            }

    def close(self) -> None:
        """Unlink every live segment.  Idempotent; called at shutdown."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = list(self._segments.values())
            self._segments.clear()
        for segment in segments:
            self._unlink(segment)
