"""Experiment harness: single runs, parallel sweeps, tables, and the E1–E8
registry."""

from repro.experiments.executor import (
    SweepTask,
    execute_tasks,
    plan_sweep_tasks,
    resolve_jobs,
    run_task,
)
from repro.experiments.harness import (
    ALGORITHMS,
    MISRunResult,
    available_algorithms,
    default_message_bit_limit,
    run_mis,
)

__all__ = [
    "ALGORITHMS",
    "MISRunResult",
    "SweepTask",
    "available_algorithms",
    "default_message_bit_limit",
    "execute_tasks",
    "plan_sweep_tasks",
    "resolve_jobs",
    "run_mis",
    "run_task",
]
