"""Experiment harness: single runs, streaming parallel sweeps, the JSONL
results store, tables, and the E1–E9 registry."""

from repro.experiments.executor import (
    SweepTask,
    execute_tasks,
    iter_task_results,
    plan_sweep_tasks,
    resolve_jobs,
    run_task,
)
from repro.experiments.harness import (
    ALGORITHMS,
    MISRunResult,
    available_algorithms,
    default_message_bit_limit,
    run_mis,
)
from repro.experiments.store import (
    CODE_SCHEMA_VERSION,
    ResultStore,
    load_sweep_result,
    task_key,
)

__all__ = [
    "ALGORITHMS",
    "CODE_SCHEMA_VERSION",
    "MISRunResult",
    "ResultStore",
    "SweepTask",
    "available_algorithms",
    "default_message_bit_limit",
    "execute_tasks",
    "iter_task_results",
    "load_sweep_result",
    "plan_sweep_tasks",
    "resolve_jobs",
    "run_mis",
    "run_task",
    "task_key",
]
