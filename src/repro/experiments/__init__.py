"""Experiment harness: single runs, streaming sweeps over pluggable
execution backends, the (optionally sharded) JSONL results store, tables,
and the E1–E9 registry."""

from repro.experiments.backends import (
    BACKENDS,
    AsyncSubprocessBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    resolve_backend,
)
from repro.experiments.executor import (
    SweepTask,
    execute_tasks,
    iter_task_results,
    plan_sweep_tasks,
    resolve_jobs,
    run_task,
)
from repro.experiments.harness import (
    ALGORITHMS,
    MISRunResult,
    available_algorithms,
    default_message_bit_limit,
    run_mis,
)
from repro.experiments.store import (
    CODE_SCHEMA_VERSION,
    ResultStore,
    ShardedResultStore,
    discover_shards,
    load_sweep_result,
    open_store,
    task_key,
)

__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "CODE_SCHEMA_VERSION",
    "AsyncSubprocessBackend",
    "MISRunResult",
    "ProcessBackend",
    "ResultStore",
    "SerialBackend",
    "ShardedResultStore",
    "SweepTask",
    "ThreadBackend",
    "available_algorithms",
    "available_backends",
    "default_message_bit_limit",
    "discover_shards",
    "execute_tasks",
    "iter_task_results",
    "load_sweep_result",
    "open_store",
    "plan_sweep_tasks",
    "resolve_backend",
    "resolve_jobs",
    "run_mis",
    "run_task",
    "task_key",
]
