"""Experiment harness: single runs, sweeps, tables, and the E1–E8 registry."""

from repro.experiments.harness import (
    ALGORITHMS,
    MISRunResult,
    available_algorithms,
    default_message_bit_limit,
    run_mis,
)

__all__ = [
    "ALGORITHMS",
    "MISRunResult",
    "available_algorithms",
    "default_message_bit_limit",
    "run_mis",
]
