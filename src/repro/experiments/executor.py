"""Parallel sweep executor.

The experiment grid (algorithm × graph family × n × repetition) is the
product surface of the reproduction: every scaling claim in the paper is
measured by sweeping it.  This module decomposes a sweep into independent,
picklable :class:`SweepTask` specs and fans them out over a
``concurrent.futures.ProcessPoolExecutor``.

Design invariants
-----------------

* **Seeds are derived up front.**  :func:`plan_sweep_tasks` consumes the
  sweep's master RNG in exactly the order the historical serial loop did
  (per ``(family, n)``: first the repetition graph seeds, then one run seed
  per ``(algorithm, graph)``), so the task list — and therefore every result
  — is a pure function of the sweep arguments.  Execution order can then be
  arbitrary: parallel results are cell-for-cell identical to serial ones.
* **Workers regenerate graphs locally.**  A task carries ``(family, n,
  graph_seed)`` instead of a graph object; the worker rebuilds the graph
  from the deterministic generator registry, so nothing graph-sized ever
  crosses a process boundary in either direction.
* **Results ship compact.**  Workers run :func:`repro.experiments.harness
  .run_mis` with ``collect_raw=False`` so each result carries scalar
  :class:`~repro.sim.metrics.CompactRunMetrics` rather than per-node
  counter lists.

``jobs=1`` (the default) executes in-process with no pool, which keeps
single-run debugging, tracebacks and profiling simple.

Two consumption modes are offered: :func:`execute_tasks` returns the full
result list in task order (batch), while :func:`iter_task_results` /
:func:`iter_indexed_results` stream ``(task, result)`` pairs as workers
finish, so grids too large to hold every result in memory can aggregate
and persist incrementally (see :mod:`repro.experiments.sweeps` and
:mod:`repro.experiments.store`).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from functools import lru_cache
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.errors import ConfigurationError
from repro.experiments.harness import MISRunResult, run_mis
from repro.graphs.generators import by_name
from repro.rng import SeedLike, make_rng

#: Upper bound for derived seeds (matches the serial sweep's historical
#: ``rng.randrange(2**63)`` draws).
_SEED_SPACE = 2**63


@dataclass(frozen=True)
class SweepTask:
    """One picklable unit of sweep work: one algorithm run on one graph.

    The task is self-contained: the worker regenerates the graph from
    ``(family, n, graph_seed)`` and runs ``algorithm`` under ``run_seed``.
    ``params`` holds algorithm-specific keyword arguments as a sorted tuple
    of ``(key, value)`` pairs so the spec stays hashable and picklable.
    """

    algorithm: str
    family: str
    n: int
    graph_seed: int
    run_seed: int
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def cell_key(self) -> Tuple[str, str, int]:
        """Grid cell this task belongs to: ``(algorithm, family, n)``."""
        return (self.algorithm, self.family, self.n)


def plan_sweep_tasks(
    algorithms: Sequence[str],
    sizes: Sequence[int],
    families: Sequence[str] = ("gnp",),
    repetitions: int = 3,
    seed: SeedLike = None,
    algorithm_params: Optional[Dict[str, Dict[str, Any]]] = None,
) -> List[SweepTask]:
    """Expand a sweep grid into an ordered list of :class:`SweepTask`.

    Every seed any task will ever use is drawn from the master RNG here, in
    the fixed grid order (family → n → graph seeds → algorithm → run seeds).
    Nothing downstream touches the master RNG, which is what makes parallel
    execution bit-identical to serial execution.
    """
    rng = make_rng(seed)
    algorithm_params = algorithm_params or {}
    tasks: List[SweepTask] = []
    for family in families:
        for n in sizes:
            graph_seeds = [rng.randrange(_SEED_SPACE) for _ in range(repetitions)]
            for algorithm in algorithms:
                params = tuple(sorted(algorithm_params.get(algorithm, {}).items()))
                for graph_seed in graph_seeds:
                    tasks.append(
                        SweepTask(
                            algorithm=algorithm,
                            family=family,
                            n=n,
                            graph_seed=graph_seed,
                            run_seed=rng.randrange(_SEED_SPACE),
                            params=params,
                        )
                    )
    return tasks


@lru_cache(maxsize=32)
def _build_graph(family: str, n: int, graph_seed: int):
    """Worker-local graph cache.

    A sweep runs every algorithm on the same repetition graphs, so
    consecutive tasks in a worker's chunk usually share ``(family, n,
    graph_seed)``; caching avoids regenerating the graph once per
    algorithm.  Generators are deterministic, so cached and regenerated
    graphs are identical — algorithms treat them as read-only.

    Lifecycle: the coordinator clears its copy after every sweep, and each
    pool worker starts from an empty cache (``initializer=
    _reset_worker_graph_cache``).  Without the initializer, fork-started
    workers inherit whatever graphs a previous in-process sweep left pinned
    in the coordinator, keeping up to 32 stale graphs alive per worker.
    """
    return by_name(family, n, seed=graph_seed)


def _reset_worker_graph_cache() -> None:
    """Pool-worker initializer: drop any fork-inherited graph cache entries."""
    _build_graph.cache_clear()


def run_task(task: SweepTask) -> MISRunResult:
    """Execute one :class:`SweepTask` (this is the worker entry point).

    Regenerates the graph locally from the task's seeds and returns a
    compact :class:`MISRunResult` cheap enough to pickle back.
    """
    graph = _build_graph(task.family, task.n, task.graph_seed)
    return run_mis(
        graph,
        algorithm=task.algorithm,
        seed=task.run_seed,
        collect_raw=False,
        **dict(task.params),
    )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None`` and ``0`` mean "one worker per CPU"; positive integers are
    taken literally; anything else is rejected.
    """
    if jobs is not None and (not isinstance(jobs, int)
                             or isinstance(jobs, bool) or jobs < 0):
        raise ConfigurationError(
            f"invalid jobs value {jobs!r}: accepted forms are a positive int "
            "(that many worker processes, 1 = in-process), 0 or None "
            "(one worker per CPU)"
        )
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return jobs


#: Progress callback signature: ``(task, result, done, total)`` where *done*
#: counts completed executions (1-based) and *total* is the task count.
ProgressCallback = Callable[[SweepTask, MISRunResult, int, int], None]


def iter_task_results(
    tasks: Iterable[SweepTask],
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
) -> Iterator[Tuple[SweepTask, MISRunResult]]:
    """Stream ``(task, result)`` pairs as executions finish.

    This is the streaming counterpart of :func:`execute_tasks`: nothing is
    buffered, so a consumer can persist or aggregate each result and let it
    go — the footprint of a sweep no longer grows with the grid size.  With
    ``jobs=1`` tasks run in-process in task order; with a pool the pairs
    arrive in **completion order** (the yielded ``task`` says which one
    finished).  Because every seed was fixed up front by
    :func:`plan_sweep_tasks`, arrival order cannot affect any result —
    consumers that need deterministic aggregation simply fold the pairs
    back into task order (as :func:`repro.experiments.sweeps.run_sweep`
    does).

    *progress*, when given, is called in the coordinator process as
    ``progress(task, result, done, total)`` after each completed execution
    — it sees only tasks that actually ran, which is what lets resume tests
    assert that skipped tasks were never re-executed.
    """
    for _, task, result in iter_indexed_results(tasks, jobs=jobs,
                                                progress=progress):
        yield task, result


def iter_indexed_results(
    tasks: Iterable[SweepTask],
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
) -> Iterator[Tuple[int, SweepTask, MISRunResult]]:
    """Like :func:`iter_task_results` but each pair carries the task's
    position in *tasks*, for consumers that fold completion-order arrivals
    back into deterministic task order."""
    task_list = list(tasks)
    workers = resolve_jobs(jobs)
    total = len(task_list)
    done = 0
    if workers == 1 or total <= 1:
        try:
            for index, task in enumerate(task_list):
                result = run_task(task)
                done += 1
                if progress is not None:
                    progress(task, result, done, total)
                yield index, task, result
        finally:
            # Don't pin graphs in the coordinator process beyond the sweep.
            _build_graph.cache_clear()
        return
    workers = min(workers, total)
    # Per-task submission (no chunking): specs are a few ints/strings and
    # results are compact, so pickling is trivial — while tasks are emitted
    # in ascending-n order, meaning chunking would hand the expensive
    # large-n tail to a single straggler worker.
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_reset_worker_graph_cache,
    ) as pool:
        future_to_index = {pool.submit(run_task, task): index
                           for index, task in enumerate(task_list)}
        try:
            for future in as_completed(future_to_index):
                index = future_to_index[future]
                result = future.result()
                done += 1
                if progress is not None:
                    progress(task_list[index], result, done, total)
                yield index, task_list[index], result
        finally:
            # If the consumer abandons the stream early, don't let queued
            # tasks keep the pool busy through the context-manager join.
            if done < total:
                for future in future_to_index:
                    future.cancel()
            _build_graph.cache_clear()


def execute_tasks(
    tasks: Iterable[SweepTask],
    jobs: Optional[int] = 1,
) -> List[MISRunResult]:
    """Run every task and return results in task order.

    Batch wrapper over :func:`iter_indexed_results`: results are reassembled
    positionally, so the returned list aligns with *tasks* regardless of
    which worker finished first.  Prefer the iterators for large grids —
    this holds every result until the last task completes.
    """
    task_list = list(tasks)
    results: List[Optional[MISRunResult]] = [None] * len(task_list)
    for index, _, result in iter_indexed_results(task_list, jobs=jobs):
        results[index] = result
    return results  # type: ignore[return-value]
