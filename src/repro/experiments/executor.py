"""Parallel sweep executor.

The experiment grid (algorithm × graph family × n × repetition) is the
product surface of the reproduction: every scaling claim in the paper is
measured by sweeping it.  This module decomposes a sweep into independent,
picklable :class:`SweepTask` specs and fans them out over a
``concurrent.futures.ProcessPoolExecutor``.

Design invariants
-----------------

* **Seeds are derived up front.**  :func:`plan_sweep_tasks` consumes the
  sweep's master RNG in exactly the order the historical serial loop did
  (per ``(family, n)``: first the repetition graph seeds, then one run seed
  per ``(algorithm, graph)``), so the task list — and therefore every result
  — is a pure function of the sweep arguments.  Execution order can then be
  arbitrary: parallel results are cell-for-cell identical to serial ones.
* **Workers regenerate graphs locally.**  A task carries ``(family, n,
  graph_seed)`` instead of a graph object; the worker rebuilds the graph
  from the deterministic generator registry, so nothing graph-sized ever
  crosses a process boundary in either direction.
* **Results ship compact.**  Workers run :func:`repro.experiments.harness
  .run_mis` with ``collect_raw=False`` so each result carries scalar
  :class:`~repro.sim.metrics.CompactRunMetrics` rather than per-node
  counter lists.

``jobs=1`` (the default) executes in-process with no pool, which keeps
single-run debugging, tracebacks and profiling simple.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.harness import MISRunResult, run_mis
from repro.graphs.generators import by_name
from repro.rng import SeedLike, make_rng

#: Upper bound for derived seeds (matches the serial sweep's historical
#: ``rng.randrange(2**63)`` draws).
_SEED_SPACE = 2**63


@dataclass(frozen=True)
class SweepTask:
    """One picklable unit of sweep work: one algorithm run on one graph.

    The task is self-contained: the worker regenerates the graph from
    ``(family, n, graph_seed)`` and runs ``algorithm`` under ``run_seed``.
    ``params`` holds algorithm-specific keyword arguments as a sorted tuple
    of ``(key, value)`` pairs so the spec stays hashable and picklable.
    """

    algorithm: str
    family: str
    n: int
    graph_seed: int
    run_seed: int
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def cell_key(self) -> Tuple[str, str, int]:
        """Grid cell this task belongs to: ``(algorithm, family, n)``."""
        return (self.algorithm, self.family, self.n)


def plan_sweep_tasks(
    algorithms: Sequence[str],
    sizes: Sequence[int],
    families: Sequence[str] = ("gnp",),
    repetitions: int = 3,
    seed: SeedLike = None,
    algorithm_params: Optional[Dict[str, Dict[str, Any]]] = None,
) -> List[SweepTask]:
    """Expand a sweep grid into an ordered list of :class:`SweepTask`.

    Every seed any task will ever use is drawn from the master RNG here, in
    the fixed grid order (family → n → graph seeds → algorithm → run seeds).
    Nothing downstream touches the master RNG, which is what makes parallel
    execution bit-identical to serial execution.
    """
    rng = make_rng(seed)
    algorithm_params = algorithm_params or {}
    tasks: List[SweepTask] = []
    for family in families:
        for n in sizes:
            graph_seeds = [rng.randrange(_SEED_SPACE) for _ in range(repetitions)]
            for algorithm in algorithms:
                params = tuple(sorted(algorithm_params.get(algorithm, {}).items()))
                for graph_seed in graph_seeds:
                    tasks.append(
                        SweepTask(
                            algorithm=algorithm,
                            family=family,
                            n=n,
                            graph_seed=graph_seed,
                            run_seed=rng.randrange(_SEED_SPACE),
                            params=params,
                        )
                    )
    return tasks


@lru_cache(maxsize=32)
def _build_graph(family: str, n: int, graph_seed: int):
    """Worker-local graph cache.

    A sweep runs every algorithm on the same repetition graphs, so
    consecutive tasks in a worker's chunk usually share ``(family, n,
    graph_seed)``; caching avoids regenerating the graph once per
    algorithm.  Generators are deterministic, so cached and regenerated
    graphs are identical — algorithms treat them as read-only.
    """
    return by_name(family, n, seed=graph_seed)


def run_task(task: SweepTask) -> MISRunResult:
    """Execute one :class:`SweepTask` (this is the worker entry point).

    Regenerates the graph locally from the task's seeds and returns a
    compact :class:`MISRunResult` cheap enough to pickle back.
    """
    graph = _build_graph(task.family, task.n, task.graph_seed)
    return run_mis(
        graph,
        algorithm=task.algorithm,
        seed=task.run_seed,
        collect_raw=False,
        **dict(task.params),
    )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None`` and ``0`` mean "one worker per CPU"; positive integers are
    taken literally; anything else is rejected.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0 or None, got {jobs}")
    return jobs


def execute_tasks(
    tasks: Iterable[SweepTask],
    jobs: Optional[int] = 1,
) -> List[MISRunResult]:
    """Run every task and return results in task order.

    With ``jobs=1`` (or a single task) the tasks run in-process.  Otherwise
    they are fanned out over a :class:`~concurrent.futures
    .ProcessPoolExecutor`; ``pool.map`` preserves input order, so the result
    list is positionally aligned with *tasks* regardless of which worker
    finished first.
    """
    task_list = list(tasks)
    workers = resolve_jobs(jobs)
    if workers == 1 or len(task_list) <= 1:
        try:
            return [run_task(task) for task in task_list]
        finally:
            # Don't pin graphs in the coordinator process beyond the sweep
            # (pool workers release theirs when the pool shuts down).
            _build_graph.cache_clear()
    workers = min(workers, len(task_list))
    # Per-task dispatch: specs are a few ints/strings and results are
    # compact, so pickling is trivial — while tasks are emitted in
    # ascending-n order, meaning any chunking would hand the expensive
    # large-n tail to a single straggler worker.
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_task, task_list, chunksize=1))
