"""Parallel sweep executor.

The experiment grid (algorithm × graph family × n × repetition) is the
product surface of the reproduction: every scaling claim in the paper is
measured by sweeping it.  This module decomposes a sweep into independent,
picklable :class:`SweepTask` specs and fans them out over a
``concurrent.futures.ProcessPoolExecutor``.

Design invariants
-----------------

* **Seeds are derived up front.**  :func:`plan_sweep_tasks` consumes the
  sweep's master RNG in exactly the order the historical serial loop did
  (per ``(family, n)``: first the repetition graph seeds, then one run seed
  per ``(algorithm, graph)``), so the task list — and therefore every result
  — is a pure function of the sweep arguments.  Execution order can then be
  arbitrary: parallel results are cell-for-cell identical to serial ones.
* **Workers regenerate graphs locally.**  A task carries ``(family, n,
  graph_seed)`` instead of a graph object; the worker rebuilds the graph
  from the deterministic generator registry, so nothing graph-sized ever
  crosses a process boundary in either direction.
* **Results ship compact.**  Workers run :func:`repro.experiments.harness
  .run_mis` with ``collect_raw=False`` so each result carries scalar
  :class:`~repro.sim.metrics.CompactRunMetrics` rather than per-node
  counter lists.

``jobs=1`` (the default) executes in-process with no pool, which keeps
single-run debugging, tracebacks and profiling simple.

*Where* and *in what order* tasks execute is delegated to a pluggable
execution backend (:mod:`repro.experiments.backends`): a **scheduler**
(:mod:`repro.experiments.schedulers` — ``fifo`` or ``large-first``
ordering, retry/requeue, crash-loop accounting) composed with a
**transport** (:mod:`repro.experiments.transports` — ``inline``,
``thread``, ``process``, ``subprocess`` pipes, or ``socket`` workers on
other hosts).  The historical ``backend="serial"|"thread"|"process"|
"async"|"socket"`` strings select ready-made compositions.  Every
combination consumes the same up-front-seeded task specs, so they are
interchangeable without affecting a single result byte.

Two consumption modes are offered: :func:`execute_tasks` returns the full
result list in task order (batch), while :func:`iter_task_results` /
:func:`iter_indexed_results` stream ``(task, result)`` pairs as workers
finish, so grids too large to hold every result in memory can aggregate
and persist incrementally (see :mod:`repro.experiments.sweeps` and
:mod:`repro.experiments.store`).
"""

from __future__ import annotations

import os
import sys
import threading
from collections import OrderedDict, namedtuple
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.errors import ConfigurationError, UnknownFamilyError
from repro.experiments.harness import MISRunResult, run_mis
from repro.graphs.generators import by_name
from repro.rng import SeedLike, make_rng

#: Upper bound for derived seeds (matches the serial sweep's historical
#: ``rng.randrange(2**63)`` draws).
_SEED_SPACE = 2**63


@dataclass(frozen=True)
class SweepTask:
    """One picklable unit of sweep work: one algorithm run on one graph.

    The task is self-contained: the worker regenerates the graph from
    ``(family, n, graph_seed)`` and runs ``algorithm`` under ``run_seed``.
    ``params`` holds algorithm-specific keyword arguments as a sorted tuple
    of ``(key, value)`` pairs so the spec stays hashable and picklable.
    """

    algorithm: str
    family: str
    n: int
    graph_seed: int
    run_seed: int
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def cell_key(self) -> Tuple[str, str, int]:
        """Grid cell this task belongs to: ``(algorithm, family, n)``."""
        return (self.algorithm, self.family, self.n)

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe dict round-trippable via :meth:`from_json`.

        Shared by the on-disk results store and the subprocess worker
        protocol, so a task spec means exactly the same thing on disk, on a
        pipe and in memory.
        """
        return {
            "algorithm": self.algorithm,
            "family": self.family,
            "n": self.n,
            "graph_seed": self.graph_seed,
            "run_seed": self.run_seed,
            "params": [[key, value] for key, value in self.params],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SweepTask":
        """Inverse of :meth:`to_json`."""
        return cls(
            algorithm=data["algorithm"],
            family=data["family"],
            n=int(data["n"]),
            graph_seed=int(data["graph_seed"]),
            run_seed=int(data["run_seed"]),
            params=tuple((key, value) for key, value in data["params"]),
        )


def plan_sweep_tasks(
    algorithms: Sequence[str],
    sizes: Sequence[int],
    families: Sequence[str] = ("gnp",),
    repetitions: int = 3,
    seed: SeedLike = None,
    algorithm_params: Optional[Dict[str, Dict[str, Any]]] = None,
) -> List[SweepTask]:
    """Expand a sweep grid into an ordered list of :class:`SweepTask`.

    Every seed any task will ever use is drawn from the master RNG here, in
    the fixed grid order (family → n → graph seeds → algorithm → run seeds).
    Nothing downstream touches the master RNG, which is what makes parallel
    execution bit-identical to serial execution.

    Families and algorithms are validated eagerly: a typo must fail here,
    before a sweep touches its results store — a header stamped for an
    unrunnable grid would poison the store file.
    """
    from repro.experiments.harness import available_algorithms
    from repro.graphs.generators import FAMILIES

    for family in families:
        if family not in FAMILIES:
            raise UnknownFamilyError(
                f"unknown graph family '{family}'; known: {sorted(FAMILIES)}"
            )
    for algorithm in algorithms:
        if algorithm not in available_algorithms():
            raise ConfigurationError(
                f"unknown algorithm '{algorithm}'; available: "
                f"{available_algorithms()}"
            )
    rng = make_rng(seed)
    algorithm_params = algorithm_params or {}
    tasks: List[SweepTask] = []
    for family in families:
        for n in sizes:
            graph_seeds = [rng.randrange(_SEED_SPACE) for _ in range(repetitions)]
            for algorithm in algorithms:
                params = tuple(sorted(algorithm_params.get(algorithm, {}).items()))
                for graph_seed in graph_seeds:
                    tasks.append(
                        SweepTask(
                            algorithm=algorithm,
                            family=family,
                            n=n,
                            graph_seed=graph_seed,
                            run_seed=rng.randrange(_SEED_SPACE),
                            params=params,
                        )
                    )
    return tasks


#: Environment knob for the worker-local graph cache size.  A grid with
#: more than this many distinct ``(family, n, graph_seed)`` combos thrashes
#: (every graph rebuilt once per algorithm) — raise it for wide grids, or
#: set ``0`` to disable caching entirely.  Invalid values fall back to the
#: default with a warning on stderr.
GRAPH_CACHE_ENV = "REPRO_GRAPH_CACHE"
_GRAPH_CACHE_DEFAULT = 32

_CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize", "currsize"])


def _resolve_graph_cache_size() -> int:
    raw = os.environ.get(GRAPH_CACHE_ENV)
    if raw is None or not raw.strip():
        return _GRAPH_CACHE_DEFAULT
    try:
        size = int(raw)
    except ValueError:
        size = -1
    if size < 0:
        print(f"warning: ignoring invalid {GRAPH_CACHE_ENV}={raw!r} "
              f"(want a non-negative integer); using "
              f"{_GRAPH_CACHE_DEFAULT}", file=sys.stderr)
        return _GRAPH_CACHE_DEFAULT
    return size


class _GraphCache:
    """Worker-local graph cache (an ``lru_cache`` with observable knobs).

    A sweep runs every algorithm on the same repetition graphs, so
    consecutive tasks in a worker's chunk usually share ``(family, n,
    graph_seed)``; caching avoids regenerating the graph once per
    algorithm.  Generators are deterministic, so cached and regenerated
    graphs are identical.

    Cache contract — **cached graphs are read-only**.  Every consumer of
    :func:`run_task` may receive the same graph object as every other
    consumer in the process, concurrently: a multi-slot socket worker
    (``repro-mis worker serve --slots N``) shares each ``(family, n,
    graph_seed)`` graph across its slots — thread slots through this one
    LRU, process slots through the serving process's shared-memory CSR
    segments (see :mod:`repro.experiments.shm_cache`), which land here
    via :func:`set_shared_graph_source`.  Algorithm adapters must
    therefore never mutate the graph they are handed (pinned by
    ``tests/test_executor.py::TestGraphCacheLifecycle``); anything
    needing scratch state copies it out first.  Lookups are
    lock-protected; concurrent misses may build the same graph twice, but
    both builds are identical and one simply wins the cache slot.

    Differences from the old hard-coded ``lru_cache(maxsize=32)``:

    - the capacity reads ``REPRO_GRAPH_CACHE`` (default 32, re-read on
      every :meth:`cache_clear`), so wide grids no longer thrash silently;
    - eviction count is tracked and surfaced through backend telemetry
      (``SweepResult.telemetry["graph_cache"]``) alongside hits/misses;
    - a *shared source* hook lets worker slot processes fetch CSR arrays
      from the serving process's shared-memory cache instead of
      regenerating (counted under ``shared_hits``; still a local "miss").

    The ``cache_info()`` / ``cache_clear()`` surface matches
    ``functools.lru_cache`` (pinned by ``TestGraphCacheLifecycle``), and
    like functools, ``cache_clear`` resets the counters.

    Lifecycle: the coordinator clears its copy after every sweep, and each
    pool worker starts from an empty cache (``initializer=
    _reset_worker_graph_cache``).  Without the initializer, fork-started
    workers inherit whatever graphs a previous in-process sweep left pinned
    in the coordinator, keeping stale graphs alive per worker.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, int, int], Any]" = OrderedDict()
        self._maxsize = _resolve_graph_cache_size()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._shared_hits = 0

    def __call__(self, family: str, n: int, graph_seed: int):
        key = (family, n, graph_seed)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
        source = _shared_graph_source
        graph = source(family, n, graph_seed) if source is not None else None
        shared = graph is not None
        if graph is None:
            graph = by_name(family, n, seed=graph_seed)
        with self._lock:
            self._misses += 1
            if shared:
                self._shared_hits += 1
            if self._maxsize > 0:
                self._entries[key] = graph
                self._entries.move_to_end(key)
                while len(self._entries) > self._maxsize:
                    self._entries.popitem(last=False)
                    self._evictions += 1
        return graph

    def cache_info(self) -> _CacheInfo:
        with self._lock:
            return _CacheInfo(self._hits, self._misses, self._maxsize,
                              len(self._entries))

    def cache_clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = 0
            self._evictions = self._shared_hits = 0
            self._maxsize = _resolve_graph_cache_size()

    def stats(self) -> Dict[str, int]:
        """Counters for the telemetry path (superset of ``cache_info``)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "shared_hits": self._shared_hits,
                "maxsize": self._maxsize,
                "currsize": len(self._entries),
            }


#: Optional hook consulted on every local cache miss before regenerating:
#: ``source(family, n, graph_seed)`` returns a graph-like object or ``None``.
#: Worker slot processes install a fetcher that attaches the serving
#: process's shared-memory CSR segment for the key.
_shared_graph_source: Optional[Callable[[str, int, int], Any]] = None


def set_shared_graph_source(
        source: Optional[Callable[[str, int, int], Any]]) -> None:
    """Install (or clear, with ``None``) the shared graph source hook."""
    global _shared_graph_source
    _shared_graph_source = source


_build_graph = _GraphCache()


def graph_cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters of this process's graph cache."""
    return _build_graph.stats()


def _reset_worker_graph_cache() -> None:
    """Pool-worker initializer: drop any fork-inherited graph cache entries."""
    _build_graph.cache_clear()


def run_task(task: SweepTask) -> MISRunResult:
    """Execute one :class:`SweepTask` (this is the worker entry point).

    Regenerates the graph locally from the task's seeds and returns a
    compact :class:`MISRunResult` cheap enough to pickle back.
    """
    graph = _build_graph(task.family, task.n, task.graph_seed)
    return run_mis(
        graph,
        algorithm=task.algorithm,
        seed=task.run_seed,
        collect_raw=False,
        **dict(task.params),
    )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None`` and ``0`` mean "one worker per CPU"; positive integers are
    taken literally; anything else is rejected.
    """
    if jobs is not None and (not isinstance(jobs, int)
                             or isinstance(jobs, bool) or jobs < 0):
        raise ConfigurationError(
            f"invalid jobs value {jobs!r}: accepted forms are a positive int "
            "(that many worker processes, 1 = in-process), 0 or None "
            "(one worker per CPU)"
        )
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return jobs


#: Progress callback signature: ``(task, result, done, total)`` where *done*
#: counts completed executions (1-based) and *total* is the task count.
ProgressCallback = Callable[[SweepTask, MISRunResult, int, int], None]

#: A backend selector: ``None`` (pick serial/process from *jobs*), a backend
#: name from :data:`repro.experiments.backends.BACKENDS`, or an already
#: constructed backend object.
BackendLike = Union[None, str, Any]


def iter_task_results(
    tasks: Iterable[SweepTask],
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
    backend: BackendLike = None,
) -> Iterator[Tuple[SweepTask, MISRunResult]]:
    """Stream ``(task, result)`` pairs as executions finish.

    This is the streaming counterpart of :func:`execute_tasks`: nothing is
    buffered, so a consumer can persist or aggregate each result and let it
    go — the footprint of a sweep no longer grows with the grid size.  With
    the serial backend tasks run in-process in task order; with a
    multi-worker backend the pairs arrive in **completion order** (the
    yielded ``task`` says which one finished).  Because every seed was fixed
    up front by :func:`plan_sweep_tasks`, arrival order cannot affect any
    result — consumers that need deterministic aggregation simply fold the
    pairs back into task order (as :func:`repro.experiments.sweeps
    .run_sweep` does).

    *backend* selects where tasks execute (see
    :mod:`repro.experiments.backends`): ``None`` keeps the historical
    behaviour — in-process for ``jobs=1``, the process pool otherwise —
    while ``"serial"``/``"thread"``/``"process"``/``"async"`` (or a backend
    object) pick one explicitly.  Every backend yields byte-identical
    results; they differ only in placement and failure model.

    *progress*, when given, is called in the coordinator process as
    ``progress(task, result, done, total)`` after each completed execution
    — it sees only tasks that actually ran, which is what lets resume tests
    assert that skipped tasks were never re-executed.
    """
    for _, task, result in iter_indexed_results(tasks, jobs=jobs,
                                                progress=progress,
                                                backend=backend):
        yield task, result


def iter_indexed_results(
    tasks: Iterable[SweepTask],
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
    backend: BackendLike = None,
) -> Iterator[Tuple[int, SweepTask, MISRunResult]]:
    """Like :func:`iter_task_results` but each pair carries the task's
    position in *tasks*, for consumers that fold completion-order arrivals
    back into deterministic task order."""
    # Imported lazily: backends import run_task/_build_graph from this
    # module, so a top-level import would be circular.
    from repro.experiments.backends import resolve_backend

    task_list = list(tasks)
    chosen = resolve_backend(backend, jobs=jobs, total=len(task_list))
    total = len(task_list)
    done = 0
    stream = chosen.submit_tasks(task_list)
    try:
        for index, result in stream:
            done += 1
            if progress is not None:
                # A raising callback must not abandon in-flight workers or
                # leak transports: the finally below closes the backend
                # stream (cancelling queued work and shutting every slot
                # down) *before* the exception reaches the caller — same
                # teardown path as a consumer abandoning the stream.
                progress(task_list[index], result, done, total)
            yield index, task_list[index], result
    finally:
        # Deterministic cleanup on early abandonment, progress-callback
        # exceptions and worker errors alike: closing the backend stream
        # cancels queued work and shuts workers down.
        close = getattr(stream, "close", None)
        if close is not None:
            close()


def execute_tasks(
    tasks: Iterable[SweepTask],
    jobs: Optional[int] = 1,
    backend: BackendLike = None,
) -> List[MISRunResult]:
    """Run every task and return results in task order.

    Batch wrapper over :func:`iter_indexed_results`: results are reassembled
    positionally, so the returned list aligns with *tasks* regardless of
    which worker finished first.  Prefer the iterators for large grids —
    this holds every result until the last task completes.
    """
    task_list = list(tasks)
    results: List[Optional[MISRunResult]] = [None] * len(task_list)
    for index, _, result in iter_indexed_results(task_list, jobs=jobs,
                                                 backend=backend):
        results[index] = result
    return results  # type: ignore[return-value]
