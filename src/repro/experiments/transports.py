"""Transports: how task frames reach execution slots.

The execution layer is split into a **scheduler** (:mod:`repro.experiments
.schedulers` — task ordering, retry/requeue, crash-loop accounting) and a
**transport** (this module — moving :class:`~repro.experiments.executor
.SweepTask` frames to wherever execution happens and moving compact
results back).  A transport knows nothing about ordering or retry policy;
it reports what happened to each submitted task and lets the scheduler
decide what to do about it.

A transport is opened into a :class:`TransportSession` exposing:

``slots``
    How many executions may be in flight at once (may *shrink* when a
    remote worker is permanently lost).
``submit(index, task)``
    Dispatch one task into a free slot.  The scheduler guarantees it
    never has more than ``slots`` tasks in flight.
``next_event()``
    Block until something happens and return one of::

        ("result", index, MISRunResult)   # task finished
        ("error",  index, exception)      # task raised / setup failed
        ("lost",   index)                 # slot died mid-task; requeue it
``close()``
    Cancel queued work and shut every slot down.  Idempotent, safe to
    call with executions in flight.

Transports
----------

``inline`` (:class:`InlineTransport`)
    Execute in the coordinator process, synchronously.  Zero pickling;
    an unpicklable monkeypatched algorithm adapter still works, which is
    load-bearing for several tests.
``thread`` (:class:`ThreadTransport`)
    A ``ThreadPoolExecutor``: shared memory, GIL-bound, the cheapest way
    to exercise consumers against out-of-order arrival.
``process`` (:class:`ProcessTransport`)
    The historical ``ProcessPoolExecutor`` fan-out, including the worker
    initializer that clears fork-inherited graph-cache entries.
``subprocess`` (:class:`SubprocessTransport`)
    One ``python -m repro.experiments.worker`` per slot, speaking
    length-prefixed JSON over stdio pipes.  A worker that dies mid-task
    is respawned and the death reported as ``lost`` — the scheduler
    requeues the task and the sweep completes byte-identically.
``socket`` (:class:`SocketTransport`)
    The same framed-JSON worker protocol served over TCP: workers run
    ``repro-mis worker serve --listen HOST:PORT [--slots N]`` (any
    host), the coordinator dials each address and gets one slot per
    connection.  A ``host:port*K`` entry in the worker list dials K
    independent connections to the same worker — the way to use a
    worker serving ``--slots K``, whose slot threads share one graph
    cache.  The handshake carries :data:`~repro.experiments.store
    .CODE_SCHEMA_VERSION`, so a coordinator refuses workers running
    incompatible code; a dropped connection is requeued exactly like a
    killed subprocess (with one reconnect attempt in case only the
    connection — not the worker — died).

Every coordinator↔worker conversation starts with the worker's hello
frame (``{"kind": "hello", "schema": CODE_SCHEMA_VERSION}``); frames are
4-byte big-endian length prefixes followed by UTF-8 JSON (see
:mod:`repro.experiments.worker`).
"""

from __future__ import annotations

import contextlib
import os
import queue
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.errors import ConfigurationError, WorkerCrashError
from repro.experiments.executor import (_build_graph,
                                        _reset_worker_graph_cache, SweepTask,
                                        run_task)
from repro.experiments.harness import MISRunResult
from repro.experiments.store import CODE_SCHEMA_VERSION

#: Environment variable naming a directory of fault-injection markers for
#: framed-protocol workers (see :func:`repro.experiments.worker.maybe_crash`).
#: Test-only: lets the crash-recovery suites kill a worker mid-task
#: deterministically, over pipes and over TCP alike.
WORKER_FAULT_DIR_ENV = "REPRO_WORKER_FAULT_DIR"

#: Environment variable holding default socket worker addresses
#: (``host:port,host:port``) for ``backend="socket"`` when no explicit
#: worker list was given (CLI ``--workers`` takes precedence).
SOCKET_WORKERS_ENV = "REPRO_WORKERS"

#: Sentinel telling a slot thread to exit.
_SHUTDOWN = object()


def split_host_port(text: str) -> Tuple[str, int]:
    """Parse ``host:port`` or bracketed ``[ipv6]:port`` into ``(host, port)``.

    The bracketed form is how every other network tool spells an IPv6
    endpoint (``[::1]:8750``); the brackets are stripped so the host can
    go straight into :func:`socket.create_connection` /
    :func:`socket.create_server`.  Raises :class:`ValueError` on anything
    malformed — callers wrap it in their own
    :class:`~repro.errors.ConfigurationError` with flag-specific advice.
    """
    if text.startswith("["):
        host, bracket, port_text = text.partition("]:")
        host = host[1:]
        if not bracket or not host or not port_text.isdigit():
            raise ValueError(
                "expected [IPV6]:PORT with a numeric port (e.g. [::1]:8750)")
        return host, int(port_text)
    host, separator, port_text = text.rpartition(":")
    if not separator or not host or not port_text.isdigit():
        raise ValueError("expected HOST:PORT with a numeric port")
    return host, int(port_text)


def format_address(host: str, port: int) -> str:
    """Render ``(host, port)`` the way the parsers accept it back.

    IPv6 hosts get the ``[host]:port`` brackets so log lines can be
    copy-pasted straight into ``--workers``/``--listen``.
    """
    return f"[{host}]:{port}" if ":" in host else f"{host}:{port}"


def parse_worker_addresses(
    workers: Union[None, str, Sequence[str]],
) -> List[Tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (or a sequence) into address pairs.

    Each entry may carry a ``*K`` slot multiplier — ``host:port*4`` dials
    four independent connections to the same worker, which is how a
    multi-slot worker (``repro-mis worker serve --slots 4``) donates all
    of its slots.  IPv6 hosts use the bracketed form: ``[::1]:8750*2``.
    The returned list has one ``(host, port)`` pair per *connection*, so
    downstream code (one transport slot per pair) needs no multiplier
    awareness.
    """
    if workers is None:
        return []
    if isinstance(workers, str):
        parts = [part.strip() for part in workers.split(",") if part.strip()]
    else:
        parts = [str(part).strip() for part in workers if str(part).strip()]
    addresses: List[Tuple[str, int]] = []
    for part in parts:
        address_text, star, slots_text = part.partition("*")
        if star and not (slots_text.isdigit() and int(slots_text) >= 1):
            raise ConfigurationError(
                f"invalid worker address '{part}': the slot multiplier "
                "after '*' must be a positive integer (e.g. host:8750*4 "
                "for four connections to one multi-slot worker)"
            )
        try:
            host, port = split_host_port(address_text)
        except ValueError:
            raise ConfigurationError(
                f"invalid worker address '{part}': expected HOST:PORT or "
                "[IPV6]:PORT, optionally with a '*SLOTS' multiplier "
                "(e.g. 127.0.0.1:8750, [::1]:8750, hostA:8750*4)"
            ) from None
        addresses.extend([(host, port)] * (int(slots_text) if star else 1))
    return addresses


def _check_hello(frame: Optional[Dict], origin: str) -> None:
    """Validate a worker's hello frame (schema handshake).

    The schema version is the same one that keys the results store: a
    worker built from different code could return metrics that *parse*
    but mean something else, so a mismatch is refused outright rather
    than detected later as subtly wrong numbers.
    """
    if frame is None or frame.get("kind") != "hello":
        raise ConfigurationError(
            f"{origin}: peer did not send a hello frame — not a repro-mis "
            "worker (or one predating the handshake)"
        )
    if frame.get("schema") != CODE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{origin}: worker speaks code schema {frame.get('schema')!r} "
            f"but this coordinator speaks {CODE_SCHEMA_VERSION}; refusing "
            "the worker — mixed schemas would silently mix incomparable "
            "metrics"
        )


def _frame_error(frame: Dict, index: int) -> Exception:
    """Turn a worker's error frame into the exception the caller raises."""
    if frame.get("configuration"):
        # Re-raise configuration mistakes as themselves so they render
        # identically on every transport (the CLI turns ConfigurationError
        # into a clean `error: ...` line).
        return ConfigurationError(frame.get("message",
                                            "task failed in worker"))
    return WorkerCrashError(
        f"task {frame.get('index', index)} failed in "
        f"worker:\n{frame.get('error', '<no traceback>')}"
    )


class Transport:
    """Base transport: configuration + a cumulative slot-replacement count."""

    #: Registry name ("inline", "thread", ...), set by subclasses.
    name = "inline"

    def __init__(self) -> None:
        #: Cumulative count of slot peers replaced after dying mid-task
        #: (what the crash-recovery tests assert on).
        self.restarts = 0

    def open(self, slots: int) -> "TransportSession":
        raise NotImplementedError


class TransportSession:
    """Protocol documented at module level; concrete sessions subclass."""

    slots: int = 0

    def submit(self, index: int, task: SweepTask) -> None:
        raise NotImplementedError

    def next_event(self) -> Tuple:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# Inline
# --------------------------------------------------------------------------- #
class _InlineSession(TransportSession):
    """One synchronous in-process slot: submit stores, next_event runs."""

    slots = 1

    def __init__(self) -> None:
        self._queued: Optional[Tuple[int, SweepTask]] = None

    def submit(self, index: int, task: SweepTask) -> None:
        self._queued = (index, task)

    def next_event(self) -> Tuple:
        index, task = self._queued  # type: ignore[misc]
        self._queued = None
        try:
            return ("result", index, run_task(task))
        except Exception as error:
            # The exception object keeps its traceback; the scheduler
            # re-raises it with the original frames intact.
            return ("error", index, error)

    def close(self) -> None:
        # Don't pin graphs in the coordinator process beyond the sweep.
        _build_graph.cache_clear()


class InlineTransport(Transport):
    """In-process execution in submission order (no pool, no pickling)."""

    name = "inline"

    def open(self, slots: int) -> _InlineSession:
        del slots  # inline is always exactly one slot
        return _InlineSession()


# --------------------------------------------------------------------------- #
# concurrent.futures pools (thread / process)
# --------------------------------------------------------------------------- #
class _PoolSession(TransportSession):
    """Shared pool session: futures feed a completion-event queue.

    The scheduler keeps at most ``slots`` tasks in flight, so the pool's
    internal queue never grows beyond one task per worker — which is
    exactly what gives the scheduler, not the pool, control of dispatch
    order.
    """

    def __init__(self, pool_cls: Type, pool_kwargs: Dict, slots: int) -> None:
        self.slots = slots
        self._pool = pool_cls(max_workers=slots, **pool_kwargs)
        self._events: "queue.Queue[Tuple]" = queue.Queue()
        self._futures: set = set()

    def submit(self, index: int, task: SweepTask) -> None:
        future = self._pool.submit(run_task, task)
        self._futures.add(future)
        future.add_done_callback(
            lambda done, bound_index=index: self._completed(bound_index, done))

    def _completed(self, index: int, future) -> None:
        self._futures.discard(future)
        if future.cancelled():
            return
        error = future.exception()
        if error is not None:
            self._events.put(("error", index, error))
        else:
            self._events.put(("result", index, future.result()))

    def next_event(self) -> Tuple:
        return self._events.get()

    def close(self) -> None:
        for future in list(self._futures):
            future.cancel()
        self._pool.shutdown(wait=True)
        _build_graph.cache_clear()


class ThreadTransport(Transport):
    """Thread-pool slots: completion order, shared memory, GIL-bound."""

    name = "thread"

    def open(self, slots: int) -> _PoolSession:
        return _PoolSession(ThreadPoolExecutor, {}, slots)


class ProcessTransport(Transport):
    """The historical ``ProcessPoolExecutor`` fan-out.

    The initializer clears fork-inherited graph-cache entries so workers
    never pin stale graphs left by a previous in-process sweep.
    """

    name = "process"

    def open(self, slots: int) -> _PoolSession:
        return _PoolSession(ProcessPoolExecutor,
                            {"initializer": _reset_worker_graph_cache}, slots)


# --------------------------------------------------------------------------- #
# Framed-JSON peers (subprocess pipes and TCP sockets)
# --------------------------------------------------------------------------- #
class _SubprocessPeer:
    """One ``python -m repro.experiments.worker`` over stdio pipes."""

    def __init__(self) -> None:
        # The worker must be able to `import repro` even when the
        # coordinator runs from a source checkout that is only on
        # sys.path, not installed: prepend our package root.
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (package_root if not existing
                             else package_root + os.pathsep + existing)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, env=env,
        )
        self.reader = self.proc.stdout
        self.writer = self.proc.stdin

    def interrupt(self) -> None:
        """Unblock a thread reading from this peer (rude, thread-safe)."""
        with contextlib.suppress(OSError):
            self.proc.kill()

    def dispose(self, graceful: bool = True) -> None:
        if graceful:
            # EOF on stdin ends the worker loop; kill if it lingers.
            with contextlib.suppress(OSError, ValueError):
                self.proc.stdin.close()
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                with contextlib.suppress(OSError):
                    self.proc.kill()
                self.proc.wait()
        else:
            with contextlib.suppress(OSError):
                self.proc.kill()
            self.proc.wait()
        for stream in (self.proc.stdin, self.proc.stdout):
            if stream is not None:
                with contextlib.suppress(OSError, ValueError):
                    stream.close()


class _SocketPeer:
    """One TCP connection to a ``repro-mis worker serve`` process."""

    def __init__(self, address: Tuple[str, int],
                 connect_timeout: float) -> None:
        self.address = address
        # The dial *and* the hello frame are bounded by connect_timeout (a
        # peer that accepts but never says hello must not hang the
        # coordinator); _dial_worker lifts the timeout once the handshake
        # passed, because result frames legitimately block for as long as
        # a task computes.
        self.sock = socket.create_connection(address, timeout=connect_timeout)
        self.reader = self.sock.makefile("rb")
        self.writer = self.sock.makefile("wb")

    @property
    def origin(self) -> str:
        return f"worker {format_address(self.address[0], self.address[1])}"

    def interrupt(self) -> None:
        with contextlib.suppress(OSError):
            self.sock.shutdown(socket.SHUT_RDWR)

    def dispose(self, graceful: bool = True) -> None:
        del graceful  # closing the connection is already the graceful form
        for closer in (self.reader, self.writer, self.sock):
            with contextlib.suppress(OSError, ValueError):
                closer.close()


class _FramedSession(TransportSession):
    """Thread-per-slot session speaking the framed worker protocol.

    Each slot is one coordinator-side thread driving one peer (a local
    subprocess or a TCP connection).  Threads pull from a shared inbox —
    so a requeued task is picked up by whichever slot frees first — and
    push completion events to a shared queue.  A peer that dies mid-task
    is replaced *before* the ``lost`` event is reported, so the slot's
    fate (alive with a fresh peer, or permanently retired) is settled by
    the time the scheduler decides whether to requeue.
    """

    def __init__(self, transport: Transport, slots: int,
                 peers: Optional[List] = None) -> None:
        self._transport = transport
        self._inbox: "queue.Queue" = queue.Queue()
        self._events: "queue.Queue[Tuple]" = queue.Queue()
        self._closing = threading.Event()
        self._closed = False
        self._lock = threading.Lock()
        self._live = slots
        self._retired = [False] * slots
        self._peers: List = list(peers) if peers else [None] * slots
        self._threads = [
            threading.Thread(target=self._slot_main, args=(slot,),
                             name=f"repro-transport-slot-{slot}", daemon=True)
            for slot in range(slots)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # TransportSession surface
    # ------------------------------------------------------------------ #
    @property
    def slots(self) -> int:
        with self._lock:
            return self._live

    def submit(self, index: int, task: SweepTask) -> None:
        self._inbox.put((index, task))

    def next_event(self) -> Tuple:
        return self._events.get()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._closing.set()
        for _ in self._threads:
            self._inbox.put(_SHUTDOWN)
        # Graceful first: idle threads wake on their sentinel and shut
        # their own peer down (EOF for subprocess workers, connection
        # close for socket workers — which then loop back to accept).
        for thread in self._threads:
            thread.join(timeout=5.0)
        stuck = [thread for thread in self._threads if thread.is_alive()]
        if stuck:
            # A thread is still blocked on an in-flight result frame:
            # interrupt its peer so the read fails, then the closing flag
            # makes the thread exit without requeueing.
            with self._lock:
                peers = [peer for peer in self._peers if peer is not None]
            for peer in peers:
                peer.interrupt()
            for thread in stuck:
                thread.join()
        # Threads dispose their own peers on exit; sweep up any a retired
        # slot left registered.
        with self._lock:
            leftovers = [peer for peer in self._peers if peer is not None]
            self._peers = [None] * len(self._peers)
        for peer in leftovers:
            peer.dispose(graceful=False)

    # ------------------------------------------------------------------ #
    # Transport-specific hooks
    # ------------------------------------------------------------------ #
    def _make_peer(self, slot: int):
        """Create (or re-create) the peer for *slot*.

        Raises :class:`~repro.errors.ConfigurationError` for fatal setup
        problems (schema mismatch, not-a-worker) and any other exception
        when the slot simply cannot get a peer (worker gone) — the slot
        is then retired.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Slot thread
    # ------------------------------------------------------------------ #
    def _set_peer(self, slot: int, peer) -> None:
        with self._lock:
            self._peers[slot] = peer

    def _take_peer(self, slot: int):
        with self._lock:
            peer, self._peers[slot] = self._peers[slot], None
        return peer

    def _retire(self, slot: int) -> None:
        with self._lock:
            if not self._retired[slot]:
                self._retired[slot] = True
                self._live -= 1

    def _drop_peer(self, slot: int, graceful: bool) -> None:
        peer = self._take_peer(slot)
        if peer is not None:
            peer.dispose(graceful=graceful)

    def _replace_peer(self, slot: int, index: int) -> bool:
        """Get a fresh peer for *slot*; retire the slot if impossible.

        Returns True when the slot is usable again.  On failure the
        appropriate event for the task *index* has already been pushed.
        The retire-then-report order matters: the scheduler re-reads
        ``slots`` after every event, so a task requeued by the ``lost``
        event can never be waiting for capacity that no longer exists.
        """
        try:
            self._set_peer(slot, self._make_peer(slot))
            return True
        except ConfigurationError as error:
            self._retire(slot)
            self._events.put(("error", index, error))
            return False
        except Exception:
            self._retire(slot)
            self._events.put(("lost", index))
            return False

    def _slot_main(self, slot: int) -> None:
        from repro.experiments.worker import read_frame, write_frame

        try:
            while not self._closing.is_set():
                item = self._inbox.get()
                if item is _SHUTDOWN:
                    return
                if self._closing.is_set():
                    # Drop queued tasks during shutdown; keep draining
                    # until this thread's sentinel arrives.
                    continue
                index, task = item
                try:
                    if self._peers[slot] is None and not self._replace_peer(
                            slot, index):
                        return
                    peer = self._peers[slot]
                    try:
                        write_frame(peer.writer,
                                    {"kind": "task", "index": index,
                                     "task": task.to_json()})
                        frame = read_frame(peer.reader)
                    except (OSError, ValueError):
                        frame = None
                    if frame is None:
                        # The peer died mid-task (kill, crash, OOM,
                        # dropped connection) — or close() interrupted it.
                        self._drop_peer(slot, graceful=False)
                        if self._closing.is_set():
                            return
                        self._transport.restarts += 1
                        if not self._replace_peer(slot, index):
                            return
                        self._events.put(("lost", index))
                        continue
                    if frame.get("kind") == "error":
                        self._events.put(("error", index,
                                          _frame_error(frame, index)))
                        continue
                    self._events.put(
                        ("result", int(frame["index"]),
                         MISRunResult.from_record(frame["result"])))
                except BaseException as error:
                    # Anything unexpected — a malformed frame shape, a
                    # result record from_record rejects — must surface
                    # as an error event, never die with the thread: a
                    # dead slot with no event would leave the scheduler
                    # blocked in next_event() forever.
                    self._retire(slot)
                    self._events.put(("error", index, error))
                    return
        finally:
            self._drop_peer(slot, graceful=True)


class _SubprocessSession(_FramedSession):
    """Slots backed by local worker subprocesses (spawned lazily)."""

    def _make_peer(self, slot: int) -> _SubprocessPeer:
        from repro.experiments.worker import read_frame

        peer = _SubprocessPeer()
        try:
            _check_hello(read_frame(peer.reader),
                         f"worker subprocess (pid {peer.proc.pid})")
        except ConfigurationError:
            peer.dispose(graceful=False)
            raise
        return peer


class SubprocessTransport(Transport):
    """Crash-recovering worker subprocesses over stdio pipes."""

    name = "subprocess"

    def open(self, slots: int) -> _SubprocessSession:
        return _SubprocessSession(self, slots)


class _SocketSession(_FramedSession):
    """Slots backed by TCP connections, one per configured worker."""

    def __init__(self, transport: "SocketTransport",
                 addresses: List[Tuple[str, int]], peers: List) -> None:
        self._addresses = addresses
        self._reconnect_attempts = transport.reconnect_attempts
        self._reconnect_delay = transport.reconnect_delay
        self._connect_timeout = transport.connect_timeout
        super().__init__(transport, len(addresses), peers=peers)

    def _make_peer(self, slot: int) -> _SocketPeer:
        # Reconnect path only (initial connections are dialled eagerly by
        # SocketTransport.open): if merely the connection died the worker
        # answers again; if the worker process died the dial fails and
        # the slot is retired — its tasks fail over to the other workers.
        last_error: Optional[Exception] = None
        for attempt in range(self._reconnect_attempts):
            if attempt:
                time.sleep(self._reconnect_delay)
            try:
                return _dial_worker(self._addresses[slot],
                                    self._connect_timeout)
            except ConfigurationError:
                raise
            except OSError as error:
                last_error = error
        raise WorkerCrashError(
            f"worker {format_address(*self._addresses[slot])} is gone "
            f"({last_error}); retiring its slot"
        )


def _dial_worker(address: Tuple[str, int],
                 connect_timeout: float) -> _SocketPeer:
    """Connect to one socket worker and validate its hello frame."""
    from repro.experiments.worker import read_frame

    peer = _SocketPeer(address, connect_timeout)
    try:
        _check_hello(read_frame(peer.reader), peer.origin)
    except (ConfigurationError, OSError):
        peer.dispose(graceful=False)
        raise
    peer.sock.settimeout(None)
    return peer


class SocketTransport(Transport):
    """TCP cluster transport: one slot per dialled worker connection.

    *workers* is a ``host:port,host:port`` string or a sequence of such
    addresses — each optionally carrying a ``*K`` multiplier that dials K
    independent connections to the same (multi-slot) worker; when
    omitted, the :data:`SOCKET_WORKERS_ENV` environment variable is
    consulted at open time.  Every connection is dialled (and its schema
    handshake validated) *before* any task is dispatched, so a
    misconfigured cluster is refused up front rather than half-way into a
    grid.  Each connection keeps the independent reconnect/retire/requeue
    semantics — a multi-slot worker losing one connection fails only that
    slot over.
    """

    name = "socket"

    def __init__(self, workers: Union[None, str, Sequence[str]] = None,
                 connect_timeout: float = 10.0,
                 reconnect_attempts: int = 2,
                 reconnect_delay: float = 0.2) -> None:
        super().__init__()
        self.workers = workers
        self.connect_timeout = connect_timeout
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay

    def addresses(self) -> List[Tuple[str, int]]:
        workers = self.workers
        if workers is None:
            workers = os.environ.get(SOCKET_WORKERS_ENV) or None
        addresses = parse_worker_addresses(workers)
        if not addresses:
            raise ConfigurationError(
                "socket transport needs worker addresses: pass --workers "
                "HOST:PORT[*SLOTS],... (serve them with 'repro-mis worker "
                "serve --listen HOST:PORT --slots N') or set the "
                f"{SOCKET_WORKERS_ENV} environment variable"
            )
        return addresses

    def open(self, slots: int) -> _SocketSession:
        del slots  # capacity == number of configured workers
        addresses = self.addresses()
        peers: List[_SocketPeer] = []
        try:
            for address in addresses:
                try:
                    peers.append(_dial_worker(address, self.connect_timeout))
                except OSError as error:
                    raise ConfigurationError(
                        f"cannot reach worker {format_address(*address)} "
                        f"({error}); is 'repro-mis worker serve' running "
                        "there?"
                    ) from error
        except ConfigurationError:
            for peer in peers:
                peer.dispose(graceful=False)
            raise
        return _SocketSession(self, addresses, peers)


#: Registry of selectable transports (the CLI's ``--transport`` choices).
TRANSPORTS: Dict[str, Type[Transport]] = {
    "inline": InlineTransport,
    "thread": ThreadTransport,
    "process": ProcessTransport,
    "subprocess": SubprocessTransport,
    "socket": SocketTransport,
}


def available_transports() -> List[str]:
    """Transport names accepted by ``--transport`` / :func:`resolve_transport`."""
    return sorted(TRANSPORTS)


def resolve_transport(transport, jobs: int = 1) -> Transport:
    """Turn a transport selector into a transport object.

    ``None`` preserves the historical ``jobs``-driven choice — inline for
    one worker, the process pool otherwise.  A string is looked up in
    :data:`TRANSPORTS`; anything else is assumed to already be a
    transport object and returned as-is.
    """
    if transport is None:
        return InlineTransport() if jobs == 1 else ProcessTransport()
    if isinstance(transport, str):
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport '{transport}'; known: "
                f"{available_transports()}"
            )
        return TRANSPORTS[transport]()
    return transport
