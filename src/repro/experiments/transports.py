"""Transports: how task frames reach execution slots.

The execution layer is split into a **scheduler** (:mod:`repro.experiments
.schedulers` — task ordering, retry/requeue, crash-loop accounting) and a
**transport** (this module — moving :class:`~repro.experiments.executor
.SweepTask` frames to wherever execution happens and moving compact
results back).  A transport knows nothing about ordering or retry policy;
it reports what happened to each submitted task and lets the scheduler
decide what to do about it.

A transport is opened into a :class:`TransportSession` exposing:

``slots``
    How many executions may be in flight at once (may *shrink* when a
    remote worker is permanently lost).
``submit(index, task)``
    Dispatch one task into a free slot.  The scheduler guarantees it
    never has more than ``slots`` tasks in flight.
``next_event()``
    Block until something happens and return one of::

        ("result", index, MISRunResult)   # task finished
        ("error",  index, exception)      # task raised / setup failed
        ("lost",   index)                 # slot died mid-task; requeue it
``close()``
    Cancel queued work and shut every slot down.  Idempotent, safe to
    call with executions in flight.

Transports
----------

``inline`` (:class:`InlineTransport`)
    Execute in the coordinator process, synchronously.  Zero pickling;
    an unpicklable monkeypatched algorithm adapter still works, which is
    load-bearing for several tests.
``thread`` (:class:`ThreadTransport`)
    A ``ThreadPoolExecutor``: shared memory, GIL-bound, the cheapest way
    to exercise consumers against out-of-order arrival.
``process`` (:class:`ProcessTransport`)
    The historical ``ProcessPoolExecutor`` fan-out, including the worker
    initializer that clears fork-inherited graph-cache entries.
``subprocess`` (:class:`SubprocessTransport`)
    One ``python -m repro.experiments.worker`` per slot, speaking
    length-prefixed JSON over stdio pipes.  A worker that dies mid-task
    is respawned and the death reported as ``lost`` — the scheduler
    requeues the task and the sweep completes byte-identically.
``socket`` (:class:`SocketTransport`)
    The same framed-JSON worker protocol served over TCP: workers run
    ``repro-mis worker serve --listen HOST:PORT [--slots N]`` (any
    host), the coordinator dials each address and gets one slot per
    connection.  A ``host:port*K`` entry in the worker list dials K
    independent connections to the same worker — the way to use a
    worker serving ``--slots K``, whose slot threads share one graph
    cache.  The handshake carries :data:`~repro.experiments.store
    .CODE_SCHEMA_VERSION`, so a coordinator refuses workers running
    incompatible code; a dropped connection is requeued exactly like a
    killed subprocess (with one reconnect attempt in case only the
    connection — not the worker — died).

Every coordinator↔worker conversation starts with the worker's hello
frame (``{"kind": "hello", "schema": CODE_SCHEMA_VERSION}``); frames are
4-byte big-endian length prefixes followed by UTF-8 JSON (see
:mod:`repro.experiments.worker`).

Windowed, self-clocking pipelining
----------------------------------

The framed transports (``subprocess`` and ``socket``) keep a **sliding
window** of sequence-numbered task frames in flight per peer instead of
strictly alternating one frame and one reply.  A worker serves each
connection sequentially and replies in send order, so the coordinator
tracks its in-flight frames in a deque and matches every reply against
the head — no reordering machinery, just TCP-Reno-style self-clocking:
each acked result frees window space, which the slot thread refills from
the shared inbox before blocking on the next reply.

The window is adaptive (AIMD): it starts at 1, grows by one frame per
acked result up to the configured cap (``window=N``, or
``window="adaptive"`` for a cap of :data:`ADAPTIVE_WINDOW_CAP`), and is
halved on a reconnect or a slow ack, so it self-tunes to worker
capacity.  ``max_batch=N`` additionally groups up to N tiny tasks into
one ``tasks`` frame to amortise framing and JSON overhead on small-task
grids.  The worker's hello advertises these capabilities in its
``features`` list; a peer that advertises neither is driven exactly like
before — window 1, single-task frames.

What counts as a "slow" ack is **self-calibrating**: every connection
carries a Jacobson/Karels RTT estimator (:mod:`repro.experiments
.telemetry`) fed one send→ack sample per frame, and by default an ack is
slow when the blocked read exceeded the estimator's ``srtt + 4·rttvar``
timeout analogue (only once the estimate is primed — before that nothing
is ever "slow").  Passing an explicit ``ack_timeout`` overrides the
calibration with the fixed legacy threshold — including ``0.0``, which
still pins the window at 1.  The same estimator paces the batch flush: a
partial batch held behind in-flight frames waits at most one
deviation-padded RTT for acks to free more window, then flushes.

Each connection also keeps a :class:`~repro.experiments.telemetry
.ConnectionStats` counter block (frames, acks, batches, requeues,
reconnects, bytes, window, srtt), surfaced per worker through
``Transport.telemetry()`` → the sweep result, ``--progress`` and the
benchmark matrix.

None of this can touch a result byte: seeds are fixed at planning time,
telemetry is observational, the RTT estimate only retunes *timing*, and
a connection lost mid-window requeues **every** in-flight frame on that
connection exactly like the historical single-frame loss.
"""

from __future__ import annotations

import collections
import contextlib
import os
import queue
import select
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.errors import ConfigurationError, WorkerCrashError
from repro.experiments.executor import (_build_graph,
                                        _reset_worker_graph_cache, SweepTask,
                                        run_task)
from repro.experiments.harness import MISRunResult
from repro.experiments.store import CODE_SCHEMA_VERSION
from repro.experiments.telemetry import ConnectionStats, aggregate_by_worker

#: Environment variable naming a directory of fault-injection markers for
#: framed-protocol workers (see :func:`repro.experiments.worker.maybe_crash`).
#: Test-only: lets the crash-recovery suites kill a worker mid-task
#: deterministically, over pipes and over TCP alike.
WORKER_FAULT_DIR_ENV = "REPRO_WORKER_FAULT_DIR"

#: Environment variable holding default socket worker addresses
#: (``host:port,host:port``) for ``backend="socket"`` when no explicit
#: worker list was given (CLI ``--workers`` takes precedence).
SOCKET_WORKERS_ENV = "REPRO_WORKERS"

#: Sentinel telling a slot thread to exit.
_SHUTDOWN = object()

#: Window selector meaning "start at 1 and self-tune via AIMD".
ADAPTIVE_WINDOW = "adaptive"

#: Cap the adaptive window grows towards.  64 frames of compact JSON is
#: far beyond the bandwidth-delay product of any realistic link here;
#: the cap exists so a pathological worker can never make the
#: coordinator queue an entire grid behind one connection.
ADAPTIVE_WINDOW_CAP = 64


def resolve_window(window) -> int:
    """Normalise a window selector into the integer cap it means.

    Accepts a positive integer (possibly as a CLI string) or
    :data:`ADAPTIVE_WINDOW`; the adaptive selector resolves to
    :data:`ADAPTIVE_WINDOW_CAP`.  The cap only bounds *pipelining depth*
    — the window always starts at 1 and grows per acked result, so any
    cap ≥ 1 yields byte-identical sweep results.
    """
    if window == ADAPTIVE_WINDOW:
        return ADAPTIVE_WINDOW_CAP
    if isinstance(window, str) and window.isdigit():
        window = int(window)
    if isinstance(window, bool) or not isinstance(window, int) or window < 1:
        raise ConfigurationError(
            f"invalid window {window!r}: need a positive integer (the "
            "maximum task frames kept in flight per worker connection) or "
            f"'{ADAPTIVE_WINDOW}' (start at 1, grow to "
            f"{ADAPTIVE_WINDOW_CAP} as results are acked)"
        )
    return window


def resolve_max_batch(max_batch) -> int:
    """Normalise a max-batch selector (int or CLI string) to a positive int."""
    if isinstance(max_batch, str) and max_batch.isdigit():
        max_batch = int(max_batch)
    if isinstance(max_batch, bool) or not isinstance(max_batch, int) \
            or max_batch < 1:
        raise ConfigurationError(
            f"invalid max_batch {max_batch!r}: need a positive integer "
            "(tasks grouped into one 'tasks' frame; 1 disables batching)"
        )
    return max_batch


def split_host_port(text: str, allow_ephemeral: bool = False) -> Tuple[str, int]:
    """Parse ``host:port`` or bracketed ``[ipv6]:port`` into ``(host, port)``.

    The bracketed form is how every other network tool spells an IPv6
    endpoint (``[::1]:8750``); the brackets are stripped so the host can
    go straight into :func:`socket.create_connection` /
    :func:`socket.create_server`.  The port must be in 1–65535 —
    out-of-range values used to parse here and fail much later with
    confusing OS errors; *allow_ephemeral* additionally admits port 0,
    which only makes sense for a listener asking the OS to pick a port.
    Raises :class:`ValueError` on anything malformed — callers wrap it in
    their own :class:`~repro.errors.ConfigurationError` with
    flag-specific advice.
    """
    if text.startswith("["):
        host, bracket, port_text = text.partition("]:")
        host = host[1:]
        if not bracket or not host or not port_text.isdigit():
            raise ValueError(
                "expected [IPV6]:PORT with a numeric port (e.g. [::1]:8750)")
    else:
        host, separator, port_text = text.rpartition(":")
        if not separator or not host or not port_text.isdigit():
            raise ValueError("expected HOST:PORT with a numeric port")
    port = int(port_text)
    minimum = 0 if allow_ephemeral else 1
    if not minimum <= port <= 65535:
        raise ValueError(
            f"port {port} is out of range (1-65535"
            + (", or 0 for an OS-assigned ephemeral port)"
               if allow_ephemeral else ")"))
    return host, port


def format_address(host: str, port: int) -> str:
    """Render ``(host, port)`` the way the parsers accept it back.

    IPv6 hosts get the ``[host]:port`` brackets so log lines can be
    copy-pasted straight into ``--workers``/``--listen``.
    """
    return f"[{host}]:{port}" if ":" in host else f"{host}:{port}"


def parse_worker_addresses(
    workers: Union[None, str, Sequence[str]],
) -> List[Tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (or a sequence) into address pairs.

    Each entry may carry a ``*K`` slot multiplier — ``host:port*4`` dials
    four independent connections to the same worker, which is how a
    multi-slot worker (``repro-mis worker serve --slots 4``) donates all
    of its slots.  IPv6 hosts use the bracketed form: ``[::1]:8750*2``.
    The returned list has one ``(host, port)`` pair per *connection*, so
    downstream code (one transport slot per pair) needs no multiplier
    awareness.
    """
    if workers is None:
        return []
    if isinstance(workers, str):
        parts = [part.strip() for part in workers.split(",") if part.strip()]
    else:
        parts = [str(part).strip() for part in workers if str(part).strip()]
    addresses: List[Tuple[str, int]] = []
    for part in parts:
        address_text, star, slots_text = part.partition("*")
        if star and not (slots_text.isdigit() and int(slots_text) >= 1):
            raise ConfigurationError(
                f"invalid worker address '{part}': the slot multiplier "
                "after '*' must be a positive integer (e.g. host:8750*4 "
                "for four connections to one multi-slot worker)"
            )
        try:
            host, port = split_host_port(address_text)
        except ValueError as error:
            raise ConfigurationError(
                f"invalid worker address '{part}': {error} — --workers "
                "takes HOST:PORT or [IPV6]:PORT, optionally with a "
                "'*SLOTS' multiplier (e.g. 127.0.0.1:8750, [::1]:8750, "
                "hostA:8750*4)"
            ) from None
        addresses.extend([(host, port)] * (int(slots_text) if star else 1))
    return addresses


def _check_hello(frame: Optional[Dict], origin: str) -> None:
    """Validate a worker's hello frame (schema handshake).

    The schema version is the same one that keys the results store: a
    worker built from different code could return metrics that *parse*
    but mean something else, so a mismatch is refused outright rather
    than detected later as subtly wrong numbers.
    """
    if frame is None or frame.get("kind") != "hello":
        raise ConfigurationError(
            f"{origin}: peer did not send a hello frame — not a repro-mis "
            "worker (or one predating the handshake)"
        )
    if frame.get("schema") != CODE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"{origin}: worker speaks code schema {frame.get('schema')!r} "
            f"but this coordinator speaks {CODE_SCHEMA_VERSION}; refusing "
            "the worker — mixed schemas would silently mix incomparable "
            "metrics"
        )


def _frame_error(frame: Dict, index: int) -> Exception:
    """Turn a worker's error frame into the exception the caller raises."""
    if frame.get("configuration"):
        # Re-raise configuration mistakes as themselves so they render
        # identically on every transport (the CLI turns ConfigurationError
        # into a clean `error: ...` line).
        return ConfigurationError(frame.get("message",
                                            "task failed in worker"))
    return WorkerCrashError(
        f"task {frame.get('index', index)} failed in "
        f"worker:\n{frame.get('error', '<no traceback>')}"
    )


def _reply_ready(peer) -> bool:
    """Whether another reply can start being read without blocking.

    Checks the kernel buffer under the peer's reader; bytes the buffered
    reader already consumed ahead of the last frame are invisible here,
    which only costs a drain opportunity (they are picked up by the next
    blocking read), never correctness or liveness.
    """
    try:
        return bool(select.select([peer.reader], [], [], 0)[0])
    except (OSError, ValueError):
        return False


def _reply_within(peer, timeout: float) -> bool:
    """Whether a reply starts arriving within *timeout* seconds.

    Same kernel-buffer caveat as :func:`_reply_ready`; a select error
    reports "ready" so the blocking read path observes (and classifies)
    the failure instead of this probe swallowing it.
    """
    try:
        return bool(select.select([peer.reader], [], [],
                                  max(0.0, timeout))[0])
    except (OSError, ValueError):
        return True


class Transport:
    """Base transport: configuration + cumulative session statistics."""

    #: Registry name ("inline", "thread", ...), set by subclasses.
    name = "inline"

    def __init__(self) -> None:
        # Slot threads report restarts and window growth concurrently; a
        # bare `restarts += 1` is a read-modify-write that loses
        # increments under contention, so both counters live behind one
        # lock and are only written through the methods below.
        self._stats_lock = threading.Lock()
        # No slot thread exists yet, so these two pre-thread writes are the
        # one place the lock is provably unnecessary.
        self._restarts = 0  # repro-lint: disable=RPL004
        self._peak_window = 1  # repro-lint: disable=RPL004
        #: Per-connection counter blocks, registered by framed sessions.
        #: The list itself is guarded by the lock; each entry is written
        #: by exactly one slot thread (see ConnectionStats).
        self._connections: List[ConnectionStats] = []

    @property
    def restarts(self) -> int:
        """Cumulative count of slot peers replaced after dying mid-task
        (what the crash-recovery tests assert on)."""
        with self._stats_lock:
            return self._restarts

    def count_restart(self) -> None:
        with self._stats_lock:
            self._restarts += 1

    @property
    def peak_window(self) -> int:
        """Largest per-connection window any session of this transport
        reached — observability for the AIMD self-tuning."""
        with self._stats_lock:
            return self._peak_window

    def note_window(self, window: int) -> None:
        with self._stats_lock:
            if window > self._peak_window:
                self._peak_window = window

    def register_connection(self, stats: ConnectionStats) -> None:
        """Track one connection's counters for :meth:`telemetry`."""
        with self._stats_lock:
            self._connections.append(stats)

    def telemetry(self) -> Dict:
        """Machine-readable snapshot of everything this transport did.

        Cumulative across every session the transport opened (successive
        sweeps on one backend keep appending connections).  Per-frame
        counters and RTT estimates only exist for the framed transports;
        for the others this reports the transport-level basics with an
        empty connection list.
        """
        with self._stats_lock:
            tracked = list(self._connections)
        connections = [stats.snapshot() for stats in tracked]
        return {
            "transport": self.name,
            "restarts": self.restarts,
            "peak_window": self.peak_window,
            "connections": connections,
            "workers": aggregate_by_worker(connections),
        }

    def open(self, slots: int) -> "TransportSession":
        raise NotImplementedError


class TransportSession:
    """Protocol documented at module level; concrete sessions subclass."""

    slots: int = 0

    def submit(self, index: int, task: SweepTask) -> None:
        raise NotImplementedError

    def next_event(self) -> Tuple:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# Inline
# --------------------------------------------------------------------------- #
class _InlineSession(TransportSession):
    """One synchronous in-process slot: submit stores, next_event runs."""

    slots = 1

    def __init__(self) -> None:
        self._queued: Optional[Tuple[int, SweepTask]] = None

    def submit(self, index: int, task: SweepTask) -> None:
        self._queued = (index, task)

    def next_event(self) -> Tuple:
        index, task = self._queued  # type: ignore[misc]
        self._queued = None
        try:
            return ("result", index, run_task(task))
        except Exception as error:
            # The exception object keeps its traceback; the scheduler
            # re-raises it with the original frames intact.
            return ("error", index, error)

    def close(self) -> None:
        # Don't pin graphs in the coordinator process beyond the sweep.
        _build_graph.cache_clear()


class InlineTransport(Transport):
    """In-process execution in submission order (no pool, no pickling)."""

    name = "inline"

    def open(self, slots: int) -> _InlineSession:
        del slots  # inline is always exactly one slot
        return _InlineSession()


# --------------------------------------------------------------------------- #
# concurrent.futures pools (thread / process)
# --------------------------------------------------------------------------- #
class _PoolSession(TransportSession):
    """Shared pool session: futures feed a completion-event queue.

    The scheduler keeps at most ``slots`` tasks in flight, so the pool's
    internal queue never grows beyond one task per worker — which is
    exactly what gives the scheduler, not the pool, control of dispatch
    order.
    """

    def __init__(self, pool_cls: Type, pool_kwargs: Dict, slots: int) -> None:
        self.slots = slots
        self._pool = pool_cls(max_workers=slots, **pool_kwargs)
        self._events: "queue.Queue[Tuple]" = queue.Queue()
        self._futures: set = set()

    def submit(self, index: int, task: SweepTask) -> None:
        future = self._pool.submit(run_task, task)
        self._futures.add(future)
        future.add_done_callback(
            lambda done, bound_index=index: self._completed(bound_index, done))

    def _completed(self, index: int, future) -> None:
        self._futures.discard(future)
        if future.cancelled():
            return
        error = future.exception()
        if error is not None:
            self._events.put(("error", index, error))
        else:
            self._events.put(("result", index, future.result()))

    def next_event(self) -> Tuple:
        return self._events.get()

    def close(self) -> None:
        for future in list(self._futures):
            future.cancel()
        self._pool.shutdown(wait=True)
        _build_graph.cache_clear()


class ThreadTransport(Transport):
    """Thread-pool slots: completion order, shared memory, GIL-bound."""

    name = "thread"

    def open(self, slots: int) -> _PoolSession:
        return _PoolSession(ThreadPoolExecutor, {}, slots)


class ProcessTransport(Transport):
    """The historical ``ProcessPoolExecutor`` fan-out.

    The initializer clears fork-inherited graph-cache entries so workers
    never pin stale graphs left by a previous in-process sweep.
    """

    name = "process"

    def open(self, slots: int) -> _PoolSession:
        return _PoolSession(ProcessPoolExecutor,
                            {"initializer": _reset_worker_graph_cache}, slots)


# --------------------------------------------------------------------------- #
# Framed-JSON peers (subprocess pipes and TCP sockets)
# --------------------------------------------------------------------------- #
class _SubprocessPeer:
    """One ``python -m repro.experiments.worker`` over stdio pipes."""

    def __init__(self) -> None:
        #: Capabilities from the worker's hello frame (set post-handshake).
        self.features: Tuple[str, ...] = ()
        #: Pid of the serving process, from the hello (set post-handshake).
        self.pid: Optional[int] = None
        # The worker must be able to `import repro` even when the
        # coordinator runs from a source checkout that is only on
        # sys.path, not installed: prepend our package root.
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (package_root if not existing
                             else package_root + os.pathsep + existing)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, env=env,
        )
        self.reader = self.proc.stdout
        self.writer = self.proc.stdin

    def interrupt(self) -> None:
        """Unblock a thread reading from this peer (rude, thread-safe)."""
        with contextlib.suppress(OSError):
            self.proc.kill()

    def dispose(self, graceful: bool = True) -> None:
        if graceful:
            # EOF on stdin ends the worker loop; kill if it lingers.
            with contextlib.suppress(OSError, ValueError):
                self.proc.stdin.close()
            try:
                self.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                with contextlib.suppress(OSError):
                    self.proc.kill()
                self.proc.wait()
        else:
            with contextlib.suppress(OSError):
                self.proc.kill()
            self.proc.wait()
        for stream in (self.proc.stdin, self.proc.stdout):
            if stream is not None:
                with contextlib.suppress(OSError, ValueError):
                    stream.close()


class _SocketPeer:
    """One TCP connection to a ``repro-mis worker serve`` process."""

    def __init__(self, address: Tuple[str, int],
                 connect_timeout: float) -> None:
        self.address = address
        #: Capabilities from the worker's hello frame (set post-handshake).
        self.features: Tuple[str, ...] = ()
        #: Pid of the task-executing process, from the hello frame (set
        #: post-handshake; a slot subprocess for process-backed workers).
        self.pid: Optional[int] = None
        # The dial *and* the hello frame are bounded by connect_timeout (a
        # peer that accepts but never says hello must not hang the
        # coordinator); _dial_worker lifts the timeout once the handshake
        # passed, because result frames legitimately block for as long as
        # a task computes.
        self.sock = socket.create_connection(address, timeout=connect_timeout)
        # Frames are small writes fired back-to-back (a windowed burst,
        # batched replies): without TCP_NODELAY, Nagle holds the second
        # write until the peer's delayed ACK (~40ms) — which serialised
        # the pipelined protocol right back to stop-and-wait pacing.
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.reader = self.sock.makefile("rb")
        self.writer = self.sock.makefile("wb")

    @property
    def origin(self) -> str:
        return f"worker {format_address(self.address[0], self.address[1])}"

    def interrupt(self) -> None:
        with contextlib.suppress(OSError):
            self.sock.shutdown(socket.SHUT_RDWR)

    def dispose(self, graceful: bool = True) -> None:
        del graceful  # closing the connection is already the graceful form
        for closer in (self.reader, self.writer, self.sock):
            with contextlib.suppress(OSError, ValueError):
                closer.close()


class _FramedSession(TransportSession):
    """Thread-per-slot session speaking the framed worker protocol.

    Each slot is one coordinator-side thread driving one peer (a local
    subprocess or a TCP connection).  Threads pull from a shared inbox —
    so a requeued task is picked up by whichever slot frees first — and
    push completion events to a shared queue.  A peer that dies mid-task
    is replaced *before* the ``lost`` events are reported, so the slot's
    fate (alive with a fresh peer, or permanently retired) is settled by
    the time the scheduler decides whether to requeue.

    Each slot keeps a **sliding window** of sequence-numbered frames in
    flight (see the module docstring): ``slots`` reports the *sum of the
    live windows*, so the scheduler — which re-reads ``slots`` every
    iteration — feeds the session exactly as much work as the windows can
    absorb without any scheduler-side changes.  Workers reply in send
    order per connection, so each slot matches replies against the head
    of its in-flight deque; a peer that advertises no ``window``
    capability in its hello is pinned to window 1 (and no ``batch``
    capability means single-task frames), which is byte-for-byte the
    pre-windowing protocol.
    """

    def __init__(self, transport: Transport, slots: int,
                 peers: Optional[List] = None, window=1, max_batch=1,
                 ack_timeout: Optional[float] = None,
                 frame_latency: float = 0.0) -> None:
        self._transport = transport
        self._window_cap = resolve_window(window)
        self._max_batch = resolve_max_batch(max_batch)
        self._ack_timeout = ack_timeout
        self._frame_latency = frame_latency
        #: How long close() waits for a thread that cannot be interrupted
        #: (mid-dial); socket sessions widen this to cover connect_timeout.
        self._shutdown_grace = 5.0
        self._inbox: "queue.Queue" = queue.Queue()
        self._events: "queue.Queue[Tuple]" = queue.Queue()
        self._closing = threading.Event()
        self._closed = False
        self._lock = threading.Lock()
        self._live = slots
        self._retired = [False] * slots
        #: Per-slot congestion window / cap / batch capability (AIMD
        #: state, guarded by ``_lock``; the in-flight deque itself is
        #: private to each slot thread).
        self._cwnd = [1] * slots
        self._caps = [self._window_cap] * slots
        self._batch_ok = [False] * slots
        #: Per-slot telemetry: counters + the RTT estimator that
        #: self-calibrates the slow-ack threshold and batch-flush hold.
        #: Each block is written only by its own slot thread.
        self._stats = [ConnectionStats(self._slot_label(slot), slot)
                       for slot in range(slots)]
        for stats in self._stats:
            transport.register_connection(stats)
        self._peers: List = list(peers) if peers else [None] * slots
        for slot, peer in enumerate(self._peers):
            if peer is not None:
                self._apply_peer_capabilities(slot, peer)
        self._threads = [
            threading.Thread(target=self._slot_main, args=(slot,),
                             name=f"repro-transport-slot-{slot}", daemon=True)
            for slot in range(slots)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # TransportSession surface
    # ------------------------------------------------------------------ #
    @property
    def slots(self) -> int:
        # Capacity is the sum of the live windows, not the connection
        # count: as windows grow the scheduler pipelines more frames into
        # the same connections.
        with self._lock:
            return sum(self._cwnd[slot] for slot in range(len(self._retired))
                       if not self._retired[slot])

    def submit(self, index: int, task: SweepTask) -> None:
        self._inbox.put((index, task))
        # A task submitted while (or just before) the last live slot
        # retired would sit in the inbox forever with the scheduler
        # blocked in next_event(); report it lost so the scheduler
        # requeues it, re-reads zero capacity and raises cleanly.
        self._drain_inbox_if_dead()

    def next_event(self) -> Tuple:
        return self._events.get()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._closing.set()
        for _ in self._threads:
            self._inbox.put(_SHUTDOWN)
        # Graceful first: idle threads wake on their sentinel and shut
        # their own peer down (EOF for subprocess workers, connection
        # close for socket workers — which then loop back to accept).
        for thread in self._threads:
            thread.join(timeout=5.0)
        stuck = [thread for thread in self._threads if thread.is_alive()]
        if stuck:
            # A thread is still blocked on an in-flight result frame:
            # interrupt its peer so the read fails, then the closing flag
            # makes the thread exit without requeueing.  A thread with no
            # peer to interrupt is mid-reconnect: _make_peer aborts on
            # the closing flag between attempts, so the only uninterruptible
            # wait left is a single in-progress dial — bound the join by
            # that instead of hanging forever (the threads are daemons).
            with self._lock:
                peers = [peer for peer in self._peers if peer is not None]
            for peer in peers:
                peer.interrupt()
            deadline = time.monotonic() + self._shutdown_grace
            for thread in stuck:
                thread.join(timeout=max(0.0, deadline - time.monotonic()))
        # Threads dispose their own peers on exit; sweep up any a retired
        # slot left registered.
        with self._lock:
            leftovers = [peer for peer in self._peers if peer is not None]
            self._peers = [None] * len(self._peers)
        for peer in leftovers:
            peer.dispose(graceful=False)

    # ------------------------------------------------------------------ #
    # Transport-specific hooks
    # ------------------------------------------------------------------ #
    def _slot_label(self, slot: int) -> str:
        """Telemetry label for *slot*'s connection (worker address when
        there is one; sessions without addresses group per transport)."""
        return f"{self._transport.name}"

    def _make_peer(self, slot: int):
        """Create (or re-create) the peer for *slot*.

        Raises :class:`~repro.errors.ConfigurationError` for fatal setup
        problems (schema mismatch, not-a-worker) and any other exception
        when the slot simply cannot get a peer (worker gone) — the slot
        is then retired.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Slot thread
    # ------------------------------------------------------------------ #
    def _set_peer(self, slot: int, peer) -> None:
        with self._lock:
            self._peers[slot] = peer

    def _take_peer(self, slot: int):
        with self._lock:
            peer, self._peers[slot] = self._peers[slot], None
        return peer

    def _retire(self, slot: int) -> None:
        with self._lock:
            if not self._retired[slot]:
                self._retired[slot] = True
                self._live -= 1
        self._drain_inbox_if_dead()

    def _drain_inbox_if_dead(self) -> None:
        """Report queued-but-unpulled tasks lost once no thread can pull.

        Only fires when every slot has retired (never during shutdown —
        close() discards queued work by design).  Shutdown sentinels are
        put back for the threads they belong to.
        """
        with self._lock:
            dead = self._live == 0
        if not dead or self._closing.is_set():
            return
        while True:
            try:
                item = self._inbox.get(block=False)
            except queue.Empty:
                return
            if item is _SHUTDOWN:
                self._inbox.put(item)
                return
            self._events.put(("lost", item[0]))

    def _drop_peer(self, slot: int, graceful: bool) -> None:
        peer = self._take_peer(slot)
        if peer is not None:
            peer.dispose(graceful=graceful)

    def _apply_peer_capabilities(self, slot: int, peer) -> None:
        """Clamp the slot's AIMD state to what the peer's hello offered.

        A peer that never advertised ``window`` gets the historical
        strict request/reply alternation (cap 1); one that never
        advertised ``batch`` gets single-task frames only.
        """
        features = getattr(peer, "features", ())
        with self._lock:
            self._caps[slot] = (self._window_cap if "window" in features
                                else 1)
            self._cwnd[slot] = min(self._cwnd[slot], self._caps[slot])
            self._batch_ok[slot] = (self._max_batch > 1
                                    and "batch" in features)
            self._stats[slot].note_window(self._cwnd[slot])
            # The hello's pid is whatever process executes this slot's
            # tasks (a slot subprocess for process-backed workers), so
            # telemetry rows name the actual worker process.
            self._stats[slot].note_peer(getattr(peer, "pid", None))

    def _slow_threshold(self, slot: int) -> Optional[float]:
        """The blocked-read duration that reads as congestion for *slot*.

        An explicit ``ack_timeout`` (including ``0.0``, the legacy pin
        to window 1) always wins; otherwise the slot's RTT estimator
        supplies a self-calibrated threshold once primed — and until
        then nothing is slow, so a connection's cold start can never
        halve its own window.
        """
        if self._ack_timeout is not None:
            return self._ack_timeout
        return self._stats[slot].rtt.slow_threshold()

    def _on_ack(self, slot: int, slow: bool = False,
                rtt_sample: Optional[float] = None) -> None:
        """AIMD update for one acked frame: additive increase per ack,
        halve when the ack was slower than the slow-ack threshold (the
        worker — or the link — is saturated, so stop piling frames onto
        it).  *rtt_sample* is the frame's send→ack round trip, fed to
        the slot's estimator."""
        stats = self._stats[slot]
        if rtt_sample is not None:
            stats.note_ack(rtt_sample, slow)
        with self._lock:
            if slow:
                self._cwnd[slot] = max(1, self._cwnd[slot] // 2)
            elif self._cwnd[slot] < self._caps[slot]:
                self._cwnd[slot] += 1
                self._transport.note_window(self._cwnd[slot])
            stats.note_window(self._cwnd[slot])

    def _replace_peer_many(self, slot: int, indices: List[int]) -> bool:
        """Get a fresh peer for *slot*; retire the slot if impossible.

        Returns True when the slot is usable again.  On failure an event
        for every in-flight task in *indices* has already been pushed.
        The retire-then-report order matters: the scheduler re-reads
        ``slots`` after every event, so a task requeued by a ``lost``
        event can never be waiting for capacity that no longer exists.
        """
        try:
            peer = self._make_peer(slot)
        except ConfigurationError as error:
            self._retire(slot)
            for index in indices[1:]:
                self._events.put(("lost", index))
            self._events.put(("error", indices[0] if indices else -1, error))
            return False
        except Exception:
            self._retire(slot)
            for index in indices:
                self._events.put(("lost", index))
            return False
        self._set_peer(slot, peer)
        self._apply_peer_capabilities(slot, peer)
        return True

    def _handle_peer_death(self, slot: int, in_flight) -> bool:
        """The peer died mid-window (kill, crash, OOM, dropped
        connection) — or close() interrupted it.

        Replaces the peer (halving the window: the AIMD multiplicative
        decrease), then reports **every** in-flight frame lost so the
        scheduler requeues all of them — the multi-frame generalisation
        of the historical single-frame loss.  Returns False when the
        thread should exit (shutdown, or the slot retired); the caller
        must clear its in-flight deque either way.
        """
        self._drop_peer(slot, graceful=False)
        if self._closing.is_set():
            return False
        self._transport.count_restart()
        with self._lock:
            self._cwnd[slot] = max(1, self._cwnd[slot] // 2)
            self._stats[slot].note_window(self._cwnd[slot])
        indices = [entry[1] for entry in in_flight]
        self._stats[slot].note_death(len(indices))
        if not self._replace_peer_many(slot, indices):
            return False
        for index in indices:
            self._events.put(("lost", index))
        return True

    def _abandon_pending(self, pending) -> None:
        """A slot exiting with coalesced-but-unsent tasks reports each
        lost, so the scheduler can requeue them (or conclude no slot is
        left) instead of blocking forever on events that never come.
        """
        for index, _task in pending:
            self._events.put(("lost", index))
        pending.clear()

    def _write_entries(self, slot: int, entries, write_frame) -> None:
        """Send ``(seq, index, task, sent_at)`` entries, batching where
        allowed, and account frames/tasks/bytes to the slot's telemetry."""
        peer = self._peers[slot]
        stats = self._stats[slot]
        batch = self._max_batch if self._batch_ok[slot] else 1
        for start in range(0, len(entries), batch):
            group = entries[start:start + batch]
            if self._frame_latency > 0.0:
                # Benchmark-only simulated link latency, paid per frame
                # written — which is exactly what windowing amortises.
                time.sleep(self._frame_latency)
            if len(group) == 1:
                seq, index, task, _sent_at = group[0]
                nbytes = write_frame(peer.writer,
                                     {"kind": "task", "seq": seq,
                                      "index": index,
                                      "task": task.to_json()})
            else:
                nbytes = write_frame(peer.writer, {
                    "kind": "tasks",
                    "items": [{"seq": seq, "index": index,
                               "task": task.to_json()}
                              for seq, index, task, _sent_at in group],
                })
            stats.note_send(len(group), nbytes or 0)

    def _check_reply(self, frame: Dict, seq: int, index: int) -> None:
        """Validate one reply frame against the head of the window."""
        kind = frame.get("kind")
        if kind not in ("result", "error"):
            raise ValueError(
                f"unexpected {kind!r} frame from worker while awaiting a "
                "reply")
        if "seq" in frame and int(frame["seq"]) != seq:
            raise ValueError(
                f"out-of-order reply from worker: expected seq {seq}, got "
                f"{frame['seq']} — per-connection in-flight tracking "
                "desynchronised")
        if int(frame.get("index", index)) != index:
            raise ValueError(
                f"reply for task index {frame.get('index')} arrived while "
                f"task {index} was at the head of the window")

    def _slot_main(self, slot: int) -> None:
        from repro.experiments.worker import read_frame, write_frame

        # (seq, index, task, sent_at) in send order; the worker replies
        # in order, so every reply is matched against the head, and
        # send→ack of the head frame is the slot's RTT sample.
        in_flight: "collections.deque" = collections.deque()
        # Set when the batch-flush hold expired: the next send pass
        # flushes the partial batch instead of holding it further.
        force_flush = False
        # (index, task) pulled from the inbox but not yet written — held
        # back (coalesced) while the peer has plenty of backlog, so tiny
        # tasks ride one batched frame instead of paying per-frame cost
        # each.  Never sent to a dead peer: if the peer dies first, the
        # replacement gets them, and if the slot retires they are
        # reported lost below.
        pending: List = []
        next_seq = 0
        try:
            while not self._closing.is_set():
                try:
                    # -------------------------------------------- fill
                    # Top the window up from the shared inbox.  Only
                    # block indefinitely when nothing at all is
                    # outstanding.  With batching available, an empty
                    # inbox is usually just the scheduler mid-top-up —
                    # the slot thread wins that race every time
                    # otherwise — so cork for ~1ms to let replacement
                    # submissions land on this frame instead of each
                    # paying for its own.
                    while True:
                        with self._lock:
                            budget = (self._cwnd[slot] - len(in_flight)
                                      - len(pending))
                        if budget <= 0:
                            break
                        try:
                            if not in_flight and not pending:
                                item = self._inbox.get()
                            elif (self._batch_ok[slot]
                                    and len(pending) < self._max_batch):
                                item = self._inbox.get(timeout=0.001)
                            else:
                                item = self._inbox.get(block=False)
                        except queue.Empty:
                            break
                        if item is _SHUTDOWN:
                            return
                        if self._closing.is_set():
                            # Drop queued tasks during shutdown; keep
                            # draining until this thread's sentinel
                            # arrives.
                            continue
                        pending.append(item)
                    # -------------------------------------------- send
                    # Flush when the batch is full or the peer has run
                    # dry.  While frames are still in flight, holding
                    # the batch back — even with the window full — costs
                    # nothing: the peer is busy, and every ack that
                    # arrives meanwhile frees window for more tasks to
                    # ride this frame, so the batch size self-clocks to
                    # the ack rate.  (Without batching, batch_cap is 1
                    # and every pulled task is sent at once — the pure
                    # windowed pipeline.)
                    batch_cap = (self._max_batch if self._batch_ok[slot]
                                 else 1)
                    if pending and (not in_flight
                                    or len(pending) >= batch_cap
                                    or force_flush):
                        force_flush = False
                        if self._peers[slot] is None and \
                                not self._replace_peer_many(
                                    slot,
                                    [index for index, _ in pending]):
                            return
                        sent_at = time.monotonic()
                        entries = []
                        for index, task in pending:
                            entries.append((next_seq, index, task, sent_at))
                            next_seq += 1
                        pending.clear()
                        # Extend in_flight *before* writing: a write that
                        # fails mid-burst then loses every entry through
                        # the single peer-death path instead of silently
                        # stranding the not-yet-written tail.
                        in_flight.extend(entries)
                        try:
                            self._write_entries(slot, entries, write_frame)
                        except (OSError, ValueError):
                            if not self._handle_peer_death(slot, in_flight):
                                self._abandon_pending(pending)
                                return
                            in_flight.clear()
                            continue
                    if not in_flight:
                        continue
                    # -------------------------------------------- ack
                    # Block for one reply, then opportunistically drain
                    # every further reply the worker has already
                    # delivered.  This is the self-clock: on a
                    # high-latency link the worker's acks pile up while
                    # a frame is in transit, draining them frees a large
                    # chunk of window at once, and the next fill sends
                    # that chunk as one batched frame — batch size adapts
                    # to the latency x service-rate product with no
                    # tuning.
                    peer = self._peers[slot]
                    stats = self._stats[slot]
                    if pending:
                        # A partial batch is parked behind the in-flight
                        # frames.  Holding it is only productive while
                        # acks are arriving to free more window, so wait
                        # at most one deviation-padded RTT (the
                        # estimator's flush hold) for a reply to show up
                        # — then flush the partial batch rather than
                        # serialising it behind one long task.
                        if not _reply_within(peer, stats.rtt.flush_hold()):
                            force_flush = True
                            continue
                    first = True
                    while in_flight and (first or _reply_ready(peer)):
                        first = False
                        waited = time.monotonic()
                        try:
                            frame = read_frame(
                                peer.reader,
                                on_bytes=stats.note_bytes_received)
                        except (OSError, ValueError):
                            frame = None
                        if frame is None:
                            if not self._handle_peer_death(slot,
                                                           in_flight):
                                self._abandon_pending(pending)
                                return
                            in_flight.clear()
                            break
                        now = time.monotonic()
                        threshold = self._slow_threshold(slot)
                        slow = (threshold is not None
                                and now - waited > threshold)
                        seq, index, _task, sent_at = in_flight.popleft()
                        self._check_reply(frame, seq, index)
                        self._on_ack(slot, slow=slow,
                                     rtt_sample=now - sent_at)
                        if frame.get("kind") == "error":
                            self._events.put(("error", index,
                                              _frame_error(frame, index)))
                            continue
                        self._events.put(
                            ("result", index,
                             MISRunResult.from_record(frame["result"])))
                except BaseException as error:
                    # Anything unexpected — a malformed frame shape, a
                    # result record from_record rejects — must surface
                    # as an error event, never die with the thread: a
                    # dead slot with no event would leave the scheduler
                    # blocked in next_event() forever.
                    self._retire(slot)
                    anchor = in_flight[0][1] if in_flight else -1
                    self._events.put(("error", anchor, error))
                    return
        finally:
            self._drop_peer(slot, graceful=True)


class _SubprocessSession(_FramedSession):
    """Slots backed by local worker subprocesses (spawned lazily)."""

    def _make_peer(self, slot: int) -> _SubprocessPeer:
        from repro.experiments.worker import read_frame

        peer = _SubprocessPeer()
        try:
            hello = read_frame(peer.reader)
            _check_hello(hello, f"worker subprocess (pid {peer.proc.pid})")
        except ConfigurationError:
            peer.dispose(graceful=False)
            raise
        peer.features = tuple(hello.get("features", ()))
        peer.pid = hello.get("pid")
        return peer


class SubprocessTransport(Transport):
    """Crash-recovering worker subprocesses over stdio pipes.

    Local pipes have no per-frame RTT worth amortising, so the window
    defaults to 1 (the historical behaviour); both knobs exist mainly so
    the windowed protocol can be exercised without sockets.
    """

    name = "subprocess"

    def __init__(self, window=1, max_batch=1) -> None:
        super().__init__()
        self.window = resolve_window(window)
        self.max_batch = resolve_max_batch(max_batch)

    def open(self, slots: int) -> _SubprocessSession:
        return _SubprocessSession(self, slots, window=self.window,
                                  max_batch=self.max_batch)


class _SocketSession(_FramedSession):
    """Slots backed by TCP connections, one per configured worker."""

    def __init__(self, transport: "SocketTransport",
                 addresses: List[Tuple[str, int]], peers: List) -> None:
        self._addresses = addresses
        self._reconnect_attempts = transport.reconnect_attempts
        self._reconnect_delay = transport.reconnect_delay
        self._connect_timeout = transport.connect_timeout
        super().__init__(transport, len(addresses), peers=peers,
                         window=transport.window,
                         max_batch=transport.max_batch,
                         ack_timeout=transport.ack_timeout,
                         frame_latency=transport.frame_latency)
        # A thread close() cannot interrupt is at worst one dial deep;
        # wait that out (plus slack) instead of joining forever.
        self._shutdown_grace = transport.connect_timeout + 1.0

    def _slot_label(self, slot: int) -> str:
        # Label by worker address so the per-worker aggregation groups a
        # host:port*K multi-slot worker's K connections into one row.
        return format_address(*self._addresses[slot])

    def _make_peer(self, slot: int) -> _SocketPeer:
        # Reconnect path only (initial connections are dialled eagerly by
        # SocketTransport.open): if merely the connection died the worker
        # answers again; if the worker process died the dial fails and
        # the slot is retired — its tasks fail over to the other workers.
        # Every step aborts on the closing flag so close() never waits on
        # a slot grinding through reconnect attempts.
        last_error: Optional[Exception] = None
        for attempt in range(self._reconnect_attempts):
            if attempt and self._closing.wait(self._reconnect_delay):
                break
            if self._closing.is_set():
                break
            try:
                peer = _dial_worker(self._addresses[slot],
                                    self._connect_timeout)
            except ConfigurationError:
                raise
            except OSError as error:
                last_error = error
                continue
            if self._closing.is_set():
                # close() already swept the peer table; a connection
                # registered now would leak.
                peer.dispose(graceful=False)
                break
            return peer
        if self._closing.is_set():
            raise WorkerCrashError(
                f"session closing; abandoning reconnect to worker "
                f"{format_address(*self._addresses[slot])}"
            )
        raise WorkerCrashError(
            f"worker {format_address(*self._addresses[slot])} is gone "
            f"({last_error}); retiring its slot"
        )


def _dial_worker(address: Tuple[str, int],
                 connect_timeout: float) -> _SocketPeer:
    """Connect to one socket worker and validate its hello frame."""
    from repro.experiments.worker import read_frame

    peer = _SocketPeer(address, connect_timeout)
    try:
        hello = read_frame(peer.reader)
        _check_hello(hello, peer.origin)
    except (ConfigurationError, OSError):
        peer.dispose(graceful=False)
        raise
    peer.features = tuple(hello.get("features", ()))
    peer.pid = hello.get("pid")
    peer.sock.settimeout(None)
    return peer


class SocketTransport(Transport):
    """TCP cluster transport: one slot per dialled worker connection.

    *workers* is a ``host:port,host:port`` string or a sequence of such
    addresses — each optionally carrying a ``*K`` multiplier that dials K
    independent connections to the same (multi-slot) worker; when
    omitted, the :data:`SOCKET_WORKERS_ENV` environment variable is
    consulted at open time.  Every connection is dialled (and its schema
    handshake validated) *before* any task is dispatched, so a
    misconfigured cluster is refused up front rather than half-way into a
    grid.  Each connection keeps the independent reconnect/retire/requeue
    semantics — a multi-slot worker losing one connection fails only that
    slot over.

    *window* / *max_batch* configure the sliding-window pipelining (see
    the module docstring): the default adaptive window starts at 1 per
    connection and self-tunes, so remote workers stop paying one RTT per
    task.  *ack_timeout*, when set, treats an ack slower than that many
    seconds as a congestion signal and halves the window.
    *frame_latency* injects a coordinator-side sleep before every frame
    written — benchmark/test plumbing that simulates a slow link without
    needing one.
    """

    name = "socket"

    def __init__(self, workers: Union[None, str, Sequence[str]] = None,
                 connect_timeout: float = 10.0,
                 reconnect_attempts: int = 2,
                 reconnect_delay: float = 0.2,
                 window=ADAPTIVE_WINDOW, max_batch=1,
                 ack_timeout: Optional[float] = None,
                 frame_latency: float = 0.0) -> None:
        super().__init__()
        self.workers = workers
        self.connect_timeout = connect_timeout
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay
        self.window = resolve_window(window)
        self.max_batch = resolve_max_batch(max_batch)
        self.ack_timeout = ack_timeout
        self.frame_latency = frame_latency

    def addresses(self) -> List[Tuple[str, int]]:
        workers = self.workers
        if workers is None:
            workers = os.environ.get(SOCKET_WORKERS_ENV) or None
        addresses = parse_worker_addresses(workers)
        if not addresses:
            raise ConfigurationError(
                "socket transport needs worker addresses: pass --workers "
                "HOST:PORT[*SLOTS],... (serve them with 'repro-mis worker "
                "serve --listen HOST:PORT --slots N') or set the "
                f"{SOCKET_WORKERS_ENV} environment variable"
            )
        return addresses

    def open(self, slots: int) -> _SocketSession:
        del slots  # capacity == number of configured workers
        addresses = self.addresses()
        peers: List[_SocketPeer] = []
        try:
            for address in addresses:
                try:
                    peers.append(_dial_worker(address, self.connect_timeout))
                except OSError as error:
                    raise ConfigurationError(
                        f"cannot reach worker {format_address(*address)} "
                        f"({error}); is 'repro-mis worker serve' running "
                        "there?"
                    ) from error
        except ConfigurationError:
            for peer in peers:
                peer.dispose(graceful=False)
            raise
        return _SocketSession(self, addresses, peers)


#: Registry of selectable transports (the CLI's ``--transport`` choices).
TRANSPORTS: Dict[str, Type[Transport]] = {
    "inline": InlineTransport,
    "thread": ThreadTransport,
    "process": ProcessTransport,
    "subprocess": SubprocessTransport,
    "socket": SocketTransport,
}


def available_transports() -> List[str]:
    """Transport names accepted by ``--transport`` / :func:`resolve_transport`."""
    return sorted(TRANSPORTS)


def resolve_transport(transport, jobs: int = 1) -> Transport:
    """Turn a transport selector into a transport object.

    ``None`` preserves the historical ``jobs``-driven choice — inline for
    one worker, the process pool otherwise.  A string is looked up in
    :data:`TRANSPORTS`; anything else is assumed to already be a
    transport object and returned as-is.
    """
    if transport is None:
        return InlineTransport() if jobs == 1 else ProcessTransport()
    if isinstance(transport, str):
        if transport not in TRANSPORTS:
            raise ConfigurationError(
                f"unknown transport '{transport}'; known: "
                f"{available_transports()}"
            )
        return TRANSPORTS[transport]()
    return transport
