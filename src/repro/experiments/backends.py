"""Pluggable execution backends for the sweep executor.

The executor (:mod:`repro.experiments.executor`) decides *what* runs — an
up-front-seeded list of :class:`~repro.experiments.executor.SweepTask`
specs — while a backend decides *where*.  Every backend implements one
method::

    submit_tasks(tasks) -> iterator of (index, MISRunResult)

yielding ``(position-in-tasks, compact result)`` pairs as executions
finish.  Because all seeds are fixed before submission, the pairs carry
byte-identical results on every backend; only arrival order and the
failure model differ.  Closing the returned generator early cancels
queued work and shuts workers down.

Backends
--------

``serial`` (:class:`SerialBackend`)
    In-process, task order, zero pickling.  The default for ``jobs=1`` and
    the reference every other backend is tested against.
``thread`` (:class:`ThreadBackend`)
    A ``ThreadPoolExecutor``.  Shares the coordinator's memory (no task or
    result serialisation) but contends for the GIL; mainly useful as the
    cheapest completion-order backend and for exercising consumers against
    out-of-order arrival.
``process`` (:class:`ProcessBackend`)
    The historical ``ProcessPoolExecutor`` fan-out, including the
    worker initializer that clears fork-inherited graph-cache entries.
    The default whenever ``jobs > 1``.
``async`` (:class:`AsyncSubprocessBackend`)
    asyncio-managed worker subprocesses speaking length-prefixed JSON over
    stdio pipes (:mod:`repro.experiments.worker`).  Unlike the pool, a
    crashed worker is restarted and its in-flight task requeued, and the
    coordinator↔worker protocol is plain framed JSON — the stepping stone
    to a cluster backend where workers live on other machines.

Selection goes through :func:`resolve_backend`; the CLI exposes it as
``--backend serial|thread|process|async``.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import json
import os
import queue
import struct
import sys
import threading
from concurrent.futures import (ProcessPoolExecutor, ThreadPoolExecutor,
                                as_completed)
from pathlib import Path
from typing import (Dict, Iterator, List, Optional, Protocol, Sequence,
                    Tuple, Type)

from repro.errors import ConfigurationError, WorkerCrashError
from repro.experiments.executor import (_build_graph,
                                        _reset_worker_graph_cache,
                                        BackendLike, SweepTask, resolve_jobs,
                                        run_task)
from repro.experiments.harness import MISRunResult

#: Environment variable naming a directory of fault-injection markers for
#: the subprocess worker (see :func:`repro.experiments.worker.maybe_crash`).
#: Test-only: lets the crash-recovery suite kill a worker mid-task
#: deterministically.
WORKER_FAULT_DIR_ENV = "REPRO_WORKER_FAULT_DIR"


class Backend(Protocol):
    """Protocol every execution backend implements."""

    #: Registry name (``"serial"``, ``"thread"``, ...).
    name: str

    def submit_tasks(
        self, tasks: Sequence[SweepTask],
    ) -> Iterator[Tuple[int, MISRunResult]]:
        """Yield ``(index, result)`` pairs as executions finish."""
        ...


class SerialBackend:
    """In-process execution in task order (no pool, no pickling).

    Keeps single-run debugging, tracebacks and profiling simple — an
    unpicklable monkeypatched algorithm adapter still works here, which is
    load-bearing for several tests.
    """

    name = "serial"

    def __init__(self, jobs: Optional[int] = 1) -> None:
        # *jobs* is accepted for registry uniformity; serial is always 1.
        del jobs

    def submit_tasks(
        self, tasks: Sequence[SweepTask],
    ) -> Iterator[Tuple[int, MISRunResult]]:
        try:
            for index, task in enumerate(tasks):
                yield index, run_task(task)
        finally:
            # Don't pin graphs in the coordinator process beyond the sweep.
            _build_graph.cache_clear()


class _PoolBackend:
    """Shared ``concurrent.futures`` fan-out (thread and process pools).

    Per-task submission (no chunking): specs are a few ints/strings and
    results are compact, so submission overhead is trivial — while tasks
    are emitted in ascending-n order, meaning chunking would hand the
    expensive large-n tail to a single straggler worker.
    """

    #: Executor class and extra constructor kwargs, set by subclasses.
    _pool_cls: Type = ThreadPoolExecutor
    _pool_kwargs: Dict = {}

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = resolve_jobs(jobs)

    def submit_tasks(
        self, tasks: Sequence[SweepTask],
    ) -> Iterator[Tuple[int, MISRunResult]]:
        if not tasks:
            return
        workers = min(self.jobs, len(tasks))
        done = 0
        with self._pool_cls(max_workers=workers, **self._pool_kwargs) as pool:
            future_to_index = {pool.submit(run_task, task): index
                               for index, task in enumerate(tasks)}
            try:
                for future in as_completed(future_to_index):
                    done += 1
                    yield future_to_index[future], future.result()
            finally:
                # If the consumer abandons the stream early, don't let
                # queued tasks keep the pool busy through the context-
                # manager join.
                if done < len(tasks):
                    for future in future_to_index:
                        future.cancel()
                _build_graph.cache_clear()


class ThreadBackend(_PoolBackend):
    """Thread-pool execution: completion order, shared memory, GIL-bound."""

    name = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessBackend(_PoolBackend):
    """The historical ``ProcessPoolExecutor`` fan-out.

    The initializer clears fork-inherited graph-cache entries so workers
    never pin stale graphs left by a previous in-process sweep.
    """

    name = "process"
    _pool_cls = ProcessPoolExecutor
    _pool_kwargs = {"initializer": _reset_worker_graph_cache}


class _WorkerDied(Exception):
    """Internal: the subprocess worker exited before returning a result."""


class AsyncSubprocessBackend:
    """asyncio-managed worker subprocesses with crash recovery.

    Each worker is ``python -m repro.experiments.worker``: a loop reading
    length-prefixed JSON task frames from stdin and writing result frames
    to stdout.  The coordinator runs an asyncio event loop (on a helper
    thread, so ``submit_tasks`` stays an ordinary generator) with one
    feeder coroutine per worker pulling from a shared task deque.

    Failure model — the property the pool backends lack:

    * a worker that **dies** mid-task (kill, crash, OOM) is reaped and
      replaced, and its in-flight task is requeued; the sweep completes
      with byte-identical results.  A task that crashes its worker
      :attr:`max_attempts` times raises :class:`~repro.errors
      .WorkerCrashError` instead of looping forever.
    * a task that **raises** inside the worker is reported back as an
      error frame (the worker survives) and re-raised in the coordinator,
      matching the serial backend's behaviour.

    ``worker_restarts`` counts replacements, which is what the crash-
    recovery tests assert on.
    """

    name = "async"

    def __init__(self, jobs: Optional[int] = None,
                 max_attempts: int = 3) -> None:
        self.jobs = resolve_jobs(jobs)
        self.max_attempts = max_attempts
        self.worker_restarts = 0

    # ------------------------------------------------------------------ #
    # Synchronous generator facade
    # ------------------------------------------------------------------ #
    def submit_tasks(
        self, tasks: Sequence[SweepTask],
    ) -> Iterator[Tuple[int, MISRunResult]]:
        task_list = list(tasks)
        if not task_list:
            return
        # The event loop lives on a helper thread; results cross back on a
        # plain queue so this generator can yield them synchronously.
        out: "queue.Queue[Tuple[str, object, object]]" = queue.Queue()
        stop = threading.Event()
        runner = threading.Thread(
            target=self._thread_main, args=(task_list, out, stop),
            name="repro-async-backend", daemon=True,
        )
        runner.start()
        emitted = 0
        try:
            while emitted < len(task_list):
                kind, first, second = out.get()
                if kind == "error":
                    raise first  # type: ignore[misc]
                if kind == "done":
                    raise WorkerCrashError(
                        f"async backend finished after {emitted} of "
                        f"{len(task_list)} results — workers were lost "
                        "without their tasks being requeued (bug)"
                    )
                yield first, second  # type: ignore[misc]
                emitted += 1
            # Normal completion: wait for the loop thread's sentinel so the
            # workers finish their graceful EOF shutdown *inside* the event
            # loop.  Setting ``stop`` right away would cancel them mid-
            # shutdown and leak subprocess transports.
            kind, first, _second = out.get()
            if kind == "error":
                raise first  # type: ignore[misc]
        finally:
            stop.set()
            runner.join()

    def _thread_main(self, task_list, out, stop) -> None:
        try:
            asyncio.run(self._run(task_list, out, stop))
        except BaseException as error:  # noqa: E722 - forwarded to consumer
            out.put(("error", error, None))
        else:
            out.put(("done", None, None))

    # ------------------------------------------------------------------ #
    # Event-loop side
    # ------------------------------------------------------------------ #
    async def _run(self, task_list, out, stop) -> None:
        pending = collections.deque(enumerate(task_list))
        attempts = [0] * len(task_list)
        workers = max(1, min(self.jobs, len(task_list)))
        # return_exceptions=True is load-bearing, not cosmetic: without it
        # the gather completes on the FIRST cancelled worker, this
        # coroutine returns while sibling workers are still awaiting their
        # subprocess shutdowns, and asyncio.run's teardown re-cancels them
        # mid-finally — leaking subprocess transports past the loop's
        # lifetime.  With it the gather only resolves once every worker
        # (finally included) has finished.
        work_task = asyncio.ensure_future(asyncio.gather(
            *(self._worker_loop(pending, attempts, out)
              for _ in range(workers)),
            return_exceptions=True,
        ))
        stop_task = asyncio.ensure_future(self._watch_stop(stop))
        await asyncio.wait({work_task, stop_task},
                           return_when=asyncio.FIRST_COMPLETED)
        stop_task.cancel()
        if not work_task.done():
            # Consumer abandoned the stream: cancel the feeders; their
            # finally blocks shut the subprocesses down.
            work_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await stop_task
        with contextlib.suppress(asyncio.CancelledError):
            outcomes = await work_task
            for outcome in outcomes:
                if (isinstance(outcome, BaseException)
                        and not isinstance(outcome, asyncio.CancelledError)):
                    raise outcome

    @staticmethod
    async def _watch_stop(stop: threading.Event) -> None:
        while not stop.is_set():
            await asyncio.sleep(0.05)

    async def _worker_loop(self, pending, attempts, out) -> None:
        proc = None
        try:
            while pending:
                index, task = pending.popleft()
                attempts[index] += 1
                if proc is None:
                    spawn = asyncio.ensure_future(self._spawn())
                    try:
                        proc = await asyncio.shield(spawn)
                    except asyncio.CancelledError:
                        # Cancelled mid-spawn (consumer abandoned the
                        # stream): the subprocess creation continues in
                        # the shielded task — adopt its result so the
                        # finally below disposes of the worker instead of
                        # leaking its transport past the loop's lifetime.
                        if not spawn.cancelled():
                            with contextlib.suppress(BaseException):
                                proc = await spawn
                        raise
                try:
                    await self._send(proc, index, task)
                    frame = await self._recv(proc)
                except _WorkerDied:
                    # The worker died mid-task: replace it and requeue the
                    # task (at the back, so a healthy sibling may pick it
                    # up first).
                    self.worker_restarts += 1
                    await self._reap(proc)
                    proc = None
                    if attempts[index] >= self.max_attempts:
                        raise WorkerCrashError(
                            f"task {index} ({task.algorithm} on "
                            f"{task.family} n={task.n}) crashed its worker "
                            f"{attempts[index]} times; giving up"
                        )
                    pending.append((index, task))
                    continue
                if frame.get("kind") == "error":
                    if frame.get("configuration"):
                        # Re-raise configuration mistakes as themselves so
                        # they render identically on every backend (the
                        # CLI turns ConfigurationError into `error: ...`).
                        raise ConfigurationError(
                            frame.get("message", "task failed in worker"))
                    raise WorkerCrashError(
                        f"task {frame.get('index', index)} failed in "
                        f"worker:\n{frame.get('error', '<no traceback>')}"
                    )
                result = MISRunResult.from_record(frame["result"])
                out.put(("result", int(frame["index"]), result))
        finally:
            if proc is not None:
                await self._dispose(proc)

    async def _dispose(self, proc) -> None:
        """Run :meth:`_shutdown` to completion even under cancellation.

        The shutdown *must* finish inside the event loop — an interrupted
        one leaves the subprocess transport open past the loop's lifetime
        (asyncio then logs 'Event loop is closed' from ``__del__``).  The
        shield keeps the inner shutdown running when this coroutine is
        cancelled; each delivered cancellation is absorbed and the wait
        resumed until the shutdown finishes.
        """
        inner = asyncio.ensure_future(self._shutdown(proc))
        while True:
            try:
                await asyncio.shield(inner)
                return
            except asyncio.CancelledError:
                if inner.cancelled():
                    raise
                continue

    @staticmethod
    async def _spawn():
        # The worker must be able to `import repro` even when the
        # coordinator runs from a source checkout that is only on
        # sys.path, not installed: prepend our package root.
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (package_root if not existing
                             else package_root + os.pathsep + existing)
        return await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro.experiments.worker",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=env,
        )

    @staticmethod
    async def _send(proc, index: int, task: SweepTask) -> None:
        payload = json.dumps(
            {"kind": "task", "index": index, "task": task.to_json()},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        try:
            proc.stdin.write(struct.pack(">I", len(payload)) + payload)
            await proc.stdin.drain()
        except (BrokenPipeError, ConnectionResetError) as error:
            raise _WorkerDied() from error

    @staticmethod
    async def _recv(proc) -> Dict:
        try:
            header = await proc.stdout.readexactly(4)
            (length,) = struct.unpack(">I", header)
            payload = await proc.stdout.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionResetError) as error:
            raise _WorkerDied() from error
        return json.loads(payload.decode("utf-8"))

    @staticmethod
    def _close_transport(proc) -> None:
        """Close the subprocess transport while the loop is still alive.

        The stdout pipe is never read to EOF (results are framed, not
        streamed), so without this the transport lingers until garbage
        collection — by which time the event loop is closed and asyncio
        logs 'Event loop is closed' noise from ``__del__``.
        """
        transport = getattr(proc, "_transport", None)
        if transport is not None:
            transport.close()

    @classmethod
    async def _reap(cls, proc) -> None:
        """Collect a worker that already died (or kill a wedged one)."""
        with contextlib.suppress(ProcessLookupError):
            proc.kill()
        await proc.wait()
        cls._close_transport(proc)

    @classmethod
    async def _shutdown(cls, proc) -> None:
        """Graceful stop: EOF on stdin ends the worker loop; kill if not."""
        with contextlib.suppress(BrokenPipeError, ConnectionResetError):
            proc.stdin.close()
        try:
            await asyncio.wait_for(proc.wait(), timeout=5.0)
        except asyncio.TimeoutError:
            with contextlib.suppress(ProcessLookupError):
                proc.kill()
            await proc.wait()
        cls._close_transport(proc)


#: Registry of selectable backends (the CLI's ``--backend`` choices).
BACKENDS: Dict[str, Type] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
    "async": AsyncSubprocessBackend,
}


def available_backends() -> List[str]:
    """Backend names accepted by ``--backend`` / ``resolve_backend``."""
    return sorted(BACKENDS)


def resolve_backend(backend: BackendLike, jobs: Optional[int] = 1,
                    total: Optional[int] = None) -> Backend:
    """Turn a backend selector into a backend object.

    ``None`` preserves the historical ``jobs``-driven choice: serial when
    one worker would be used (or the grid has at most one task — a pool
    would be pure overhead), the process pool otherwise.  A string is
    looked up in :data:`BACKENDS` and constructed with *jobs*; anything
    else is assumed to already be a backend object and returned as-is.
    """
    if backend is None:
        workers = resolve_jobs(jobs)
        if workers == 1 or (total is not None and total <= 1):
            return SerialBackend()
        return ProcessBackend(jobs=workers)
    if isinstance(backend, str):
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend '{backend}'; known: {available_backends()}"
            )
        return BACKENDS[backend](jobs=jobs)
    return backend
