"""Execution backends: (scheduler × transport) compositions.

Historically this module implemented four monolithic backends; the layer
is now split into two orthogonal pieces —

* :mod:`repro.experiments.schedulers` owns *what runs when* (task
  ordering, retry/requeue, crash-loop accounting), and
* :mod:`repro.experiments.transports` owns *how bytes move* (in-process,
  pools, worker subprocesses over pipes, socket workers over TCP) —

and a "backend" is simply a :class:`ComposedBackend` pairing one of each.
The historical ``backend=`` strings remain as aliases so every existing
``run_sweep``/registry/CLI call keeps working::

    serial  == fifo × inline
    thread  == fifo × thread
    process == fifo × process
    async   == fifo × subprocess
    socket  == fifo × socket      (workers via --workers / REPRO_WORKERS)

Every backend implements one method::

    submit_tasks(tasks) -> iterator of (index, MISRunResult)

yielding ``(position-in-tasks, compact result)`` pairs as executions
finish.  Because all seeds are fixed before submission
(:func:`~repro.experiments.executor.plan_sweep_tasks`), the pairs carry
byte-identical results for every scheduler × transport × jobs
combination; only arrival order and the failure model differ.  Closing
the returned generator early cancels queued work and shuts workers down.

Selection goes through :func:`resolve_backend` (alias strings, composed
objects) or :func:`make_backend` (CLI-style ``--backend``/``--scheduler``/
``--transport``/``--workers`` selectors).
"""

from __future__ import annotations

import os
from typing import (Dict, Iterator, List, Optional, Protocol, Sequence,
                    Tuple, Type, Union)

from repro.errors import ConfigurationError
from repro.experiments.executor import (BackendLike, SweepTask,
                                        graph_cache_stats, resolve_jobs)
from repro.experiments.harness import MISRunResult
from repro.experiments.schedulers import (SCHEDULERS, CostModelScheduler,
                                          FifoScheduler,
                                          LargeFirstScheduler, Scheduler,
                                          available_schedulers,
                                          resolve_scheduler)
from repro.experiments.transports import (  # noqa: F401 - re-exported compat
    ADAPTIVE_WINDOW, SOCKET_WORKERS_ENV, TRANSPORTS, WORKER_FAULT_DIR_ENV,
    InlineTransport, ProcessTransport, SocketTransport, SubprocessTransport,
    ThreadTransport, Transport, available_transports,
    parse_worker_addresses, resolve_max_batch, resolve_transport,
    resolve_window)


class Backend(Protocol):
    """Protocol every execution backend implements."""

    #: Registry name (``"serial"``, ``"thread"``, ...) or composed label.
    name: str

    def submit_tasks(
        self, tasks: Sequence[SweepTask],
    ) -> Iterator[Tuple[int, MISRunResult]]:
        """Yield ``(index, result)`` pairs as executions finish."""
        ...


class ComposedBackend:
    """One scheduler driving one transport.

    The scheduler dispatches tasks (in policy order, with retry/requeue
    and crash-loop accounting) into the transport's slots; the transport
    moves the frames and reports completions and slot deaths.  Opening
    and closing the transport session brackets the result stream, so an
    abandoned generator still tears every worker down deterministically.
    """

    def __init__(self, scheduler: Union[None, str, Scheduler] = None,
                 transport: Union[None, str, Transport] = None,
                 jobs: Optional[int] = None, max_attempts: int = 3) -> None:
        self.jobs = resolve_jobs(jobs)
        self.scheduler = resolve_scheduler(scheduler,
                                           max_attempts=max_attempts)
        self.transport = resolve_transport(transport, jobs=self.jobs)
        self._graph_cache: Optional[Dict] = None

    @property
    def name(self) -> str:
        return f"{self.scheduler.name}+{self.transport.name}"

    @property
    def worker_restarts(self) -> int:
        """Cumulative worker replacements (crash-recovery accounting)."""
        return self.transport.restarts

    def telemetry(self) -> Dict:
        """Machine-readable pipeline telemetry for this backend.

        The transport's per-connection/per-worker counter snapshot (RTT
        estimates, frames, acks, batches, reconnects, bytes, windows —
        see :mod:`repro.experiments.telemetry`) plus the scheduler's
        retry accounting and — once a sweep has run — the coordinator's
        graph-cache counters (hits/misses/evictions, captured just
        before session teardown clears the cache).  Purely
        observational: reading it never touches a result byte.
        """
        data = self.transport.telemetry()
        data["scheduler"] = {"name": self.scheduler.name,
                             "requeues": self.scheduler.requeues}
        if self._graph_cache is not None:
            data["graph_cache"] = dict(self._graph_cache)
        return data

    def submit_tasks(
        self, tasks: Sequence[SweepTask],
    ) -> Iterator[Tuple[int, MISRunResult]]:
        task_list = list(tasks)
        if not task_list:
            return
        slots = max(1, min(self.jobs, len(task_list)))
        session = self.transport.open(slots)
        try:
            yield from self.scheduler.run(task_list, session)
        finally:
            # Capture the coordinator-side graph-cache counters before the
            # session teardown clears them (close() calls cache_clear so
            # sweeps never pin graphs beyond their lifetime).
            self._graph_cache = graph_cache_stats()
            # Deterministic teardown on completion, error and abandonment
            # alike: cancel queued work, shut every slot down.
            session.close()


class SerialBackend(ComposedBackend):
    """fifo × inline: in-process, task order, zero pickling.

    Keeps single-run debugging, tracebacks and profiling simple — an
    unpicklable monkeypatched algorithm adapter still works here, which
    is load-bearing for several tests.
    """

    name = "serial"

    def __init__(self, jobs: Optional[int] = 1,
                 scheduler: Union[None, str, Scheduler] = None) -> None:
        # *jobs* is accepted for registry uniformity; inline is always 1.
        del jobs
        super().__init__(scheduler=scheduler, transport=InlineTransport(),
                         jobs=1)


class ThreadBackend(ComposedBackend):
    """fifo × thread: completion order, shared memory, GIL-bound."""

    name = "thread"

    def __init__(self, jobs: Optional[int] = None,
                 scheduler: Union[None, str, Scheduler] = None) -> None:
        super().__init__(scheduler=scheduler, transport=ThreadTransport(),
                         jobs=jobs)


class ProcessBackend(ComposedBackend):
    """fifo × process: the historical ``ProcessPoolExecutor`` fan-out."""

    name = "process"

    def __init__(self, jobs: Optional[int] = None,
                 scheduler: Union[None, str, Scheduler] = None) -> None:
        super().__init__(scheduler=scheduler, transport=ProcessTransport(),
                         jobs=jobs)


class AsyncSubprocessBackend(ComposedBackend):
    """fifo × subprocess: crash-recovering worker subprocesses.

    Each slot is ``python -m repro.experiments.worker`` speaking
    length-prefixed JSON over stdio pipes.  A worker that dies mid-task
    is replaced and its task requeued; a task that crashes its worker
    *max_attempts* times raises :class:`~repro.errors.WorkerCrashError`
    instead of looping forever.  (The name predates the scheduler ×
    transport split, when this was an asyncio implementation.)
    """

    name = "async"

    def __init__(self, jobs: Optional[int] = None, max_attempts: int = 3,
                 scheduler: Union[None, str, Scheduler] = None) -> None:
        super().__init__(scheduler=scheduler,
                         transport=SubprocessTransport(), jobs=jobs,
                         max_attempts=max_attempts)
        self.max_attempts = max_attempts


class SocketBackend(ComposedBackend):
    """fifo × socket: the worker protocol over TCP — the cluster backend.

    Serve workers anywhere with ``repro-mis worker serve --listen
    HOST:PORT`` and point the coordinator at them (CLI ``--workers
    host:port,...``, or the :data:`~repro.experiments.transports
    .SOCKET_WORKERS_ENV` environment variable).  One slot per worker; a
    dropped connection is requeued exactly like a killed subprocess.
    """

    name = "socket"

    def __init__(self, jobs: Optional[int] = None,
                 workers: Union[None, str, Sequence[str]] = None,
                 max_attempts: int = 3,
                 scheduler: Union[None, str, Scheduler] = None) -> None:
        super().__init__(scheduler=scheduler,
                         transport=SocketTransport(workers), jobs=jobs,
                         max_attempts=max_attempts)
        self.max_attempts = max_attempts


#: Registry of selectable backend aliases (the CLI's ``--backend`` choices).
BACKENDS: Dict[str, Type] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
    "async": AsyncSubprocessBackend,
    "socket": SocketBackend,
}


def available_backends() -> List[str]:
    """Backend names accepted by ``--backend`` / ``resolve_backend``."""
    return sorted(BACKENDS)


def resolve_backend(backend: BackendLike, jobs: Optional[int] = 1,
                    total: Optional[int] = None) -> Backend:
    """Turn a backend selector into a backend object.

    ``None`` preserves the historical ``jobs``-driven choice: serial when
    one worker would be used (or the grid has at most one task — a pool
    would be pure overhead), the process pool otherwise.  A string is
    looked up in :data:`BACKENDS` and constructed with *jobs*; anything
    else is assumed to already be a backend object and returned as-is.
    """
    if backend is None:
        workers = resolve_jobs(jobs)
        if workers == 1 or (total is not None and total <= 1):
            return SerialBackend()
        return ProcessBackend(jobs=workers)
    if isinstance(backend, str):
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend '{backend}'; known: {available_backends()}"
            )
        return BACKENDS[backend](jobs=jobs)
    return backend


def make_backend(backend: Optional[str] = None,
                 scheduler: Optional[str] = None,
                 transport: Optional[str] = None,
                 workers: Union[None, str, Sequence[str]] = None,
                 jobs: Optional[int] = 1,
                 max_attempts: int = 3,
                 window: Union[None, int, str] = None,
                 max_batch: Union[None, int, str] = None,
                 ) -> Optional[Backend]:
    """Compose a backend from CLI-style selectors.

    Returns ``None`` when every selector is ``None`` — the historical
    jobs-driven default (which also knows the grid size) then applies in
    :func:`resolve_backend`.  A ``--backend`` alias provides the
    (scheduler, transport) pair; explicit ``--scheduler`` / ``--transport``
    override its halves; ``--workers`` implies the socket transport.
    ``--window`` / ``--max-batch`` tune the framed transports' pipelining
    (see :mod:`repro.experiments.transports`); ``None`` keeps each
    transport's default (adaptive for socket, 1 for subprocess).

    Socket misconfiguration fails *here*, not at session-open time: a
    sweep that cannot possibly run (no ``--workers``, no
    :data:`SOCKET_WORKERS_ENV`, or an unparseable worker list) must be
    refused before the caller touches anything stateful — in particular
    before the CLI stamps a results-store header for a sweep that never
    starts.
    """
    if backend is not None and backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend '{backend}'; known: {available_backends()}"
        )
    if backend is not None and transport is not None:
        raise ConfigurationError(
            "pass either --backend (a scheduler × transport alias) or "
            "--transport, not both"
        )
    if workers is not None:
        if backend == "socket" or transport == "socket":
            pass  # socket already selected explicitly
        elif backend is None and transport is None:
            transport = "socket"  # --workers alone implies socket
        else:
            raise ConfigurationError(
                "--workers only applies to the socket transport "
                "(--backend socket / --transport socket)"
            )
    pipeline_options: Dict[str, int] = {}
    if window is not None:
        pipeline_options["window"] = resolve_window(window)
    if max_batch is not None:
        pipeline_options["max_batch"] = resolve_max_batch(max_batch)
    if pipeline_options:
        framed = (backend in ("async", "socket")
                  or transport in ("subprocess", "socket"))
        if not framed:
            raise ConfigurationError(
                "--window/--max-batch only apply to the framed transports: "
                "combine them with --workers/--backend socket/--transport "
                "socket, or --backend async/--transport subprocess"
            )
    if backend is None and scheduler is None and transport is None:
        return None
    if backend == "socket" or transport == "socket":
        # Validate the addresses that will actually be dialled — the
        # explicit flag, or the env-var fallback SocketTransport would
        # consult at open time.  A typo'd list (in either place) or an
        # empty one must fail here, not mid-way through setup.
        effective_workers = (workers if workers is not None
                             else os.environ.get(SOCKET_WORKERS_ENV))
        if not parse_worker_addresses(effective_workers):
            raise ConfigurationError(
                "socket transport needs worker addresses: pass --workers "
                "HOST:PORT[*SLOTS],... (serve them with 'repro-mis worker "
                "serve --listen HOST:PORT --slots N') or set the "
                f"{SOCKET_WORKERS_ENV} environment variable"
            )
        return ComposedBackend(
            scheduler=scheduler,
            transport=SocketTransport(workers, **pipeline_options),
            jobs=jobs, max_attempts=max_attempts)
    if pipeline_options and (backend == "async"
                             or transport == "subprocess"):
        return ComposedBackend(
            scheduler=scheduler,
            transport=SubprocessTransport(**pipeline_options),
            jobs=jobs, max_attempts=max_attempts)
    if backend is not None:
        # Alias classes carry their transport; just add the scheduler.
        return BACKENDS[backend](jobs=jobs, scheduler=scheduler)
    return ComposedBackend(scheduler=scheduler, transport=transport,
                           jobs=jobs, max_attempts=max_attempts)


__all__ = [
    "Backend", "ComposedBackend", "SerialBackend", "ThreadBackend",
    "ProcessBackend", "AsyncSubprocessBackend", "SocketBackend",
    "BACKENDS", "available_backends", "resolve_backend", "make_backend",
    "Scheduler", "FifoScheduler", "LargeFirstScheduler",
    "CostModelScheduler", "SCHEDULERS",
    "available_schedulers", "resolve_scheduler",
    "Transport", "InlineTransport", "ThreadTransport", "ProcessTransport",
    "SubprocessTransport", "SocketTransport", "TRANSPORTS",
    "available_transports", "resolve_transport", "parse_worker_addresses",
    "ADAPTIVE_WINDOW", "resolve_window", "resolve_max_batch",
    "WORKER_FAULT_DIR_ENV", "SOCKET_WORKERS_ENV",
]
