"""Scheduling policies for the sweep execution layer.

The execution layer is split along two orthogonal axes:

* a **scheduler** (this module) owns *what runs when*: task ordering,
  retry/requeue of tasks whose execution slot died, crash-loop
  accounting, and surfacing worker errors; while
* a **transport** (:mod:`repro.experiments.transports`) owns *how bytes
  move*: carrying :class:`~repro.experiments.executor.SweepTask` frames
  to execution slots (in-process, a pool, worker subprocesses, or TCP
  workers on other hosts) and reporting completions and slot deaths.

A scheduler drives a :class:`~repro.experiments.transports
.TransportSession` through a small event loop: keep every available slot
fed in policy order, collect ``result``/``error``/``lost`` events, requeue
the in-flight task of a lost slot (at the back, so a healthy slot may pick
it up first), and give up with :class:`~repro.errors.WorkerCrashError`
once a task has crashed its slot :attr:`max_attempts` times or no live
slot remains.  Because every task's seeds were fixed up front by
:func:`~repro.experiments.executor.plan_sweep_tasks`, *no* scheduling
policy can affect a single result byte — policies only move wall-clock
time around.

Policies
--------

``fifo`` (:class:`FifoScheduler`)
    Dispatch in planned-grid order.  The historical behaviour of every
    backend, and the reference the equivalence matrix pins.
``large-first`` (:class:`LargeFirstScheduler`)
    Dispatch in descending graph size ``n`` (ties in planned order).
    Sweep grids are emitted in ascending-n order, so under fifo the
    expensive large-n tail lands last and the sweep ends waiting on a
    single straggler slot; dispatching the large tasks first lets the
    small ones fill the tail — the classic LPT straggler cut on skewed
    grids.
"""

from __future__ import annotations

import collections
from typing import Dict, Iterator, List, Sequence, Tuple, Type

from repro.errors import ConfigurationError, WorkerCrashError
from repro.experiments.harness import MISRunResult


class Scheduler:
    """Base scheduler: the slot-feeding event loop minus the policy.

    Subclasses override :meth:`order` to pick the dispatch order.  The
    loop guarantees every task is executed to completion exactly once (a
    requeued task re-executes, but only after its previous execution was
    lost with its slot), or raises.

    *max_attempts* bounds how many times one task may take a slot down
    with it before the run is abandoned with
    :class:`~repro.errors.WorkerCrashError` — without it a task that
    reliably crashes its worker (a genuine bug, an OOM) would burn
    through replacement slots forever.
    """

    #: Registry name ("fifo", "large-first"), set by subclasses.
    name = "fifo"

    def __init__(self, max_attempts: int = 3) -> None:
        if max_attempts < 1:
            raise ConfigurationError(
                f"invalid max_attempts {max_attempts!r}: need a positive int"
            )
        self.max_attempts = max_attempts

    # ------------------------------------------------------------------ #
    # Policy hook
    # ------------------------------------------------------------------ #
    def order(self, tasks: Sequence) -> List[int]:
        """Return task indices in dispatch order (fifo: planned order)."""
        return list(range(len(tasks)))

    # ------------------------------------------------------------------ #
    # Driver loop
    # ------------------------------------------------------------------ #
    def run(self, tasks: Sequence, session) -> Iterator[Tuple[int, MISRunResult]]:
        """Drive *session* over *tasks*, yielding ``(index, result)`` pairs.

        The generator owns dispatch only — opening and closing the session
        is the caller's job (see :class:`~repro.experiments.backends
        .ComposedBackend`), so an abandoned stream still tears the
        transport down deterministically.
        """
        pending = collections.deque(self.order(tasks))
        attempts = [0] * len(tasks)
        in_flight = 0
        while pending or in_flight:
            slots = session.slots
            if slots <= 0 and in_flight == 0:
                raise WorkerCrashError(
                    f"every execution slot was lost with {len(pending)} "
                    "task(s) still pending; nothing left to run them on"
                )
            while pending and in_flight < slots:
                index = pending.popleft()
                attempts[index] += 1
                session.submit(index, tasks[index])
                in_flight += 1
            if in_flight == 0:
                # Slots exist but nothing could be dispatched — impossible
                # unless the session lies about its slot count.
                raise WorkerCrashError(
                    "scheduler stalled: live slots reported but no task "
                    "could be dispatched (transport bug)"
                )
            event = session.next_event()
            kind, index = event[0], event[1]
            in_flight -= 1
            if kind == "result":
                yield index, event[2]
            elif kind == "error":
                raise event[2]
            elif kind == "lost":
                task = tasks[index]
                if attempts[index] >= self.max_attempts:
                    raise WorkerCrashError(
                        f"task {index} ({task.algorithm} on {task.family} "
                        f"n={task.n}) crashed its worker {attempts[index]} "
                        "times; giving up"
                    )
                # Requeue at the back: a healthy sibling slot may pick the
                # task up before the lost slot finishes being replaced.
                pending.append(index)
            else:  # pragma: no cover - defensive
                raise WorkerCrashError(f"unknown transport event {kind!r}")


class FifoScheduler(Scheduler):
    """Dispatch in planned-grid order (the historical behaviour)."""

    name = "fifo"


class LargeFirstScheduler(Scheduler):
    """Dispatch descending-n to cut the straggler tail on skewed grids.

    Sweep cost grows super-linearly in ``n`` while grids are emitted in
    ascending-n order, so fifo parks the most expensive tasks at the end
    — the final stretch of a parallel sweep is one slot grinding the
    largest graph while the others idle.  Longest-processing-time-first
    dispatch starts those tasks immediately and backfills slots with
    cheap small-n tasks, which is where the wall-clock win on the E1–E9
    grids comes from.  The sort is stable on the planned index, so the
    dispatch order is deterministic (results never depend on it anyway).
    """

    name = "large-first"

    def order(self, tasks: Sequence) -> List[int]:
        return sorted(range(len(tasks)), key=lambda i: (-tasks[i].n, i))


#: Registry of selectable scheduling policies (the CLI's ``--scheduler``).
SCHEDULERS: Dict[str, Type[Scheduler]] = {
    "fifo": FifoScheduler,
    "large-first": LargeFirstScheduler,
}


def available_schedulers() -> List[str]:
    """Scheduler names accepted by ``--scheduler`` / :func:`resolve_scheduler`."""
    return sorted(SCHEDULERS)


def resolve_scheduler(scheduler, max_attempts: int = 3) -> Scheduler:
    """Turn a scheduler selector into a scheduler object.

    ``None`` means fifo (the historical order); a string is looked up in
    :data:`SCHEDULERS`; anything else is assumed to already be a scheduler
    object and returned as-is.
    """
    if scheduler is None:
        return FifoScheduler(max_attempts=max_attempts)
    if isinstance(scheduler, str):
        if scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"unknown scheduler '{scheduler}'; known: "
                f"{available_schedulers()}"
            )
        return SCHEDULERS[scheduler](max_attempts=max_attempts)
    return scheduler
