"""Scheduling policies for the sweep execution layer.

The execution layer is split along two orthogonal axes:

* a **scheduler** (this module) owns *what runs when*: task ordering,
  retry/requeue of tasks whose execution slot died, crash-loop
  accounting, and surfacing worker errors; while
* a **transport** (:mod:`repro.experiments.transports`) owns *how bytes
  move*: carrying :class:`~repro.experiments.executor.SweepTask` frames
  to execution slots (in-process, a pool, worker subprocesses, or TCP
  workers on other hosts) and reporting completions and slot deaths.

A scheduler drives a :class:`~repro.experiments.transports
.TransportSession` through a small event loop: keep every available slot
fed in policy order, collect ``result``/``error``/``lost`` events, requeue
the in-flight task of a lost slot (at the back, so a healthy slot may pick
it up first), and give up with :class:`~repro.errors.WorkerCrashError`
once a task has crashed its slot :attr:`max_attempts` times or no live
slot remains.  Because every task's seeds were fixed up front by
:func:`~repro.experiments.executor.plan_sweep_tasks`, *no* scheduling
policy can affect a single result byte — policies only move wall-clock
time around.

The loop re-reads ``session.slots`` every iteration, and ``slots`` is a
*capacity*, not a worker count: the windowed framed transports report
the sum of their per-connection congestion windows, so as windows grow
(one increment per acked result — see :mod:`repro.experiments
.transports`) the same loop pipelines more frames into the same
connections with no scheduler-side changes.  A ``lost`` event may arrive
once per in-flight frame of a dead connection — the requeue path is the
same whether a loss costs one task or a whole window.

Policies
--------

``fifo`` (:class:`FifoScheduler`)
    Dispatch in planned-grid order.  The historical behaviour of every
    backend, and the reference the equivalence matrix pins.
``large-first`` (:class:`LargeFirstScheduler`)
    Dispatch in descending graph size ``n`` (ties in planned order).
    Sweep grids are emitted in ascending-n order, so under fifo the
    expensive large-n tail lands last and the sweep ends waiting on a
    single straggler slot; dispatching the large tasks first lets the
    small ones fill the tail — the classic LPT straggler cut on skewed
    grids.
``cost-model`` (:class:`CostModelScheduler`)
    LPT dispatch over a per-task cost *estimate* instead of raw ``n``.
    ``n`` alone misranks mixed grids: per-round simulation cost tracks
    the edge count, so a dense ``gnp_dense`` graph at n=64 costs more
    than a tree at n=256, and awake-MIS vs Luby cost diverges with
    family and degree rather than size (the node-averaged-awake
    comparisons run exactly such mixed grids).  Costs come from a small
    calibrated table — edges-proportional families carry their expected
    degree, n-proportional families (trees, paths) a constant — times a
    per-algorithm round factor.  When a family is missing from the
    table the policy degrades to ``large-first`` rather than guessing a
    scale.  Like every policy, it moves wall-clock only: results are
    byte-identical to fifo.
"""

from __future__ import annotations

import collections
import math
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Sequence, Tuple, Type)

from repro.errors import ConfigurationError, WorkerCrashError
from repro.experiments.harness import MISRunResult


class Scheduler:
    """Base scheduler: the slot-feeding event loop minus the policy.

    Subclasses override :meth:`order` to pick the dispatch order.  The
    loop guarantees every task is executed to completion exactly once (a
    requeued task re-executes, but only after its previous execution was
    lost with its slot), or raises.

    *max_attempts* bounds how many times one task may take a slot down
    with it before the run is abandoned with
    :class:`~repro.errors.WorkerCrashError` — without it a task that
    reliably crashes its worker (a genuine bug, an OOM) would burn
    through replacement slots forever.
    """

    #: Registry name ("fifo", "large-first"), set by subclasses.
    name = "fifo"

    def __init__(self, max_attempts: int = 3) -> None:
        if max_attempts < 1:
            raise ConfigurationError(
                f"invalid max_attempts {max_attempts!r}: need a positive int"
            )
        self.max_attempts = max_attempts
        #: Cumulative tasks re-dispatched after their slot died (one per
        #: ``lost`` event requeued) — the scheduler half of the transport
        #: telemetry, read by ``ComposedBackend.telemetry()``.
        self.requeues = 0

    # ------------------------------------------------------------------ #
    # Policy hook
    # ------------------------------------------------------------------ #
    def order(self, tasks: Sequence) -> List[int]:
        """Return task indices in dispatch order (fifo: planned order)."""
        return list(range(len(tasks)))

    # ------------------------------------------------------------------ #
    # Driver loop
    # ------------------------------------------------------------------ #
    def run(self, tasks: Sequence, session) -> Iterator[Tuple[int, MISRunResult]]:
        """Drive *session* over *tasks*, yielding ``(index, result)`` pairs.

        The generator owns dispatch only — opening and closing the session
        is the caller's job (see :class:`~repro.experiments.backends
        .ComposedBackend`), so an abandoned stream still tears the
        transport down deterministically.
        """
        pending = collections.deque(self.order(tasks))
        attempts = [0] * len(tasks)
        in_flight = 0
        while pending or in_flight:
            slots = session.slots
            if slots <= 0 and in_flight == 0:
                raise WorkerCrashError(
                    f"every execution slot was lost with {len(pending)} "
                    "task(s) still pending; nothing left to run them on"
                )
            while pending and in_flight < slots:
                index = pending.popleft()
                attempts[index] += 1
                session.submit(index, tasks[index])
                in_flight += 1
            if in_flight == 0:
                # Slots exist but nothing could be dispatched — impossible
                # unless the session lies about its slot count.
                raise WorkerCrashError(
                    "scheduler stalled: live slots reported but no task "
                    "could be dispatched (transport bug)"
                )
            event = session.next_event()
            kind, index = event[0], event[1]
            in_flight -= 1
            if kind == "result":
                yield index, event[2]
            elif kind == "error":
                raise event[2]
            elif kind == "lost":
                task = tasks[index]
                if attempts[index] >= self.max_attempts:
                    raise WorkerCrashError(
                        f"task {index} ({task.algorithm} on {task.family} "
                        f"n={task.n}) crashed its worker {attempts[index]} "
                        "times; giving up"
                    )
                # Requeue at the back: a healthy sibling slot may pick the
                # task up before the lost slot finishes being replaced.
                self.requeues += 1
                pending.append(index)
            else:  # pragma: no cover - defensive
                raise WorkerCrashError(f"unknown transport event {kind!r}")


class FifoScheduler(Scheduler):
    """Dispatch in planned-grid order (the historical behaviour)."""

    name = "fifo"


class LargeFirstScheduler(Scheduler):
    """Dispatch descending-n to cut the straggler tail on skewed grids.

    Sweep cost grows super-linearly in ``n`` while grids are emitted in
    ascending-n order, so fifo parks the most expensive tasks at the end
    — the final stretch of a parallel sweep is one slot grinding the
    largest graph while the others idle.  Longest-processing-time-first
    dispatch starts those tasks immediately and backfills slots with
    cheap small-n tasks, which is where the wall-clock win on the E1–E9
    grids comes from.  The sort is stable on the planned index, so the
    dispatch order is deterministic (results never depend on it anyway).
    """

    name = "large-first"

    def order(self, tasks: Sequence) -> List[int]:
        return sorted(range(len(tasks)), key=lambda i: (-tasks[i].n, i))


def _log_n(n: int) -> float:
    """``log2(n)`` clamped away from the degenerate tiny-n cases."""
    return math.log2(max(2, n))


#: Expected average degree per graph family, the calibrated half of the
#: cost model.  Per-round simulation cost is edge-driven, so an
#: edges-proportional family (gnp, regular, powerlaw, ...) carries its
#: generator's expected degree while the n-proportional families (trees,
#: paths — one edge per node) carry the constant 2.  The clique's degree
#: grows with n, hence the callables.  Values mirror the defaults baked
#: into :data:`repro.graphs.generators.FAMILIES`; precision is not the
#: point — only the *ranking* of estimated costs affects anything, and
#: no ranking can affect a result byte.
#:
#: Each model takes ``(n, params)``, where *params* is the task's
#: parameter mapping: a task that overrides the generator's density
#: (``p``/``expected_degree``/``degree``/``attachments``/``clique_size``)
#: must be ranked at the density it will actually run at, not at the
#: family default — ignoring params misorders exactly the dense grids
#: the cost model exists for.


def _param_degree(params: Dict[str, Any], n: int, default: float) -> float:
    """Expected degree honouring a task's density overrides, if any."""
    p = params.get("p")
    if p is not None:
        return max(1.0, float(p) * max(1, n - 1))
    expected = params.get("expected_degree")
    if expected is not None:
        return max(1.0, float(expected))
    return default


FAMILY_DEGREE_MODELS: Dict[str, Callable[[int, Dict[str, Any]], float]] = {
    "gnp": lambda n, params: _param_degree(params, n, 8.0),
    "gnp_dense": lambda n, params: _param_degree(params, n, 32.0),
    "rgg": lambda n, params: _param_degree(params, n, 8.0),
    "regular": lambda n, params: float(params.get("degree", 6.0)),
    # BA attachments=k -> average degree ~2k
    "powerlaw": lambda n, params: 2.0 * float(params.get("attachments", 3)),
    # k-cliques -> in-clique degree k - 1
    "caveman": lambda n, params: float(params.get("clique_size", 8)) - 1.0,
    "clique": lambda n, params: float(max(1, n - 1)),
    "tree": lambda n, params: 2.0,
    "path": lambda n, params: 2.0,
    "cycle": lambda n, params: 2.0,
    "star": lambda n, params: 2.0,
}

#: Round-count factor per algorithm: how many simulated rounds a run
#: takes as a function of n.  Luby-style algorithms terminate in
#: O(log n) rounds; the virtual-tree / LDT / awake-MIS constructions pay
#: an extra log factor of machinery (their *awake* complexity is what is
#: low, not their simulated round count); the naive greedy processes one
#: node per round.  Unlisted algorithms fall back to the log-n default.
ALGORITHM_ROUND_MODELS: Dict[str, Callable[[int], float]] = {
    "luby": _log_n,
    "rank_greedy": _log_n,
    "naive_greedy": lambda n: float(max(1, n)),
    "vt_mis": lambda n: _log_n(n) ** 2,
    "ldt_mis": lambda n: _log_n(n) ** 2,
    "awake_mis": lambda n: _log_n(n) ** 2,
}


def estimate_task_cost(task) -> Optional[float]:
    """Estimated execution cost of one task, or ``None`` if unknown.

    ``cost = n x expected_degree(family, n, params) x rounds(algorithm,
    n)`` — i.e. edges processed per round times rounds.  The task's
    ``params`` are threaded into the degree model so density overrides
    (``p=0.5`` on a ``gnp`` grid, say) rank at their real cost instead
    of the family default.  An unknown *family* returns ``None`` (the
    scheduler then falls back to ``large-first`` for the whole grid); an
    unknown *algorithm* just uses the log-n round default, because the
    family/degree term dominates the skew the model exists to capture.
    """
    degree_model = FAMILY_DEGREE_MODELS.get(task.family)
    if degree_model is None:
        return None
    params = dict(getattr(task, "params", ()) or ())
    rounds_model = ALGORITHM_ROUND_MODELS.get(task.algorithm, _log_n)
    try:
        degree = degree_model(task.n, params)
    except (TypeError, ValueError):
        return None
    return task.n * degree * rounds_model(task.n)


class CostModelScheduler(Scheduler):
    """LPT dispatch over estimated cost: family × algorithm × n, not n alone.

    ``large-first`` assumes cost is monotone in ``n``, which mixed-family
    grids break: per-round cost tracks the *edge* count, so
    ``gnp_dense`` at n=64 (~1024 edges, log² rounds for awake-MIS)
    outweighs a tree at n=256 (255 edges) — under large-first the dense
    graph would be parked near the tail and become the straggler.  This
    policy sorts by :func:`estimate_task_cost` descending (ties in
    planned order, so dispatch is deterministic); if any task's family
    is missing from the calibration table the whole ordering degrades to
    ``large-first`` rather than interleaving guessed and calibrated
    scales.  Results can never depend on the estimate — seeds are fixed
    at planning time — so a miscalibrated entry costs wall-clock only.
    """

    name = "cost-model"

    def order(self, tasks: Sequence) -> List[int]:
        costs = [estimate_task_cost(task) for task in tasks]
        if any(cost is None for cost in costs):
            return LargeFirstScheduler.order(self, tasks)
        return sorted(range(len(tasks)), key=lambda i: (-costs[i], i))


#: Registry of selectable scheduling policies (the CLI's ``--scheduler``).
SCHEDULERS: Dict[str, Type[Scheduler]] = {
    "fifo": FifoScheduler,
    "large-first": LargeFirstScheduler,
    "cost-model": CostModelScheduler,
}


def available_schedulers() -> List[str]:
    """Scheduler names accepted by ``--scheduler`` / :func:`resolve_scheduler`."""
    return sorted(SCHEDULERS)


def resolve_scheduler(scheduler, max_attempts: int = 3) -> Scheduler:
    """Turn a scheduler selector into a scheduler object.

    ``None`` means fifo (the historical order); a string is looked up in
    :data:`SCHEDULERS`; anything else is assumed to already be a scheduler
    object and returned as-is.
    """
    if scheduler is None:
        return FifoScheduler(max_attempts=max_attempts)
    if isinstance(scheduler, str):
        if scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"unknown scheduler '{scheduler}'; known: "
                f"{available_schedulers()}"
            )
        return SCHEDULERS[scheduler](max_attempts=max_attempts)
    return scheduler
