"""Plain-text tables and series for experiment reports.

Everything the benchmarks and examples print goes through these helpers so
the output format is uniform: a fixed-width text table (readable in CI logs)
plus an optional CSV string for further processing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


def format_table(rows: Sequence[Dict[str, Any]],
                 columns: Optional[Sequence[str]] = None,
                 title: str = "") -> str:
    """Render *rows* (list of dicts) as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column])
                       for column in columns)
        )
    return "\n".join(lines)


def format_csv(rows: Sequence[Dict[str, Any]],
               columns: Optional[Sequence[str]] = None) -> str:
    """Render *rows* as CSV text."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(c) for c in columns)]
    for row in rows:
        lines.append(",".join(str(row.get(column, "")) for column in columns))
    return "\n".join(lines)


def format_series(series: Iterable[Tuple[Any, Any]], x_label: str = "n",
                  y_label: str = "value", title: str = "") -> str:
    """Render an (x, y) series as a small two-column table."""
    rows = [{x_label: x, y_label: y} for x, y in series]
    return format_table(rows, columns=[x_label, y_label], title=title)


def render_sweep(sweep, title: str = "sweep results",
                 fit_metric: str = "awake_max") -> str:
    """Render a sweep's rows plus its growth-law fits as one text block.

    Shared by ``repro-mis sweep`` (live results) and ``repro-mis report``
    (results rebuilt from an on-disk store), so both code paths print the
    same artefact for the same data.  *sweep* is anything exposing
    ``rows()`` and ``fits(metric)`` (a
    :class:`~repro.experiments.sweeps.SweepResult`).
    """
    parts = [format_table(sweep.rows(), title=title)]
    fits = sweep.fits(fit_metric)
    if fits:
        parts.append("")
        parts.append(format_table(fits, title=f"growth-law fits ({fit_metric})"))
    return "\n".join(parts)


def format_telemetry(telemetry: Dict[str, Any],
                     title: str = "transport telemetry") -> str:
    """Render a backend telemetry block as a per-worker text table.

    *telemetry* is the dict ``ComposedBackend.telemetry()`` /
    ``Transport.telemetry()`` returns (see :mod:`repro.experiments
    .telemetry`): per-worker RTT estimates and frame/ack/batch/requeue/
    reconnect/byte counters, plus transport-level restarts and the
    scheduler's requeue accounting.  The CLI prints this to *stderr*
    under ``--progress`` — the stdout table stays byte-identical with
    and without it.
    """
    if not telemetry:
        return f"{title}\n(no telemetry)"
    scheduler = telemetry.get("scheduler") or {}
    header = (f"{title} ({telemetry.get('transport', '?')} transport"
              + (f", {scheduler.get('name')} scheduler" if scheduler else "")
              + ")")
    graph_cache = telemetry.get("graph_cache")
    cache_line = ""
    if graph_cache:
        cache_line = ("graph cache"
                      f" hits={graph_cache.get('hits', 0)}"
                      f" misses={graph_cache.get('misses', 0)}"
                      f" evictions={graph_cache.get('evictions', 0)}"
                      f" shared_hits={graph_cache.get('shared_hits', 0)}"
                      f" maxsize={graph_cache.get('maxsize', 0)}")
    workers = telemetry.get("workers") or []
    if not workers:
        text = (f"{header}\n(no framed connections — per-connection "
                "counters exist only for the subprocess and socket "
                "transports)")
        return f"{text}\n{cache_line}" if cache_line else text
    columns = ["worker", "connections", "frames_sent", "tasks_sent",
               "batches_sent", "acks", "slow_acks", "requeues",
               "reconnects", "srtt_ms", "rttvar_ms", "peak_window",
               "bytes_sent", "bytes_received"]
    if any(row.get("worker_pids") for row in workers):
        # With process-backed slots these are the slot subprocess pids —
        # one worker address may fan out to several executing processes.
        workers = [dict(row, worker_pids=",".join(
            str(pid) for pid in row.get("worker_pids") or [])) for row in workers]
        columns.insert(1, "worker_pids")
    parts = [format_table(workers, columns=columns, title=header)]
    summary = (f"transport restarts={telemetry.get('restarts', 0)} "
               f"peak_window={telemetry.get('peak_window', 1)}")
    if scheduler:
        summary += f" scheduler requeues={scheduler.get('requeues', 0)}"
    if cache_line:
        summary += f"\n{cache_line}"
    parts.append(summary)
    return "\n".join(parts)


def ascii_plot(series: Sequence[Tuple[float, float]], width: int = 48,
               label: str = "") -> str:
    """Render a crude horizontal-bar plot of an (x, y) series.

    Useful in terminal output to eyeball the growth shape (flat vs
    logarithmic vs linear) without any plotting dependency.
    """
    if not series:
        return "(empty series)"
    maximum = max(y for _, y in series) or 1.0
    lines = [label] if label else []
    for x, y in series:
        bar = "#" * max(1, int(round(width * (y / maximum)))) if y > 0 else ""
        lines.append(f"{str(x).rjust(8)} | {bar} {y}")
    return "\n".join(lines)
