"""Parameter sweeps over graph size / family / algorithm.

A sweep runs :func:`repro.experiments.harness.run_mis` over a grid of
``(algorithm, graph family, n, seed)`` combinations and aggregates the
paper-relevant metrics (awake complexity, node-averaged awake complexity,
round complexity, MIS size, verification) per grid cell.  The scaling
experiments E1–E4 are thin wrappers around these sweeps.

Execution is delegated to :mod:`repro.experiments.executor`: the grid is
expanded into seed-carrying task specs up front, then run either in-process
(``jobs=1``) or across a process pool (``jobs>1``) with bit-identical
results either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.fitting import fit_report
from repro.analysis.stats import summarize
from repro.experiments.executor import execute_tasks, plan_sweep_tasks
from repro.experiments.harness import MISRunResult
from repro.rng import SeedLike


@dataclass
class SweepCell:
    """Aggregated results of all repetitions for one (algorithm, family, n)."""

    algorithm: str
    family: str
    n: int
    runs: List[MISRunResult] = field(default_factory=list)

    @property
    def awake_complexities(self) -> List[int]:
        return [r.metrics.awake_complexity for r in self.runs]

    @property
    def round_complexities(self) -> List[int]:
        return [r.metrics.round_complexity for r in self.runs]

    @property
    def all_verified(self) -> bool:
        return all(r.verified for r in self.runs)

    def row(self) -> Dict[str, Any]:
        """One table row summarising this cell."""
        awake = summarize(self.awake_complexities)
        rounds = summarize(self.round_complexities)
        averaged = summarize([r.metrics.node_averaged_awake for r in self.runs])
        sizes = summarize([len(r.mis) for r in self.runs])
        return {
            "algorithm": self.algorithm,
            "family": self.family,
            "n": self.n,
            "runs": len(self.runs),
            "verified": self.all_verified,
            "awake_mean": round(awake.mean, 2),
            "awake_max": awake.maximum,
            "avg_awake_mean": round(averaged.mean, 2),
            "rounds_mean": round(rounds.mean, 1),
            "mis_size_mean": round(sizes.mean, 1),
        }


@dataclass
class SweepResult:
    """All cells of one sweep, with helpers for tables and fits."""

    cells: List[SweepCell] = field(default_factory=list)

    def rows(self) -> List[Dict[str, Any]]:
        """Table rows ordered by (algorithm, family, n)."""
        ordered = sorted(self.cells, key=lambda c: (c.algorithm, c.family, c.n))
        return [cell.row() for cell in ordered]

    def series(self, algorithm: str, family: str,
               metric: str = "awake_max") -> List[tuple]:
        """Return the (n, value) series for one algorithm/family pair."""
        points = []
        for cell in sorted(self.cells, key=lambda c: c.n):
            if cell.algorithm != algorithm or cell.family != family:
                continue
            points.append((cell.n, cell.row()[metric]))
        return points

    def fits(self, metric: str = "awake_max") -> List[Dict[str, Any]]:
        """Best growth-law fit per (algorithm, family) for *metric*."""
        reports = []
        pairs = sorted({(c.algorithm, c.family) for c in self.cells})
        for algorithm, family in pairs:
            series = self.series(algorithm, family, metric)
            if len(series) < 2:
                continue
            ns = [n for n, _ in series]
            values = [v for _, v in series]
            report = {"algorithm": algorithm, "family": family, "metric": metric}
            report.update(fit_report(ns, values))
            reports.append(report)
        return reports

    @property
    def all_verified(self) -> bool:
        return all(cell.all_verified for cell in self.cells)


def run_sweep(
    algorithms: Sequence[str],
    sizes: Sequence[int],
    families: Sequence[str] = ("gnp",),
    repetitions: int = 3,
    seed: SeedLike = None,
    algorithm_params: Optional[Dict[str, Dict[str, Any]]] = None,
    jobs: Optional[int] = 1,
) -> SweepResult:
    """Run the full grid and return a :class:`SweepResult`.

    *algorithm_params* optionally maps algorithm name to extra keyword
    arguments for :func:`~repro.experiments.harness.run_mis` (e.g.
    ``{"awake_mis": {"preset": "scaled"}}``).

    *jobs* selects how many worker processes execute the grid: ``1``
    (default) runs in-process, ``None``/``0`` uses one worker per CPU.
    Because every task's seeds are derived up front by
    :func:`~repro.experiments.executor.plan_sweep_tasks`, the returned
    cells, rows and fits are identical for every value of *jobs*.
    """
    tasks = plan_sweep_tasks(
        algorithms=algorithms,
        sizes=sizes,
        families=families,
        repetitions=repetitions,
        seed=seed,
        algorithm_params=algorithm_params,
    )
    runs = execute_tasks(tasks, jobs=jobs)

    result = SweepResult()
    cells: Dict[Tuple[str, str, int], SweepCell] = {}
    for task, run in zip(tasks, runs):
        cell = cells.get(task.cell_key)
        if cell is None:
            cell = SweepCell(algorithm=task.algorithm, family=task.family,
                             n=task.n)
            cells[task.cell_key] = cell
            result.cells.append(cell)
        cell.runs.append(run)
    return result
