"""Parameter sweeps over graph size / family / algorithm.

A sweep runs :func:`repro.experiments.harness.run_mis` over a grid of
``(algorithm, graph family, n, seed)`` combinations and aggregates the
paper-relevant metrics (awake complexity, node-averaged awake complexity,
round complexity, MIS size, verification) per grid cell.  The scaling
experiments E1–E5 and E9 are thin wrappers around these sweeps.

Execution is delegated to :mod:`repro.experiments.executor`: the grid is
expanded into seed-carrying task specs up front, then streamed through a
pluggable execution backend — a scheduler × transport composition
(in-process by default for ``jobs=1``, a process pool for ``jobs>1``, or
any of ``backend="serial"|"thread"|"process"|"async"|"socket"`` / an
explicit :class:`~repro.experiments.backends.ComposedBackend`, e.g.
large-first dispatch over TCP workers) with bit-identical results on
every combination.  Aggregation is **incremental**: each
:class:`SweepCell` folds results into running :class:`MetricAccumulator`
counters as they arrive, so a sweep's memory footprint no longer grows with
the grid size (pass ``keep_runs=True`` — the default for direct callers —
to also retain the raw :class:`MISRunResult` list).

With ``store=`` a :class:`~repro.experiments.store.ResultStore`, every
result is persisted the moment it completes, and ``resume=True`` replays
already-recorded tasks from disk instead of re-running them — an
interrupted ``full``-scale grid continues where it died, with rows and fits
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.analysis.fitting import fit_report
from repro.errors import ConfigurationError
from repro.experiments.executor import (BackendLike, ProgressCallback,
                                        iter_indexed_results,
                                        plan_sweep_tasks)
from repro.experiments.harness import MISRunResult
from repro.rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store uses sweeps)
    from repro.experiments.store import ResultStore


@dataclass
class MetricAccumulator:
    """Running count/sum/min/max of one scalar metric.

    Replaces "hold every value, summarise at the end": a cell folds each
    run's value in as it arrives and can produce the same mean/max/min the
    old list-based :func:`repro.analysis.stats.summarize` computed, in O(1)
    memory.  Values are accumulated as floats in fold order, so folding in
    task order reproduces the historical sums bit-for-bit.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the folded values (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count


@dataclass
class SweepCell:
    """Aggregated results of all repetitions for one (algorithm, family, n).

    Aggregation is incremental: :meth:`add` folds a run into per-metric
    :class:`MetricAccumulator` counters, so :meth:`row` never needs the raw
    run list.  When *keep_runs* is true (the compatibility default) the
    :class:`MISRunResult` objects are additionally retained in ``runs`` for
    callers that inspect them; streaming consumers (the registry
    experiments, the CLI) pass ``keep_runs=False`` and hold only the
    counters.
    """

    algorithm: str
    family: str
    n: int
    runs: List[MISRunResult] = field(default_factory=list)
    keep_runs: bool = True
    run_count: int = field(default=0, repr=False)
    verified_all: bool = field(default=True, repr=False)
    awake: MetricAccumulator = field(default_factory=MetricAccumulator,
                                     repr=False)
    rounds: MetricAccumulator = field(default_factory=MetricAccumulator,
                                      repr=False)
    averaged_awake: MetricAccumulator = field(
        default_factory=MetricAccumulator, repr=False)
    mis_size: MetricAccumulator = field(default_factory=MetricAccumulator,
                                        repr=False)

    def __post_init__(self) -> None:
        # Compatibility: fold runs supplied at construction time.
        preloaded, self.runs = self.runs, []
        for run in preloaded:
            self.add(run)

    def add(self, run: MISRunResult) -> None:
        """Fold one run into the cell's accumulators."""
        self.run_count += 1
        self.verified_all = self.verified_all and run.verified
        self.awake.add(run.metrics.awake_complexity)
        self.rounds.add(run.metrics.round_complexity)
        self.averaged_awake.add(run.metrics.node_averaged_awake)
        self.mis_size.add(len(run.mis))
        if self.keep_runs:
            self.runs.append(run)

    def _require_runs(self) -> None:
        if not self.keep_runs and self.run_count:
            raise ConfigurationError(
                "raw runs were dropped (keep_runs=False); per-run values are "
                "unavailable — use the cell's aggregate accumulators "
                "(awake/rounds/averaged_awake/mis_size) or re-run the sweep "
                "with keep_runs=True"
            )

    @property
    def awake_complexities(self) -> List[int]:
        self._require_runs()
        return [r.metrics.awake_complexity for r in self.runs]

    @property
    def round_complexities(self) -> List[int]:
        self._require_runs()
        return [r.metrics.round_complexity for r in self.runs]

    @property
    def all_verified(self) -> bool:
        return self.verified_all

    def row(self) -> Dict[str, Any]:
        """One table row summarising this cell."""
        empty = self.run_count == 0
        return {
            "algorithm": self.algorithm,
            "family": self.family,
            "n": self.n,
            "runs": self.run_count,
            "verified": self.all_verified,
            "awake_mean": round(self.awake.mean, 2),
            "awake_max": 0.0 if empty else self.awake.maximum,
            "avg_awake_mean": round(self.averaged_awake.mean, 2),
            "rounds_mean": round(self.rounds.mean, 1),
            "mis_size_mean": round(self.mis_size.mean, 1),
        }


@dataclass
class SweepResult:
    """All cells of one sweep, with helpers for tables and fits."""

    cells: List[SweepCell] = field(default_factory=list)
    #: Pipeline telemetry captured from the execution backend after the
    #: sweep (``ComposedBackend.telemetry()``: per-worker RTT/window/
    #: frame counters plus scheduler requeues), or ``None`` when the
    #: backend exposes none (string aliases resolved internally, plain
    #: pools).  Observational only — never part of rows/fits, and
    #: excluded from equality so telemetry can never make two
    #: byte-identical sweeps compare unequal.
    telemetry: Optional[Dict[str, Any]] = field(default=None, repr=False,
                                                compare=False)

    def cell_for(self, algorithm: str, family: str, n: int,
                 keep_runs: bool = True) -> SweepCell:
        """Return (creating on first touch) the cell for one grid point."""
        for cell in self.cells:
            if (cell.algorithm, cell.family, cell.n) == (algorithm, family, n):
                return cell
        cell = SweepCell(algorithm=algorithm, family=family, n=n,
                         keep_runs=keep_runs)
        self.cells.append(cell)
        return cell

    def rows(self) -> List[Dict[str, Any]]:
        """Table rows ordered by (algorithm, family, n)."""
        ordered = sorted(self.cells, key=lambda c: (c.algorithm, c.family, c.n))
        return [cell.row() for cell in ordered]

    def series(self, algorithm: str, family: str,
               metric: str = "awake_max") -> List[tuple]:
        """Return the (n, value) series for one algorithm/family pair."""
        points = []
        for cell in sorted(self.cells, key=lambda c: c.n):
            if cell.algorithm != algorithm or cell.family != family:
                continue
            points.append((cell.n, cell.row()[metric]))
        return points

    def fits(self, metric: str = "awake_max") -> List[Dict[str, Any]]:
        """Best growth-law fit per (algorithm, family) for *metric*."""
        reports = []
        pairs = sorted({(c.algorithm, c.family) for c in self.cells})
        for algorithm, family in pairs:
            series = self.series(algorithm, family, metric)
            if len(series) < 2:
                continue
            ns = [n for n, _ in series]
            values = [v for _, v in series]
            report = {"algorithm": algorithm, "family": family, "metric": metric}
            report.update(fit_report(ns, values))
            reports.append(report)
        return reports

    @property
    def all_verified(self) -> bool:
        return all(cell.all_verified for cell in self.cells)


def _sweep_config(algorithms, sizes, families, repetitions, seed,
                  algorithm_params) -> Dict[str, Any]:
    """Canonical JSON-safe description of a sweep grid (store header)."""
    return {
        "algorithms": list(algorithms),
        "sizes": [int(n) for n in sizes],
        "families": list(families),
        "repetitions": int(repetitions),
        "seed": seed if isinstance(seed, (int, str, type(None))) else repr(seed),
        "algorithm_params": {
            name: dict(sorted(params.items()))
            for name, params in sorted((algorithm_params or {}).items())
        },
    }


def run_sweep(
    algorithms: Sequence[str],
    sizes: Sequence[int],
    families: Sequence[str] = ("gnp",),
    repetitions: int = 3,
    seed: SeedLike = None,
    algorithm_params: Optional[Dict[str, Dict[str, Any]]] = None,
    jobs: Optional[int] = 1,
    keep_runs: bool = True,
    store: Optional["ResultStore"] = None,
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
    backend: BackendLike = None,
) -> SweepResult:
    """Run the full grid and return a :class:`SweepResult`.

    *algorithm_params* optionally maps algorithm name to extra keyword
    arguments for :func:`~repro.experiments.harness.run_mis` (e.g.
    ``{"awake_mis": {"preset": "scaled"}}``).

    *jobs* selects how many workers execute the grid: ``1`` (default) runs
    in-process, ``None``/``0`` uses one worker per CPU.  *backend* selects
    the execution backend (``"serial"``, ``"thread"``, ``"process"``,
    ``"async"``, ``"socket"`` or a :class:`~repro.experiments.backends
    .Backend` object — e.g. :class:`~repro.experiments.backends
    .ComposedBackend` pairing a scheduling policy with a transport);
    ``None`` keeps the jobs-driven default of in-process vs process pool.

    *keep_runs* controls whether cells retain the raw
    :class:`MISRunResult` objects besides their running aggregates; pass
    ``False`` for large grids so memory stays flat.

    *store* (a :class:`~repro.experiments.store.ResultStore` or
    :class:`~repro.experiments.store.ShardedResultStore`) persists every
    result as it completes; with *resume* also true, tasks whose spec hash
    is already recorded are **not** re-executed — their stored compact
    metrics are replayed into the aggregation instead.  *progress* is
    forwarded to the executor and fires only for tasks that actually run.

    Determinism: every task's seeds are derived up front by
    :func:`~repro.experiments.executor.plan_sweep_tasks`, and arrivals are
    folded back into planned-grid order before aggregation, so the returned
    cells, rows and fits are byte-identical for every value of *jobs*, for
    every backend, for every shard count — and for any interleaving of
    stored and freshly executed tasks.
    """
    tasks = plan_sweep_tasks(
        algorithms=algorithms,
        sizes=sizes,
        families=families,
        repetitions=repetitions,
        seed=seed,
        algorithm_params=algorithm_params,
    )

    # index -> offset token of the stored record, for tasks satisfied from
    # the store (a byte offset for a single-file store, a (shard, offset)
    # pair for a sharded one — opaque here).  Offsets, not restored
    # results: each replayed record is re-read only when the fold reaches
    # its grid position, so a resumed sweep's memory stays as flat as a
    # live one.
    replay_offsets: Dict[int, Any] = {}
    pending_indices = list(range(len(tasks)))
    if store is not None:
        from repro.experiments.store import task_key

        store.ensure_header(
            _sweep_config(algorithms, sizes, families, repetitions, seed,
                          algorithm_params),
            resume=resume,
        )
        if resume:
            offsets = store.result_offsets()
            pending_indices = []
            for index, task in enumerate(tasks):
                offset = offsets.get(task_key(task))
                if offset is None:
                    pending_indices.append(index)
                else:
                    replay_offsets[index] = offset

    result = SweepResult()
    # Fold strictly in planned-grid order: arrivals (completion-ordered under
    # jobs>1) wait in a small reorder buffer of compact results until every
    # earlier task has been folded.  This is what keeps float accumulation —
    # and therefore rows and fits — byte-identical across jobs values,
    # arrival orders and resume.
    buffer: Dict[int, MISRunResult] = {}
    next_index = 0

    def drain() -> None:
        nonlocal next_index
        while True:
            if next_index in replay_offsets:
                run = store.result_at(replay_offsets.pop(next_index))
            elif next_index in buffer:
                run = buffer.pop(next_index)
            else:
                break
            task = tasks[next_index]
            cell = result.cell_for(task.algorithm, task.family, task.n,
                                   keep_runs=keep_runs)
            cell.add(run)
            next_index += 1

    drain()
    pending = [tasks[index] for index in pending_indices]
    local_to_global = {local: global_index
                       for local, global_index in enumerate(pending_indices)}
    for local_index, task, run in iter_indexed_results(pending, jobs=jobs,
                                                       progress=progress,
                                                       backend=backend):
        global_index = local_to_global[local_index]
        if store is not None:
            store.append(global_index, task, run)
        buffer[global_index] = run
        drain()
    drain()
    # Attach the backend's pipeline telemetry (when it exposes any) so
    # callers holding only the SweepResult — the CLI's --progress table,
    # library consumers — can see what the transport actually did.
    telemetry = getattr(backend, "telemetry", None)
    if callable(telemetry):
        result.telemetry = telemetry()
    return result
