"""Transport telemetry: RTT estimation and per-connection counters.

The framed transports (:mod:`repro.experiments.transports`) used to tune
their pipelining off a single hand-set constant (``ack_timeout``) and
reported almost nothing about what the pipeline actually did — at odds
with a reproduction whose whole point is *measuring* a cost dimension
other accountings ignore.  This module closes both gaps:

:class:`RttEstimator`
    The Jacobson/Karels smoothed round-trip estimator (the TCP-Reno
    idiom, RFC 6298 shape): an EWMA of the round-trip time (``srtt``,
    gain 1/8) plus an EWMA of its deviation (``rttvar``, gain 1/4),
    combined into a retransmission-timeout analogue
    ``rto = srtt + 4 * rttvar``.  One estimator per connection, fed one
    sample per acked frame; the transport derives its slow-ack threshold
    and batch-flush pacing from it instead of a fixed constant.
:class:`ConnectionStats`
    Per-connection counters (frames/tasks/batches sent, acks, requeues,
    reconnects, slow acks, bytes both ways, current/peak window) plus the
    connection's estimator.  Written by exactly one slot thread, read by
    anyone via :meth:`ConnectionStats.snapshot`.
:func:`aggregate_by_worker`
    Folds connection snapshots into one row per worker address — the
    per-worker stats table surfaced by ``--progress``, the sweep result
    and the benchmark matrix.

Telemetry is strictly observational and the RTT estimate only retunes
*timing* (when to halve a window, how long to hold a partial batch) —
neither can touch a result byte, which the equivalence matrix in
``tests/test_executor.py`` continues to pin.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

#: EWMA gain for the smoothed RTT (Jacobson/Karels' 1/8).
RTT_ALPHA = 0.125

#: EWMA gain for the RTT deviation (Jacobson/Karels' 1/4).
RTT_BETA = 0.25

#: Deviation multiplier in the timeout formula (``srtt + K * rttvar``).
RTT_K = 4.0

#: Samples required before the estimator is trusted to *retune* anything.
#: The first few round trips of a connection are polluted by one-time
#: costs (connect, handshake, first graph build), so thresholds derived
#: from them would thrash the window before the estimate settles.
RTT_PRIME_SAMPLES = 4

#: Floor for any RTT-derived threshold, in seconds.  Sub-millisecond
#: links (loopback, pipes) produce estimates so tight that scheduler
#: jitter alone would read as congestion; no real stall is shorter than
#: this.
RTT_MIN_THRESHOLD = 0.010

#: Bounds on the batch-flush hold (seconds): long enough to let in-flight
#: acks free window space for a fuller batch, never long enough to park a
#: partial batch behind one slow task.
FLUSH_HOLD_MIN = 0.001
FLUSH_HOLD_MAX = 0.25

#: Hold applied before the estimator is primed (seconds) — the same
#: order as the historical 1ms inbox cork.
FLUSH_HOLD_DEFAULT = 0.005


class RttEstimator:
    """Jacobson/Karels smoothed round-trip-time estimator.

    Classic TCP-Reno sender idiom: the first sample initialises
    ``srtt = sample`` and ``rttvar = sample / 2``; every later sample
    folds in as::

        rttvar = (1 - beta) * rttvar + beta * |srtt - sample|
        srtt   = (1 - alpha) * srtt + alpha * sample

    (deviation updated against the *old* srtt, per the original paper).
    ``rto`` is the ``srtt + 4 * rttvar`` timeout analogue the transport
    uses as its self-calibrated slow-ack threshold.
    """

    __slots__ = ("srtt", "rttvar", "samples", "min_rtt", "max_rtt")

    def __init__(self) -> None:
        self.srtt = 0.0
        self.rttvar = 0.0
        self.samples = 0
        self.min_rtt = math.inf
        self.max_rtt = 0.0

    def observe(self, sample: float) -> None:
        """Fold one measured round trip (seconds) into the estimate."""
        sample = max(0.0, float(sample))
        if self.samples == 0:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = ((1.0 - RTT_BETA) * self.rttvar
                           + RTT_BETA * abs(self.srtt - sample))
            self.srtt = (1.0 - RTT_ALPHA) * self.srtt + RTT_ALPHA * sample
        self.samples += 1
        if sample < self.min_rtt:
            self.min_rtt = sample
        if sample > self.max_rtt:
            self.max_rtt = sample

    @property
    def rto(self) -> float:
        """``srtt + K * rttvar`` — the raw timeout analogue (seconds)."""
        return self.srtt + RTT_K * self.rttvar

    @property
    def primed(self) -> bool:
        """Whether enough samples arrived to trust derived thresholds."""
        return self.samples >= RTT_PRIME_SAMPLES

    def slow_threshold(self) -> Optional[float]:
        """Self-calibrated slow-ack threshold, or ``None`` until primed.

        A blocked read longer than this reads as congestion (the worker
        or the link is saturated) and halves the window.  Floored at
        :data:`RTT_MIN_THRESHOLD` so loopback-tight estimates cannot
        read scheduler jitter as congestion, and never below twice the
        smoothed RTT — an ack cannot be "slow" at the speed acks
        normally arrive.
        """
        if not self.primed:
            return None
        return max(self.rto, 2.0 * self.srtt, RTT_MIN_THRESHOLD)

    def flush_hold(self) -> float:
        """How long a partial batch may wait for more window (seconds).

        While frames are in flight, holding a partial batch lets the acks
        that arrive meanwhile free window space so more tasks ride the
        same frame.  The productive hold is one deviation-padded round
        trip — any longer and the batch is waiting on a *task*, not on
        acks.  Before the estimator is primed a small fixed hold applies.
        """
        if not self.primed:
            return FLUSH_HOLD_DEFAULT
        return min(max(self.srtt + 2.0 * self.rttvar, FLUSH_HOLD_MIN),
                   FLUSH_HOLD_MAX)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe summary (milliseconds, rounded for readability).

        ``primed`` distinguishes a trustworthy smoothed RTT from a
        1-sample guess: aggregation weights only primed estimators into
        worker means, so one cold connection cannot drag a worker's
        reported latency around.
        """
        return {
            "samples": self.samples,
            "primed": self.primed,
            "srtt_ms": round(self.srtt * 1000.0, 3),
            "rttvar_ms": round(self.rttvar * 1000.0, 3),
            "rto_ms": round(self.rto * 1000.0, 3),
            "min_rtt_ms": (round(self.min_rtt * 1000.0, 3)
                           if self.samples else None),
            "max_rtt_ms": (round(self.max_rtt * 1000.0, 3)
                           if self.samples else None),
        }


class ConnectionStats:
    """Counters for one transport connection (one slot thread).

    Every field is written by exactly one slot thread; readers (the
    telemetry surfaces) only take :meth:`snapshot`, and a snapshot taken
    mid-sweep may be one frame stale — fine for observability, which is
    all this is.  No locks: single-writer plus atomic int/float reads.
    """

    __slots__ = ("label", "slot", "rtt", "frames_sent", "tasks_sent",
                 "batches_sent", "acks", "slow_acks", "requeues",
                 "reconnects", "bytes_sent", "bytes_received", "window",
                 "peak_window", "worker_pid")

    def __init__(self, label: str, slot: int) -> None:
        self.label = label
        self.slot = slot
        self.rtt = RttEstimator()
        self.frames_sent = 0
        self.tasks_sent = 0
        self.batches_sent = 0
        self.acks = 0
        self.slow_acks = 0
        self.requeues = 0
        self.reconnects = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.window = 1
        self.peak_window = 1
        self.worker_pid: Optional[int] = None

    def note_peer(self, pid: Optional[int]) -> None:
        """Record the serving peer's pid from its hello frame.

        With process-backed worker slots this is the *slot subprocess*
        pid (the hello is sent by whatever executes the tasks), so
        telemetry rows name the actual process doing the work — distinct
        from the worker's serving/accepting process.
        """
        if pid is not None:
            self.worker_pid = int(pid)

    def note_send(self, tasks_in_frame: int, nbytes: int) -> None:
        """One frame written, carrying *tasks_in_frame* tasks."""
        self.frames_sent += 1
        self.tasks_sent += tasks_in_frame
        if tasks_in_frame > 1:
            self.batches_sent += 1
        self.bytes_sent += nbytes

    def note_ack(self, rtt_sample: float, slow: bool) -> None:
        """One reply matched against the head of the window."""
        self.acks += 1
        if slow:
            self.slow_acks += 1
        self.rtt.observe(rtt_sample)

    def note_bytes_received(self, nbytes: int) -> None:
        self.bytes_received += nbytes

    def note_window(self, window: int) -> None:
        self.window = window
        if window > self.peak_window:
            self.peak_window = window

    def note_death(self, requeued_frames: int) -> None:
        """The connection died with *requeued_frames* frames in flight."""
        self.reconnects += 1
        self.requeues += requeued_frames

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dict of everything above (one telemetry row)."""
        return {
            "connection": self.label,
            "slot": self.slot,
            "frames_sent": self.frames_sent,
            "tasks_sent": self.tasks_sent,
            "batches_sent": self.batches_sent,
            "acks": self.acks,
            "slow_acks": self.slow_acks,
            "requeues": self.requeues,
            "reconnects": self.reconnects,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "window": self.window,
            "peak_window": self.peak_window,
            "worker_pid": self.worker_pid,
            **self.rtt.snapshot(),
        }


def aggregate_by_worker(
    connections: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Fold connection snapshots into one row per worker address.

    Counters sum; windows take the max; the smoothed RTT becomes a
    sample-weighted mean over the worker's *primed* connections (a plain
    mean would let an idle connection's cold estimate drag a busy one's
    down, and an unprimed 1-sample guess is noise, not signal — see
    :meth:`RttEstimator.snapshot`).  A primed srtt of 0.0 ms is a
    legitimate measurement on a loopback-fast link and is averaged in
    like any other (missing values are ``None``, never falsy-zero).
    ``worker_pids`` collects the pids that served the worker's
    connections — with process slots, one per slot subprocess.  Rows
    come back sorted by worker label so every surface prints them in a
    stable order.
    """
    workers: Dict[str, Dict[str, Any]] = {}
    weighted: Dict[str, List[float]] = {}
    for snap in connections:
        label = snap.get("connection", "?")
        row = workers.get(label)
        if row is None:
            row = workers[label] = {
                "worker": label, "connections": 0, "frames_sent": 0,
                "tasks_sent": 0, "batches_sent": 0, "acks": 0,
                "slow_acks": 0, "requeues": 0, "reconnects": 0,
                "bytes_sent": 0, "bytes_received": 0, "peak_window": 1,
                "rtt_samples": 0, "worker_pids": [],
            }
            weighted[label] = [0.0, 0.0, 0.0]  # srtt*w, rttvar*w, weight
        row["connections"] += 1
        for key in ("frames_sent", "tasks_sent", "batches_sent", "acks",
                    "slow_acks", "requeues", "reconnects", "bytes_sent",
                    "bytes_received"):
            row[key] += int(snap.get(key, 0))
        row["peak_window"] = max(row["peak_window"],
                                 int(snap.get("peak_window", 1)))
        pid = snap.get("worker_pid")
        if pid is not None and pid not in row["worker_pids"]:
            row["worker_pids"].append(pid)
        samples = int(snap.get("samples", 0))
        row["rtt_samples"] += samples
        # Weight only primed estimators (snapshots predating the field
        # fall back to the priming threshold on their sample count), and
        # never treat a measured 0.0 as missing.
        primed = snap.get("primed")
        if primed is None:
            primed = samples >= RTT_PRIME_SAMPLES
        srtt = snap.get("srtt_ms")
        if primed and srtt is not None and samples > 0:
            rttvar = snap.get("rttvar_ms")
            weighted[label][0] += float(srtt) * samples
            weighted[label][1] += (float(rttvar) * samples
                                   if rttvar is not None else 0.0)
            weighted[label][2] += samples
    for label, row in workers.items():
        row["worker_pids"].sort()
        weight = weighted[label][2]
        row["srtt_ms"] = (round(weighted[label][0] / weight, 3)
                          if weight else None)
        row["rttvar_ms"] = (round(weighted[label][1] / weight, 3)
                            if weight else None)
    return [workers[label] for label in sorted(workers)]
