"""Resumable on-disk results store for sweeps (JSONL).

A :class:`ResultStore` persists one JSON record per completed
:class:`~repro.experiments.executor.SweepTask` as it finishes, so a large
grid that crashes (or is killed) halfway is resumed instead of re-run:
``run_sweep(..., store=store, resume=True)`` skips every task whose spec
hash is already on disk and replays the stored compact metrics into the
aggregation.

Design
------

* **Keyed by the task spec, not by position.**  :func:`task_key` hashes
  ``(algorithm, family, n, graph_seed, run_seed, params,
  code_schema_version)``; because the executor derives every seed up front,
  the key set of a sweep is a pure function of its arguments, and a resumed
  store can be matched record-by-record against a freshly planned grid.
  :data:`CODE_SCHEMA_VERSION` is part of the key so recorded results are
  invalidated wholesale whenever the meaning of the metrics changes.
* **Append-only JSONL, one atomic line per result.**  Each record is
  written with a single ``write()`` of a complete line followed by a flush,
  so a kill can only ever truncate the final line.  Readers detect a
  truncated/corrupt trailing line, skip it with a warning, and resume from
  the last intact record; corruption anywhere *else* in the file is an
  error (that is not what an interrupted append looks like).
* **Header record.**  The first line records the sweep configuration and
  schema version; resuming under a different configuration (or writing a
  second sweep into the same file) is rejected instead of silently mixing
  grids.

Record shapes::

    {"kind": "header", "schema": 1, "sweep": {...}}
    {"kind": "result", "key": "...", "index": 7, "task": {...},
     "result": {...}}

``index`` is the task's position in the planned grid, which is what lets
:func:`load_sweep_result` rebuild tables and fits in the exact order the
live sweep aggregated them.

When one append stream becomes the bottleneck, :class:`ShardedResultStore`
splits the store into one JSONL shard per write lane (``out.jsonl.shard-K``
or ``dir/shard-K.jsonl``) with identical per-shard semantics; reads merge
every shard deterministically by grid index, so resume and ``repro-mis
report`` work across *any* shard count.  :func:`open_store` sniffs which
form a path is.

:func:`merge_stores` (CLI: ``repro-mis store merge SRC... --output OUT``)
compacts any mix of single-file and sharded stores of **one** sweep into
a fresh single-file store — the compaction path for long-lived stores
that accumulated shards or partial resume files.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import (TYPE_CHECKING, Any, BinaryIO, Dict, Iterator, List,
                    Optional, Sequence, Set, TextIO, Tuple, Union)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.experiments.sweeps import SweepResult

#: Anything the store constructors accept as a filesystem location.
StorePath = Union[str, "os.PathLike[str]"]

from repro.errors import ConfigurationError
from repro.experiments.executor import SweepTask
from repro.experiments.harness import MISRunResult

#: Version of the result semantics baked into every task key.  Bump whenever
#: recorded metrics stop being comparable with freshly computed ones (e.g. a
#: change to how awake rounds are counted); old records then simply stop
#: matching and affected tasks re-run.
CODE_SCHEMA_VERSION = 1


def task_key(task: SweepTask,
             schema_version: int = CODE_SCHEMA_VERSION) -> str:
    """Stable spec hash identifying one task's result across processes.

    The hash covers everything that determines the result — algorithm,
    graph family/size/seed, run seed, algorithm parameters — plus the code
    schema version, canonicalised through sorted-key JSON so dict ordering
    can never leak into the key.
    """
    spec = {
        "algorithm": task.algorithm,
        "family": task.family,
        "n": task.n,
        "graph_seed": task.graph_seed,
        "run_seed": task.run_seed,
        "params": [[key, value] for key, value in task.params],
        "schema": schema_version,
    }
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _task_to_json(task: SweepTask) -> Dict[str, Any]:
    data: Dict[str, Any] = task.to_json()
    return data


def _task_from_json(data: Dict[str, Any]) -> SweepTask:
    task: SweepTask = SweepTask.from_json(data)
    return task


class ResultStore:
    """Append-only JSONL store of sweep results, keyed by task spec hash.

    One store holds one sweep.  :meth:`ensure_header` stamps the sweep
    configuration on first use and refuses to mix configurations;
    :meth:`append` persists each result as it completes; and
    :meth:`load_results` / :meth:`completed_keys` feed resume.
    """

    def __init__(self, path: StorePath) -> None:
        self.path = Path(path)
        self._handle: Optional[TextIO] = None
        self._read_handle: Optional[BinaryIO] = None

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def _scan(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Stream ``(byte_offset, record)`` pairs; skip a corrupt tail.

        A truncated or garbled *final* line is the signature of an append
        interrupted by a crash/kill — it is skipped with a
        :class:`UserWarning` so the task is transparently re-run on resume.
        A corrupt line with intact records after it cannot come from an
        interrupted append and raises :class:`ConfigurationError`.  One
        streaming pass, O(1) memory: a full-scale store never needs to fit
        in memory just to be scanned.
        """
        if not self.path.exists():
            return
        corrupt_line: Optional[int] = None
        offset = 0
        with self.path.open("rb") as handle:
            for number, line in enumerate(handle, 1):
                start, offset = offset, offset + len(line)
                stripped = line.strip()
                if not stripped:
                    continue
                if corrupt_line is not None:
                    raise ConfigurationError(
                        f"{self.path}: corrupt record on line {corrupt_line} "
                        "with intact records after it — this is not an "
                        "interrupted append; refusing to resume from a "
                        "damaged store"
                    )
                try:
                    record = json.loads(stripped.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    corrupt_line = number
                    continue
                yield start, record
        if corrupt_line is not None:
            warnings.warn(
                f"{self.path}: skipping corrupt/truncated trailing record "
                f"on line {corrupt_line} (interrupted append); the task "
                "will be re-executed on resume",
                stacklevel=2,
            )

    def records(self) -> Iterator[Dict[str, Any]]:
        """Yield every intact record (see :meth:`_scan` for tail handling)."""
        for _, record in self._scan():
            yield record

    def _record_at(self, offset: int) -> Dict[str, Any]:
        """Re-read one record by byte offset (keeps a cached read handle)."""
        if self._read_handle is None:
            self._read_handle = self.path.open("rb")
        self._read_handle.seek(offset)
        record: Dict[str, Any] = json.loads(
            self._read_handle.readline().decode("utf-8"))
        return record

    def header(self) -> Optional[Dict[str, Any]]:
        """Return the header record, or None for a missing/empty store."""
        for record in self.records():
            if record.get("kind") == "header":
                return record
            return None
        return None

    def completed_keys(self) -> Set[str]:
        """Spec hashes of every intact result record on disk."""
        return {record["key"] for record in self.records()
                if record.get("kind") == "result"}

    def result_offsets(self) -> Dict[str, int]:
        """Map spec hash -> byte offset of its record.

        This is what resume consumes: holding offsets instead of restored
        results keeps a resumed sweep's memory as flat as a live one — each
        record is re-read (:meth:`result_at`) only at the moment the fold
        reaches its grid position, then dropped.
        """
        return {record["key"]: start for start, record in self._scan()
                if record.get("kind") == "result"}

    def result_at(self, offset: int) -> MISRunResult:
        """Restore the result stored at *offset* (from :meth:`result_offsets`)."""
        result: MISRunResult = MISRunResult.from_record(
            self._record_at(offset)["result"])
        return result

    def load_results(self) -> Dict[str, MISRunResult]:
        """Map spec hash -> restored compact result for every intact record.

        Convenience for small stores/tests; resume itself goes through
        :meth:`result_offsets` to avoid materialising the whole store.
        """
        return {record["key"]: MISRunResult.from_record(record["result"])
                for record in self.records()
                if record.get("kind") == "result"}

    def indexed_result_offsets(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(grid_index, byte_offset)`` for every intact result."""
        for start, record in self._scan():
            if record.get("kind") == "result":
                yield int(record["index"]), start

    def iter_grid_ordered_results(
        self,
    ) -> Iterator[Tuple[int, SweepTask, MISRunResult]]:
        """Yield ``(index, task, result)`` in planned-grid (index) order.

        Only the (index, offset) directory is held in memory; each record
        is parsed lazily when its turn comes, so rebuilding a report from a
        full-scale store stays cheap.
        """
        for index, offset in sorted(self.indexed_result_offsets()):
            record = self._record_at(offset)
            yield (index, _task_from_json(record["task"]),
                   MISRunResult.from_record(record["result"]))

    def __len__(self) -> int:
        return sum(1 for record in self.records()
                   if record.get("kind") == "result")

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _append_line(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        # One write() of a complete line, flushed immediately: a kill can
        # truncate this line but never damage the records before it.
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()

    def repair_truncation(self) -> None:
        """Physically drop a torn trailing line before appending resumes.

        Readers merely *skip* a truncated final line; a writer must remove
        it, otherwise the next append would land after the torn fragment
        and bury it mid-file, where it reads as real corruption.  Truncation
        happens at the byte offset where the torn line starts, so intact
        records are untouched.  A trailing line that parses but lacks its
        newline is treated as torn too (the append's single write was cut
        mid-flush); dropping it merely re-runs that one task.
        """
        if not self.path.exists():
            return
        size = self.path.stat().st_size
        if size == 0:
            return
        # Inspect only the file tail; the last line is all that can be torn.
        tail_len = min(size, 1 << 16)
        with self.path.open("rb") as handle:
            handle.seek(size - tail_len)
            tail = handle.read()
        lines = tail.splitlines(keepends=True)
        if len(lines) == 1 and tail_len < size:
            # The final line is longer than the tail window (huge record);
            # fall back to reading the whole file to find its start.
            tail = self.path.read_bytes()
            lines = tail.splitlines(keepends=True)
        last = lines[-1]
        intact = last.endswith(b"\n")
        if intact:
            try:
                json.loads(last.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                intact = False
        if intact:
            return
        warnings.warn(
            f"{self.path}: dropping corrupt/truncated trailing record "
            "(interrupted append); the task will be re-executed",
            stacklevel=2,
        )
        self.close()
        with self.path.open("rb+") as handle:
            handle.truncate(size - len(last))

    def _is_lone_torn_header(self) -> bool:
        """True iff the file is exactly one torn prefix of a header record.

        Appends are sequential single writes ending in a newline, so a kill
        during the *first* append leaves a newline-free prefix of
        ``{"kind":"header",...`` and nothing else.  Only that precise shape
        is treated as repairable — anything else non-parseable could be an
        unrelated user file, which must never be touched.
        """
        size = self.path.stat().st_size
        if size == 0 or size > (1 << 16):
            return False
        with self.path.open("rb") as handle:
            head = handle.read()
        if b"\n" in head:
            return False
        marker = b'{"kind":"header"'
        return head.startswith(marker) or marker.startswith(head)

    def ensure_header(self, sweep_config: Dict[str, Any],
                      resume: bool) -> None:
        """Stamp (or verify) the sweep configuration this store belongs to.

        A fresh/empty store gets a header; a non-empty store is accepted
        only when *resume* is True **and** its header matches
        *sweep_config* exactly — anything else would silently mix records
        from different grids under colliding indices.  A trailing record
        torn by a kill is dropped (:meth:`repair_truncation`) only *after*
        the header has proven the file is this sweep's store: a destructive
        repair must never touch a file that merely happened to be passed as
        ``--output``.
        """
        existing = self.header()
        if existing is None:
            if self.path.exists() and self.path.stat().st_size > 0:
                if not self._is_lone_torn_header():
                    raise ConfigurationError(
                        f"{self.path}: store has records but no header; "
                        "refusing to append to an unrecognised file"
                    )
                # A kill during the very first append left a torn header
                # prefix as the only content; the store is provably ours
                # and empty, so restart it cleanly.
                warnings.warn(
                    f"{self.path}: dropping torn header record (interrupted "
                    "first append); starting the store fresh",
                    stacklevel=2,
                )
                self.close()
                with self.path.open("rb+") as handle:
                    handle.truncate(0)
            self._append_line({"kind": "header",
                               "schema": CODE_SCHEMA_VERSION,
                               "sweep": sweep_config})
            return
        if not resume:
            raise ConfigurationError(
                f"{self.path}: store already holds a sweep; pass resume=True "
                "(CLI: --resume) to continue it, or point --output at a "
                "fresh file"
            )
        if existing.get("schema") != CODE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"{self.path}: store was written under code schema "
                f"{existing.get('schema')}, current is {CODE_SCHEMA_VERSION}; "
                "recorded results are not comparable — start a fresh store"
            )
        if existing.get("sweep") != sweep_config:
            raise ConfigurationError(
                f"{self.path}: store belongs to a different sweep "
                f"configuration ({existing.get('sweep')} != {sweep_config}); "
                "refusing to mix grids in one store"
            )
        # The file is confirmed to be this sweep's store; now it is safe to
        # physically drop a record torn by a previous kill so appends cannot
        # land after the fragment.
        self.repair_truncation()

    def append(self, index: int, task: SweepTask,
               result: MISRunResult) -> None:
        """Persist one completed task result."""
        self._append_line({
            "kind": "result",
            "key": task_key(task),
            "index": index,
            "task": _task_to_json(task),
            "result": result.to_record(),
        })

    def close(self) -> None:
        """Close the append/read handles (both reopen on demand)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._read_handle is not None:
            self._read_handle.close()
            self._read_handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Sharded stores
# --------------------------------------------------------------------------- #
def _shard_number(path: Path) -> int:
    """Parse the shard index out of a shard file name."""
    stem = path.name
    digits = stem.rsplit("shard-", 1)[1]
    if digits.endswith(".jsonl"):
        digits = digits[: -len(".jsonl")]
    return int(digits)


def discover_shards(base: StorePath) -> List[Path]:
    """Find the shard files of a sharded store, in shard order.

    Two layouts are recognised: *suffix* (``out.jsonl`` →
    ``out.jsonl.shard-0``, ``out.jsonl.shard-1``, ...) and *directory*
    (``out_dir/`` → ``out_dir/shard-0.jsonl``, ...).  Returns ``[]`` when
    neither matches, which is how :func:`open_store` decides a path is a
    plain single-file store.
    """
    base = Path(base)
    if base.is_dir():
        found = [p for p in base.glob("shard-*.jsonl")
                 if p.name[len("shard-"):-len(".jsonl")].isdigit()]
    else:
        prefix = base.name + ".shard-"
        found = [p for p in base.parent.glob(base.name + ".shard-*")
                 if p.name[len(prefix):].isdigit()]
    return sorted(found, key=_shard_number)


class ShardedResultStore:
    """A results store split across several JSONL shard files.

    One append stream per shard removes the single-file bottleneck once
    many workers complete tasks faster than one ``write()+flush`` lane
    keeps up.  Every shard is a full :class:`ResultStore` — same header,
    same spec-hash keys, same atomic-line and torn-tail semantics — so
    each shard repairs (or rejects) itself exactly like a single-file
    store would.

    Layouts (see :func:`discover_shards`): pass a base *file* path to get
    sibling ``<base>.shard-K`` files, or an existing *directory* to get
    ``shard-K.jsonl`` files inside it.

    Records are routed by planned-grid index (``index % shards``) — a pure
    function of the task, never of arrival order.  Reads **merge every
    shard found on disk**, sorted by grid index, so the merged view is
    deterministic and, crucially, independent of the shard count: a sweep
    written under 4 shards can be resumed under 2 (new appends route to
    the 2 write shards; the other 2 are still read) and reported under
    any, byte-identically.
    """

    def __init__(self, base: StorePath,
                 shards: Optional[int] = None) -> None:
        self.base = Path(base)
        if shards is not None and (not isinstance(shards, int)
                                   or isinstance(shards, bool) or shards < 1):
            raise ConfigurationError(
                f"invalid shard count {shards!r}: need a positive int "
                "(or None to reuse the shard files already on disk)"
            )
        self._requested = shards
        self._read_stores: Optional[List[ResultStore]] = None
        self._write_stores: Optional[List[ResultStore]] = None

    # ------------------------------------------------------------------ #
    # Shard layout
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """Base path (mirrors :attr:`ResultStore.path` for messages)."""
        return self.base

    def _shard_path(self, index: int) -> Path:
        if self.base.is_dir():
            return self.base / f"shard-{index}.jsonl"
        return self.base.parent / f"{self.base.name}.shard-{index}"

    def _stores(self) -> Tuple[List[ResultStore], List[ResultStore]]:
        """Resolve (read_stores, write_stores), caching the layout.

        Write shards are ``0 .. shards-1`` for the requested count
        (default: the count found on disk); read shards are the union of
        the write shards and everything discovered, so records written
        under a larger historical shard count stay visible.
        """
        if self._read_stores is not None and self._write_stores is not None:
            return self._read_stores, self._write_stores
        existing = discover_shards(self.base)
        if (not existing and self.base.is_file()
                and self.base.stat().st_size > 0):
            # The base path holds a plain single-file store (or some other
            # file).  Sharding "next to" it would silently ignore every
            # record in it — e.g. `--resume --shards N` on a store that
            # was written unsharded would re-run the whole grid.
            raise ConfigurationError(
                f"{self.base}: path holds a single (unsharded) file; "
                "resume it without --shards, or point the sharded store "
                "at a fresh path"
            )
        count = self._requested if self._requested is not None else len(existing)
        if count < 1:
            raise ConfigurationError(
                f"{self.base}: no shard files found and no shard count "
                "requested; pass shards=N (CLI: --shards N) to create a "
                "sharded store"
            )
        write_paths = [self._shard_path(i) for i in range(count)]
        read_paths = list(write_paths)
        for path in existing:
            if path not in read_paths:
                read_paths.append(path)
        by_path: Dict[Path, ResultStore] = {p: ResultStore(p)
                                            for p in read_paths}
        read_stores = [by_path[p] for p in read_paths]
        write_stores = [by_path[p] for p in write_paths]
        self._read_stores = read_stores
        self._write_stores = write_stores
        return read_stores, write_stores

    @property
    def shard_paths(self) -> List[Path]:
        """Paths of every shard this store reads (write shards first)."""
        read, _ = self._stores()
        return [store.path for store in read]

    # ------------------------------------------------------------------ #
    # ResultStore-compatible surface (what run_sweep / report consume)
    # ------------------------------------------------------------------ #
    def ensure_header(self, sweep_config: Dict[str, Any],
                      resume: bool) -> None:
        """Stamp/verify the configuration on every shard.

        Each shard enforces the single-file rules independently: an empty
        shard is stamped, a populated one must match the configuration
        (and requires *resume*), and each repairs its own torn tail only
        after proving it belongs to this sweep.
        """
        read, _ = self._stores()
        for store in read:
            store.ensure_header(sweep_config, resume)

    def header(self) -> Optional[Dict[str, Any]]:
        """The common header of all shards (None when none has one).

        Shards that disagree are an error: the merged view would silently
        mix grids, which is exactly what headers exist to prevent.
        """
        read, _ = self._stores()
        first: Optional[Dict[str, Any]] = None
        first_path: Optional[Path] = None
        for store in read:
            header = store.header()
            if header is None:
                continue
            if first is None:
                first, first_path = header, store.path
            elif header != first:
                raise ConfigurationError(
                    f"{store.path}: shard header disagrees with "
                    f"{first_path}; these shards do not belong to one "
                    "sweep — refusing to merge them"
                )
        return first

    def records(self) -> Iterator[Dict[str, Any]]:
        """Every intact record across all shards (shard-major order)."""
        read, _ = self._stores()
        for store in read:
            yield from store.records()

    def completed_keys(self) -> Set[str]:
        """Spec hashes recorded on any shard."""
        return {record["key"] for record in self.records()
                if record.get("kind") == "result"}

    def result_offsets(self) -> Dict[str, Tuple[int, int]]:
        """Map spec hash -> opaque ``(shard, byte offset)`` token."""
        read, _ = self._stores()
        offsets: Dict[str, Tuple[int, int]] = {}
        for shard, store in enumerate(read):
            for key, offset in store.result_offsets().items():
                offsets[key] = (shard, offset)
        return offsets

    def result_at(self, token: Tuple[int, int]) -> MISRunResult:
        """Restore the result a :meth:`result_offsets` token points at."""
        shard, offset = token
        read, _ = self._stores()
        return read[shard].result_at(offset)

    def iter_grid_ordered_results(
        self,
    ) -> Iterator[Tuple[int, SweepTask, MISRunResult]]:
        """Merged ``(index, task, result)`` stream in planned-grid order.

        The merge is deterministic for any shard count: only the (index,
        shard, offset) directory is sorted in memory, records are parsed
        lazily in index order.
        """
        read, _ = self._stores()
        entries: List[Tuple[int, int, int]] = []
        for shard, store in enumerate(read):
            entries.extend((index, shard, offset)
                           for index, offset in store.indexed_result_offsets())
        entries.sort()
        for index, shard, offset in entries:
            record = read[shard]._record_at(offset)
            yield (index, _task_from_json(record["task"]),
                   MISRunResult.from_record(record["result"]))

    def append(self, index: int, task: SweepTask,
               result: MISRunResult) -> None:
        """Persist one result on the shard its grid index routes to."""
        _, write = self._stores()
        write[index % len(write)].append(index, task, result)

    def __len__(self) -> int:
        read, _ = self._stores()
        return sum(len(store) for store in read)

    def close(self) -> None:
        """Close every shard's handles (all reopen on demand)."""
        if self._read_stores is not None:
            for store in self._read_stores:
                store.close()

    def __enter__(self) -> "ShardedResultStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def open_store(
    path: StorePath, shards: Optional[int] = None
) -> Union[ResultStore, ShardedResultStore]:
    """Open the right store type for *path*.

    An explicit *shards* count always selects a :class:`ShardedResultStore`;
    otherwise the path is sniffed — an existing directory or a base with
    ``.shard-K`` siblings opens the sharded store transparently (this is
    what lets ``--resume`` and ``repro-mis report`` take either form), and
    anything else is a plain single-file :class:`ResultStore`.
    """
    base = Path(path)
    if shards is not None:
        return ShardedResultStore(base, shards=shards)
    if base.is_dir() or discover_shards(base):
        return ShardedResultStore(base)
    return ResultStore(base)


def merge_stores(sources: Sequence[StorePath], output: StorePath) -> int:
    """Compact one or more stores into a single-file store at *output*.

    The ROADMAP-named compaction tooling for long-lived stores: a sweep
    written across many shards (or resumed into several partial stores)
    is rewritten as one fresh single-file :class:`ResultStore` — fresh
    header, records in planned-grid order, duplicates (the same spec
    hash recorded in more than one source) collapsed to a single copy.
    Reading the merged store is byte-identical to reading the merged
    sources, so ``repro-mis report`` and ``--resume`` keep working with
    one file where there used to be many.

    Sources may be any mix of single-file stores, sharded base paths and
    shard directories (:func:`open_store` sniffs each).  All sources
    must carry the **same** header — mixing sweep configurations (or
    code schema versions) is refused, exactly as resuming across them
    would be.  *output* must not already hold data (compaction never
    destroys anything; delete the sources yourself once satisfied).

    Returns the number of result records written.
    """
    if not sources:
        raise ConfigurationError("store merge: need at least one source store")
    output_path = Path(output)
    if output_path.exists() and (output_path.is_dir()
                                 or output_path.stat().st_size > 0):
        raise ConfigurationError(
            f"{output_path}: refusing to overwrite an existing non-empty "
            "path; point --output at a fresh file"
        )
    if discover_shards(output_path):
        # Writing a single-file store at the base path of an existing
        # sharded layout would produce a hybrid open_store refuses to
        # read — the merged store would be unreachable via its own path.
        raise ConfigurationError(
            f"{output_path}: path is the base of an existing sharded "
            "store; point --output at a fresh file"
        )
    stores = [open_store(source) for source in sources]
    resolved = [Path(source) for source in sources]
    try:
        header: Optional[Dict[str, Any]] = None
        header_origin: Optional[Path] = None
        for source, store in zip(resolved, stores):
            found = store.header()
            if found is None:
                raise ConfigurationError(
                    f"{source}: not a results store (missing or empty file)"
                )
            if header is None:
                header, header_origin = found, source
            elif found != header:
                raise ConfigurationError(
                    f"{source}: sweep configuration disagrees with "
                    f"{header_origin}; refusing to merge stores from "
                    "different sweeps"
                )
        # Every source proved it has a header (or raised) above, so the
        # loop cannot leave `header` unset: sources is non-empty.
        assert header is not None
        merged = ResultStore(output_path)
        try:
            merged._append_line(header)
            written = 0
            seen_keys: Set[str] = set()
            # One k-way merge in planned-grid order across every source
            # (each cursor is already index-sorted, records parse
            # lazily): grid index is a pure function of the task, so
            # records for the same task in different sources are true
            # duplicates and the first copy wins.
            cursors = [store.iter_grid_ordered_results() for store in stores]
            heads: List[Optional[Tuple[int, SweepTask, MISRunResult]]] = [
                next(cursor, None) for cursor in cursors]
            while True:
                candidates = [(head[0], position)
                              for position, head in enumerate(heads)
                              if head is not None]
                if not candidates:
                    break
                _, position = min(candidates)
                head = heads[position]
                assert head is not None  # candidates lists non-None heads only
                index, task, result = head
                heads[position] = next(cursors[position], None)
                key = task_key(task)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                merged.append(index, task, result)
                written += 1
            return written
        finally:
            merged.close()
    except BaseException:
        # A failed merge must not leave a half-written output behind: it
        # would read as an interrupted sweep and poison a later --resume.
        if output_path.exists() and not output_path.is_dir():
            output_path.unlink()
        raise
    finally:
        for store in stores:
            store.close()


def load_sweep_result(
    path: Union[StorePath, ResultStore, ShardedResultStore],
) -> Tuple[Dict[str, Any], "SweepResult"]:
    """Rebuild a :class:`~repro.experiments.sweeps.SweepResult` from a store.

    Records are folded in planned-grid order (their ``index``), which is the
    same order the live sweep aggregated in — so for a completed store the
    rebuilt rows and fits are byte-identical to the ones the sweep printed,
    without re-running anything.  *path* may be a single-file store, a
    sharded store's base path/directory, or an already constructed store
    object.  Returns ``(header, sweep_result)``.
    """
    from repro.experiments.sweeps import SweepResult

    if isinstance(path, (ResultStore, ShardedResultStore)):
        store = path
    else:
        store = open_store(path)
    header = store.header()
    if header is None:
        raise ConfigurationError(
            f"{store.path}: not a results store (missing or empty file)"
        )
    result = SweepResult()
    try:
        for _, task, run in store.iter_grid_ordered_results():
            cell = result.cell_for(task.algorithm, task.family, task.n,
                                   keep_runs=False)
            cell.add(run)
    finally:
        store.close()
    return header, result
