"""Resumable on-disk results store for sweeps (JSONL).

A :class:`ResultStore` persists one JSON record per completed
:class:`~repro.experiments.executor.SweepTask` as it finishes, so a large
grid that crashes (or is killed) halfway is resumed instead of re-run:
``run_sweep(..., store=store, resume=True)`` skips every task whose spec
hash is already on disk and replays the stored compact metrics into the
aggregation.

Design
------

* **Keyed by the task spec, not by position.**  :func:`task_key` hashes
  ``(algorithm, family, n, graph_seed, run_seed, params,
  code_schema_version)``; because the executor derives every seed up front,
  the key set of a sweep is a pure function of its arguments, and a resumed
  store can be matched record-by-record against a freshly planned grid.
  :data:`CODE_SCHEMA_VERSION` is part of the key so recorded results are
  invalidated wholesale whenever the meaning of the metrics changes.
* **Append-only JSONL, one atomic line per result.**  Each record is
  written with a single ``write()`` of a complete line followed by a flush,
  so a kill can only ever truncate the final line.  Readers detect a
  truncated/corrupt trailing line, skip it with a warning, and resume from
  the last intact record; corruption anywhere *else* in the file is an
  error (that is not what an interrupted append looks like).
* **Header record.**  The first line records the sweep configuration and
  schema version; resuming under a different configuration (or writing a
  second sweep into the same file) is rejected instead of silently mixing
  grids.

Record shapes::

    {"kind": "header", "schema": 1, "sweep": {...}}
    {"kind": "result", "key": "...", "index": 7, "task": {...},
     "result": {...}}

``index`` is the task's position in the planned grid, which is what lets
:func:`load_sweep_result` rebuild tables and fits in the exact order the
live sweep aggregated them.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.experiments.executor import SweepTask
from repro.experiments.harness import MISRunResult

#: Version of the result semantics baked into every task key.  Bump whenever
#: recorded metrics stop being comparable with freshly computed ones (e.g. a
#: change to how awake rounds are counted); old records then simply stop
#: matching and affected tasks re-run.
CODE_SCHEMA_VERSION = 1


def task_key(task: SweepTask,
             schema_version: int = CODE_SCHEMA_VERSION) -> str:
    """Stable spec hash identifying one task's result across processes.

    The hash covers everything that determines the result — algorithm,
    graph family/size/seed, run seed, algorithm parameters — plus the code
    schema version, canonicalised through sorted-key JSON so dict ordering
    can never leak into the key.
    """
    spec = {
        "algorithm": task.algorithm,
        "family": task.family,
        "n": task.n,
        "graph_seed": task.graph_seed,
        "run_seed": task.run_seed,
        "params": [[key, value] for key, value in task.params],
        "schema": schema_version,
    }
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _task_to_json(task: SweepTask) -> Dict[str, Any]:
    return {
        "algorithm": task.algorithm,
        "family": task.family,
        "n": task.n,
        "graph_seed": task.graph_seed,
        "run_seed": task.run_seed,
        "params": [[key, value] for key, value in task.params],
    }


def _task_from_json(data: Dict[str, Any]) -> SweepTask:
    return SweepTask(
        algorithm=data["algorithm"],
        family=data["family"],
        n=int(data["n"]),
        graph_seed=int(data["graph_seed"]),
        run_seed=int(data["run_seed"]),
        params=tuple((key, value) for key, value in data["params"]),
    )


class ResultStore:
    """Append-only JSONL store of sweep results, keyed by task spec hash.

    One store holds one sweep.  :meth:`ensure_header` stamps the sweep
    configuration on first use and refuses to mix configurations;
    :meth:`append` persists each result as it completes; and
    :meth:`load_results` / :meth:`completed_keys` feed resume.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._handle = None
        self._read_handle = None

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def _scan(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Stream ``(byte_offset, record)`` pairs; skip a corrupt tail.

        A truncated or garbled *final* line is the signature of an append
        interrupted by a crash/kill — it is skipped with a
        :class:`UserWarning` so the task is transparently re-run on resume.
        A corrupt line with intact records after it cannot come from an
        interrupted append and raises :class:`ConfigurationError`.  One
        streaming pass, O(1) memory: a full-scale store never needs to fit
        in memory just to be scanned.
        """
        if not self.path.exists():
            return
        corrupt_line: Optional[int] = None
        offset = 0
        with self.path.open("rb") as handle:
            for number, line in enumerate(handle, 1):
                start, offset = offset, offset + len(line)
                stripped = line.strip()
                if not stripped:
                    continue
                if corrupt_line is not None:
                    raise ConfigurationError(
                        f"{self.path}: corrupt record on line {corrupt_line} "
                        "with intact records after it — this is not an "
                        "interrupted append; refusing to resume from a "
                        "damaged store"
                    )
                try:
                    record = json.loads(stripped.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    corrupt_line = number
                    continue
                yield start, record
        if corrupt_line is not None:
            warnings.warn(
                f"{self.path}: skipping corrupt/truncated trailing record "
                f"on line {corrupt_line} (interrupted append); the task "
                "will be re-executed on resume",
                stacklevel=2,
            )

    def records(self) -> Iterator[Dict[str, Any]]:
        """Yield every intact record (see :meth:`_scan` for tail handling)."""
        for _, record in self._scan():
            yield record

    def _record_at(self, offset: int) -> Dict[str, Any]:
        """Re-read one record by byte offset (keeps a cached read handle)."""
        if self._read_handle is None:
            self._read_handle = self.path.open("rb")
        self._read_handle.seek(offset)
        return json.loads(self._read_handle.readline().decode("utf-8"))

    def header(self) -> Optional[Dict[str, Any]]:
        """Return the header record, or None for a missing/empty store."""
        for record in self.records():
            if record.get("kind") == "header":
                return record
            return None
        return None

    def completed_keys(self) -> Set[str]:
        """Spec hashes of every intact result record on disk."""
        return {record["key"] for record in self.records()
                if record.get("kind") == "result"}

    def result_offsets(self) -> Dict[str, int]:
        """Map spec hash -> byte offset of its record.

        This is what resume consumes: holding offsets instead of restored
        results keeps a resumed sweep's memory as flat as a live one — each
        record is re-read (:meth:`result_at`) only at the moment the fold
        reaches its grid position, then dropped.
        """
        return {record["key"]: start for start, record in self._scan()
                if record.get("kind") == "result"}

    def result_at(self, offset: int) -> MISRunResult:
        """Restore the result stored at *offset* (from :meth:`result_offsets`)."""
        return MISRunResult.from_record(self._record_at(offset)["result"])

    def load_results(self) -> Dict[str, MISRunResult]:
        """Map spec hash -> restored compact result for every intact record.

        Convenience for small stores/tests; resume itself goes through
        :meth:`result_offsets` to avoid materialising the whole store.
        """
        return {record["key"]: MISRunResult.from_record(record["result"])
                for record in self.records()
                if record.get("kind") == "result"}

    def iter_grid_ordered_results(
        self,
    ) -> Iterator[Tuple[int, SweepTask, MISRunResult]]:
        """Yield ``(index, task, result)`` in planned-grid (index) order.

        Only the (index, offset) directory is held in memory; each record
        is parsed lazily when its turn comes, so rebuilding a report from a
        full-scale store stays cheap.
        """
        entries = sorted(
            (int(record["index"]), start) for start, record in self._scan()
            if record.get("kind") == "result"
        )
        for index, offset in entries:
            record = self._record_at(offset)
            yield (index, _task_from_json(record["task"]),
                   MISRunResult.from_record(record["result"]))

    def __len__(self) -> int:
        return sum(1 for record in self.records()
                   if record.get("kind") == "result")

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _append_line(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        # One write() of a complete line, flushed immediately: a kill can
        # truncate this line but never damage the records before it.
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()

    def repair_truncation(self) -> None:
        """Physically drop a torn trailing line before appending resumes.

        Readers merely *skip* a truncated final line; a writer must remove
        it, otherwise the next append would land after the torn fragment
        and bury it mid-file, where it reads as real corruption.  Truncation
        happens at the byte offset where the torn line starts, so intact
        records are untouched.  A trailing line that parses but lacks its
        newline is treated as torn too (the append's single write was cut
        mid-flush); dropping it merely re-runs that one task.
        """
        if not self.path.exists():
            return
        size = self.path.stat().st_size
        if size == 0:
            return
        # Inspect only the file tail; the last line is all that can be torn.
        tail_len = min(size, 1 << 16)
        with self.path.open("rb") as handle:
            handle.seek(size - tail_len)
            tail = handle.read()
        lines = tail.splitlines(keepends=True)
        if len(lines) == 1 and tail_len < size:
            # The final line is longer than the tail window (huge record);
            # fall back to reading the whole file to find its start.
            tail = self.path.read_bytes()
            lines = tail.splitlines(keepends=True)
        last = lines[-1]
        intact = last.endswith(b"\n")
        if intact:
            try:
                json.loads(last.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                intact = False
        if intact:
            return
        warnings.warn(
            f"{self.path}: dropping corrupt/truncated trailing record "
            "(interrupted append); the task will be re-executed",
            stacklevel=2,
        )
        self.close()
        with self.path.open("rb+") as handle:
            handle.truncate(size - len(last))

    def _is_lone_torn_header(self) -> bool:
        """True iff the file is exactly one torn prefix of a header record.

        Appends are sequential single writes ending in a newline, so a kill
        during the *first* append leaves a newline-free prefix of
        ``{"kind":"header",...`` and nothing else.  Only that precise shape
        is treated as repairable — anything else non-parseable could be an
        unrelated user file, which must never be touched.
        """
        size = self.path.stat().st_size
        if size == 0 or size > (1 << 16):
            return False
        with self.path.open("rb") as handle:
            head = handle.read()
        if b"\n" in head:
            return False
        marker = b'{"kind":"header"'
        return head.startswith(marker) or marker.startswith(head)

    def ensure_header(self, sweep_config: Dict[str, Any],
                      resume: bool) -> None:
        """Stamp (or verify) the sweep configuration this store belongs to.

        A fresh/empty store gets a header; a non-empty store is accepted
        only when *resume* is True **and** its header matches
        *sweep_config* exactly — anything else would silently mix records
        from different grids under colliding indices.  A trailing record
        torn by a kill is dropped (:meth:`repair_truncation`) only *after*
        the header has proven the file is this sweep's store: a destructive
        repair must never touch a file that merely happened to be passed as
        ``--output``.
        """
        existing = self.header()
        if existing is None:
            if self.path.exists() and self.path.stat().st_size > 0:
                if not self._is_lone_torn_header():
                    raise ConfigurationError(
                        f"{self.path}: store has records but no header; "
                        "refusing to append to an unrecognised file"
                    )
                # A kill during the very first append left a torn header
                # prefix as the only content; the store is provably ours
                # and empty, so restart it cleanly.
                warnings.warn(
                    f"{self.path}: dropping torn header record (interrupted "
                    "first append); starting the store fresh",
                    stacklevel=2,
                )
                self.close()
                with self.path.open("rb+") as handle:
                    handle.truncate(0)
            self._append_line({"kind": "header",
                               "schema": CODE_SCHEMA_VERSION,
                               "sweep": sweep_config})
            return
        if not resume:
            raise ConfigurationError(
                f"{self.path}: store already holds a sweep; pass resume=True "
                "(CLI: --resume) to continue it, or point --output at a "
                "fresh file"
            )
        if existing.get("schema") != CODE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"{self.path}: store was written under code schema "
                f"{existing.get('schema')}, current is {CODE_SCHEMA_VERSION}; "
                "recorded results are not comparable — start a fresh store"
            )
        if existing.get("sweep") != sweep_config:
            raise ConfigurationError(
                f"{self.path}: store belongs to a different sweep "
                f"configuration ({existing.get('sweep')} != {sweep_config}); "
                "refusing to mix grids in one store"
            )
        # The file is confirmed to be this sweep's store; now it is safe to
        # physically drop a record torn by a previous kill so appends cannot
        # land after the fragment.
        self.repair_truncation()

    def append(self, index: int, task: SweepTask,
               result: MISRunResult) -> None:
        """Persist one completed task result."""
        self._append_line({
            "kind": "result",
            "key": task_key(task),
            "index": index,
            "task": _task_to_json(task),
            "result": result.to_record(),
        })

    def close(self) -> None:
        """Close the append/read handles (both reopen on demand)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._read_handle is not None:
            self._read_handle.close()
            self._read_handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def load_sweep_result(path: os.PathLike):
    """Rebuild a :class:`~repro.experiments.sweeps.SweepResult` from a store.

    Records are folded in planned-grid order (their ``index``), which is the
    same order the live sweep aggregated in — so for a completed store the
    rebuilt rows and fits are byte-identical to the ones the sweep printed,
    without re-running anything.  Returns ``(header, sweep_result)``.
    """
    from repro.experiments.sweeps import SweepResult

    store = path if isinstance(path, ResultStore) else ResultStore(path)
    header = store.header()
    if header is None:
        raise ConfigurationError(
            f"{store.path}: not a results store (missing or empty file)"
        )
    result = SweepResult()
    try:
        for _, task, run in store.iter_grid_ordered_results():
            cell = result.cell_for(task.algorithm, task.family, task.n,
                                   keep_runs=False)
            cell.add(run)
    finally:
        store.close()
    return header, result
