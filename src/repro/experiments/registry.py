"""Registry of the reproduction experiments E1–E9 (see DESIGN.md §3).

Each experiment is a callable that takes a *scale* ("smoke", "default",
"full") and a seed, runs the corresponding measurement, and returns an
:class:`ExperimentReport` containing printable rows, an optional growth-law
fit, and the claim-vs-measured verdict that EXPERIMENTS.md records.  The
benchmarks under ``benchmarks/`` and the CLI (``repro-mis experiment E1``)
both dispatch through this registry, so the paper-facing artefacts are
regenerated from exactly one code path.

The sweep-backed experiments (E1–E5, E9) accept ``jobs`` (worker
processes), ``backend`` (any scheduler × transport composition — the CLI
builds it from ``--backend``/``--scheduler``/``--transport``/``--workers``,
so a full-scale E9 grid can run large-first over socket workers on other
hosts) and ``store``/``resume`` (a :class:`~repro.experiments.store
.ResultStore` that persists every task result as it completes and lets an
interrupted ``full``-scale grid continue instead of restarting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.analysis.components import run_shattering_experiment
from repro.analysis.residual import run_residual_experiment
from repro.core.virtual_tree import communication_set, figure_example
from repro.experiments.executor import BackendLike, ProgressCallback
from repro.experiments.sweeps import SweepResult, run_sweep
from repro.experiments.tables import format_table
from repro.graphs.generators import gnp_graph
from repro.rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.store import ResultStore

#: Sweep sizes per scale level.  "smoke" keeps CI fast; "full" is what the
#: recorded EXPERIMENTS.md numbers were produced with.
SCALE_SIZES: Dict[str, List[int]] = {
    "smoke": [32, 64],
    "default": [64, 128, 256],
    "full": [128, 256, 512, 1024],
}
SCALE_REPETITIONS: Dict[str, int] = {"smoke": 1, "default": 2, "full": 3}

#: E9 pushes past the shared scale table: the node-averaged comparison is
#: about where the curves separate, which needs the larger sizes ``--jobs``
#: (and the resumable store) make affordable.
E9_SIZES: Dict[str, List[int]] = {
    "smoke": [32, 64],
    "default": [128, 256, 512],
    "full": [256, 512, 1024, 2048],
}


@dataclass
class ExperimentReport:
    """Output of one registry experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    fits: List[Dict[str, Any]] = field(default_factory=list)
    passed: bool = True
    notes: str = ""

    def render(self) -> str:
        """Render the report as printable text."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim : {self.paper_claim}",
            f"status      : {'PASS' if self.passed else 'CHECK'}",
        ]
        if self.notes:
            parts.append(f"notes       : {self.notes}")
        if self.rows:
            parts.append(format_table(self.rows))
        if self.fits:
            parts.append(format_table(self.fits, title="growth-law fits"))
        return "\n".join(parts)


#: Experiment runners take (scale, seed, jobs, store, resume, backend);
#: *jobs*/*backend* control how many workers the underlying sweep uses and
#: on which execution backend, and *store*/*resume* select the on-disk
#: results store (all ignored by the single-process experiments E6-E8).
ExperimentRunner = Callable[..., ExperimentReport]


def _scaling_report(experiment_id: str, title: str, claim: str,
                    sweep: SweepResult, metric: str,
                    expect_flat: Optional[List[str]] = None) -> ExperimentReport:
    fits = sweep.fits(metric)
    passed = sweep.all_verified
    distinct_sizes = len({cell.n for cell in sweep.cells})
    if expect_flat and distinct_sizes >= 3:
        for fit in fits:
            if fit["algorithm"] in expect_flat and fit["best_law"] in ("n", "log^2(n)"):
                passed = False
    return ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        paper_claim=claim,
        rows=sweep.rows(),
        fits=fits,
        passed=passed,
    )


# --------------------------------------------------------------------------- #
# E1 / E2 / E3: Awake-MIS scaling and comparison
# --------------------------------------------------------------------------- #
def experiment_e1(scale: str = "default", seed: SeedLike = 1,
                  jobs: Optional[int] = 1,
                  store: Optional["ResultStore"] = None,
                  resume: bool = False,
                  backend: "BackendLike" = None,
                  progress: Optional["ProgressCallback"] = None,
                  ) -> ExperimentReport:
    """Theorem 13: awake complexity of Awake-MIS grows ~ log log n."""
    sweep = run_sweep(
        algorithms=["awake_mis"],
        sizes=SCALE_SIZES[scale],
        families=("gnp", "rgg"),
        repetitions=SCALE_REPETITIONS[scale],
        seed=seed,
        jobs=jobs,
        keep_runs=False,
        store=store,
        resume=resume,
        backend=backend,
        progress=progress,
    )
    return _scaling_report(
        "E1",
        "Awake-MIS awake complexity scaling",
        "Theorem 13: O(log log n) awake complexity (near-flat growth in n)",
        sweep,
        metric="awake_max",
        expect_flat=["awake_mis"],
    )


def experiment_e2(scale: str = "default", seed: SeedLike = 2,
                  jobs: Optional[int] = 1,
                  store: Optional["ResultStore"] = None,
                  resume: bool = False,
                  backend: "BackendLike" = None,
                  progress: Optional["ProgressCallback"] = None,
                  ) -> ExperimentReport:
    """Theorem 13 comparison: Awake-MIS vs Luby / rank-greedy baselines."""
    sweep = run_sweep(
        algorithms=["awake_mis", "luby", "rank_greedy"],
        sizes=SCALE_SIZES[scale],
        families=("gnp",),
        repetitions=SCALE_REPETITIONS[scale],
        seed=seed,
        jobs=jobs,
        keep_runs=False,
        store=store,
        resume=resume,
        backend=backend,
        progress=progress,
    )
    report = _scaling_report(
        "E2",
        "Awake / round complexity: Awake-MIS vs O(log n) baselines",
        "Awake-MIS awake complexity grows ~ log log n while Luby-style "
        "baselines grow ~ log n; baselines win on round complexity",
        sweep,
        metric="awake_max",
    )
    report.notes = (
        "Absolute awake constants of Awake-MIS are dominated by the LDT "
        "construction; the claim under test is the growth shape, not the "
        "crossover point (see EXPERIMENTS.md)."
    )
    return report


def experiment_e3(scale: str = "default", seed: SeedLike = 3,
                  jobs: Optional[int] = 1,
                  store: Optional["ResultStore"] = None,
                  resume: bool = False,
                  backend: "BackendLike" = None,
                  progress: Optional["ProgressCallback"] = None,
                  ) -> ExperimentReport:
    """Corollary 14: the round-efficient variant trades awake for rounds."""
    sweep = run_sweep(
        algorithms=["awake_mis"],
        sizes=SCALE_SIZES[scale],
        families=("gnp",),
        repetitions=SCALE_REPETITIONS[scale],
        seed=seed,
        jobs=jobs,
        algorithm_params={"awake_mis": {"variant": "round"}},
        keep_runs=False,
        store=store,
        resume=resume,
        backend=backend,
        progress=progress,
    )
    return _scaling_report(
        "E3",
        "Awake-MIS, round-efficient variant (Corollary 14)",
        "O(log log n * log* n) awake complexity, smaller round complexity",
        sweep,
        metric="awake_max",
        expect_flat=["awake_mis"],
    )


# --------------------------------------------------------------------------- #
# E4 / E5: the auxiliary MIS algorithms
# --------------------------------------------------------------------------- #
def experiment_e4(scale: str = "default", seed: SeedLike = 4,
                  jobs: Optional[int] = 1,
                  store: Optional["ResultStore"] = None,
                  resume: bool = False,
                  backend: "BackendLike" = None,
                  progress: Optional["ProgressCallback"] = None,
                  ) -> ExperimentReport:
    """Lemma 10: VT-MIS has O(log I) awake vs the naive O(I)."""
    sweep = run_sweep(
        algorithms=["vt_mis", "naive_greedy"],
        sizes=SCALE_SIZES[scale],
        families=("gnp", "path"),
        repetitions=SCALE_REPETITIONS[scale],
        seed=seed,
        jobs=jobs,
        keep_runs=False,
        store=store,
        resume=resume,
        backend=backend,
        progress=progress,
    )
    report = _scaling_report(
        "E4",
        "VT-MIS vs the naive distributed greedy",
        "Lemma 10: VT-MIS awake complexity O(log I) (vs Theta(I) naive), "
        "round complexity O(I) for both",
        sweep,
        metric="awake_max",
        expect_flat=[],
    )
    # Growth-law classification needs at least three sizes to be meaningful;
    # the smoke scale only checks correctness.
    if len(SCALE_SIZES[scale]) >= 3:
        naive_fits = [f for f in report.fits if f["algorithm"] == "naive_greedy"]
        vt_fits = [f for f in report.fits if f["algorithm"] == "vt_mis"]
        if naive_fits and vt_fits:
            report.passed = report.passed and all(
                f["best_law"] in ("n", "sqrt(n)") for f in naive_fits
            ) and all(f["best_law"] in ("log(n)", "loglog(n)", "constant")
                      for f in vt_fits)
    return report


def experiment_e5(scale: str = "default", seed: SeedLike = 5,
                  jobs: Optional[int] = 1,
                  store: Optional["ResultStore"] = None,
                  resume: bool = False,
                  backend: "BackendLike" = None,
                  progress: Optional["ProgressCallback"] = None,
                  ) -> ExperimentReport:
    """Lemma 11 / Corollary 12: LDT-MIS awake complexity on small components."""
    sizes = SCALE_SIZES[scale]
    sweep = run_sweep(
        algorithms=["ldt_mis"],
        sizes=sizes,
        families=("gnp", "tree"),
        repetitions=SCALE_REPETITIONS[scale],
        seed=seed,
        jobs=jobs,
        keep_runs=False,
        store=store,
        resume=resume,
        backend=backend,
        progress=progress,
    )
    return _scaling_report(
        "E5",
        "LDT-MIS awake complexity",
        "Lemma 11 / Corollary 12: awake complexity polylogarithmic in the "
        "component size (plus the permutation-broadcast term)",
        sweep,
        metric="awake_max",
        expect_flat=[],
    )


# --------------------------------------------------------------------------- #
# E6 / E7: probabilistic lemmas
# --------------------------------------------------------------------------- #
def experiment_e6(scale: str = "default", seed: SeedLike = 6,
                  jobs: Optional[int] = 1,
                  store: Optional["ResultStore"] = None,
                  resume: bool = False,
                  backend: "BackendLike" = None,
                  progress: Optional["ProgressCallback"] = None,
                  ) -> ExperimentReport:
    """Lemma 2: residual sparsity of randomized greedy."""
    n = {"smoke": 512, "default": 2048, "full": 4096}[scale]
    graph = gnp_graph(n, expected_degree=16.0, seed=seed)
    result = run_residual_experiment(graph, seed=seed,
                                     trials={"smoke": 1, "default": 3, "full": 5}[scale])
    return ExperimentReport(
        experiment_id="E6",
        title="Residual sparsity of randomized greedy MIS",
        paper_claim="Lemma 2: residual max degree <= (t'/t) ln(n/eps) w.h.p.",
        rows=result.rows(),
        passed=result.all_within_bound,
    )


def experiment_e7(scale: str = "default", seed: SeedLike = 7,
                  jobs: Optional[int] = 1,
                  store: Optional["ResultStore"] = None,
                  resume: bool = False,
                  backend: "BackendLike" = None,
                  progress: Optional["ProgressCallback"] = None,
                  ) -> ExperimentReport:
    """Lemma 3: shattering under a random 2-Delta partition."""
    n = {"smoke": 512, "default": 2048, "full": 4096}[scale]
    result = run_shattering_experiment(
        n=n,
        degrees=(4, 8, 16) if scale == "smoke" else (4, 8, 16, 32),
        trials={"smoke": 2, "default": 5, "full": 8}[scale],
        seed=seed,
    )
    return ExperimentReport(
        experiment_id="E7",
        title="Shattering by random 2*Delta partition",
        paper_claim="Lemma 3: induced components have size <= 6 ln(n/eps) w.h.p.",
        rows=result.rows(),
        passed=result.all_within_bound,
    )


# --------------------------------------------------------------------------- #
# E8: the worked figure
# --------------------------------------------------------------------------- #
def experiment_e8(scale: str = "default", seed: SeedLike = 8,
                  jobs: Optional[int] = 1,
                  store: Optional["ResultStore"] = None,
                  resume: bool = False,
                  backend: "BackendLike" = None,
                  progress: Optional["ProgressCallback"] = None,
                  ) -> ExperimentReport:
    """Figures 1 and 2: the B([1,6]) worked example."""
    example = figure_example()
    expected = {"S_3": [3, 4, 5], "S_5": [5, 6], "common_round_3_5": 5}
    passed = all(example[key] == value for key, value in expected.items())
    rows = [
        {"quantity": "B*([1,6]) labels", "value": example["b_star_labels"],
         "paper": "Figure 1 (right)"},
        {"quantity": "S_3([1,6])", "value": example["S_3"], "paper": "{3, 4, 5}"},
        {"quantity": "S_5([1,6])", "value": example["S_5"], "paper": "{5, 6}"},
        {"quantity": "common round for IDs 3 and 5", "value":
            example["common_round_3_5"], "paper": "5"},
        {"quantity": "max |S_k([1,64])|", "value":
            max(len(communication_set(k, 64)) for k in range(1, 65)),
         "paper": "O(log I) = 7 for I = 64"},
    ]
    return ExperimentReport(
        experiment_id="E8",
        title="Virtual binary tree worked example (Figures 1 and 2)",
        paper_claim="S_3([1,6]) = {3,4,5}, S_5([1,6]) = {5,6}; nodes 3 and 5 "
                    "share awake round 5",
        rows=rows,
        passed=passed,
    )


# --------------------------------------------------------------------------- #
# E9: node-averaged awake complexity at scale
# --------------------------------------------------------------------------- #
def experiment_e9(scale: str = "default", seed: SeedLike = 9,
                  jobs: Optional[int] = 1,
                  store: Optional["ResultStore"] = None,
                  resume: bool = False,
                  backend: "BackendLike" = None,
                  progress: Optional["ProgressCallback"] = None,
                  ) -> ExperimentReport:
    """Node-averaged awake complexity: Awake-MIS vs Luby at larger n.

    Chatterjee, Gmyr and Pandurangan measure *node-averaged* awake
    complexity and show O(1) is achievable for it; the paper's worst-case
    O(log log n) bound dominates the average, so Awake-MIS should stay
    near-flat on this measure too while Luby's average tracks its ~log n
    worst case.  The separation only becomes readable at sizes the serial
    sweep could not afford — this experiment uses the larger
    :data:`E9_SIZES` grid that ``--jobs`` plus the resumable store make
    practical.
    """
    sweep = run_sweep(
        algorithms=["awake_mis", "luby"],
        sizes=E9_SIZES[scale],
        families=("gnp",),
        repetitions=SCALE_REPETITIONS[scale],
        seed=seed,
        jobs=jobs,
        keep_runs=False,
        store=store,
        resume=resume,
        backend=backend,
        progress=progress,
    )
    report = _scaling_report(
        "E9",
        "Node-averaged awake complexity at scale: Awake-MIS vs Luby",
        "Chatterjee-Gmyr-Pandurangan's node-averaged awake measure: "
        "Awake-MIS stays near-flat (worst case O(log log n) bounds the "
        "average) while Luby grows with log n",
        sweep,
        metric="avg_awake_mean",
        expect_flat=["awake_mis"],
    )
    report.notes = (
        "Node-averaged awake complexity (the CGP measure) is bounded by the "
        "worst-case awake complexity, so the paper's O(log log n) claim "
        "transfers; the interesting comparison is the gap to Luby's average."
    )
    return report


#: The registry itself.
EXPERIMENTS: Dict[str, ExperimentRunner] = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8": experiment_e8,
    "E9": experiment_e9,
}


def run_experiment(experiment_id: str, scale: str = "default",
                   seed: SeedLike = None,
                   jobs: Optional[int] = 1,
                   store: Optional["ResultStore"] = None,
                   resume: bool = False,
                   backend: BackendLike = None,
                   progress: Optional[ProgressCallback] = None) -> ExperimentReport:
    """Run one experiment by ID (``E1`` .. ``E9``).

    *jobs* and *backend* are forwarded to the sweep-backed experiments
    (E1–E5, E9) and select how many workers execute the grid and on which
    execution backend; results are identical for every combination (seeds
    are planned up front by the executor).  *store*/*resume* likewise flow
    to the sweep so interrupted grids can be continued, and *progress*
    fires per executed task (the CLI's ``--progress``); the
    single-process experiments E6–E8 ignore all five.
    """
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment '{experiment_id}'; known: "
                       f"{sorted(EXPERIMENTS)}")
    if scale not in SCALE_SIZES and scale not in ("smoke", "default", "full"):
        raise KeyError(f"unknown scale '{scale}'")
    runner = EXPERIMENTS[key]
    if seed is None:
        return runner(scale, jobs=jobs, store=store, resume=resume,
                      backend=backend, progress=progress)
    return runner(scale, seed, jobs=jobs, store=store, resume=resume,
                  backend=backend, progress=progress)


def available_experiments() -> List[str]:
    """Return the experiment IDs in order."""
    return sorted(EXPERIMENTS)
