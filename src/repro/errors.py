"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library-level failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when an algorithm or simulator is configured inconsistently."""


class UnknownFamilyError(ConfigurationError, KeyError):
    """Raised when a graph family name is not in the generator registry.

    Derives from :class:`ConfigurationError` so the CLI renders it as a
    clean ``error: ...`` line, and from :class:`KeyError` for compatibility
    with callers that catch the historical mapping miss.  ``__str__`` is
    overridden because ``KeyError`` would ``repr()`` the message, wrapping
    it in quotes and mangling the formatting in CLI output.
    """

    def __str__(self) -> str:
        return str(self.args[0]) if self.args else ""


class WorkerCrashError(ReproError):
    """Raised when an execution-backend worker fails irrecoverably.

    The async subprocess backend restarts crashed workers and requeues
    their in-flight tasks; this error surfaces only when a task keeps
    killing its workers (crash loop) or a task raised inside a worker (the
    traceback text is included)."""


class SimulationError(ReproError):
    """Raised when the simulator detects an illegal protocol action."""


class MessageTooLargeError(SimulationError):
    """Raised when a protocol sends a message exceeding the CONGEST budget.

    The SLEEPING-CONGEST model only allows ``O(log n)``-bit messages per edge
    per round.  The simulator enforces a concrete per-run byte budget and
    raises this error when a message exceeds it (unless enforcement is
    disabled).
    """


class ProtocolViolationError(SimulationError):
    """Raised when a protocol violates the round structure.

    Examples: scheduling a wake-up in the past, or sending on a port that
    does not exist on the node.
    """


class VerificationError(ReproError):
    """Raised when an algorithm output fails verification (e.g. not an MIS)."""
