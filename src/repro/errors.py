"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library-level failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when an algorithm or simulator is configured inconsistently."""


class SimulationError(ReproError):
    """Raised when the simulator detects an illegal protocol action."""


class MessageTooLargeError(SimulationError):
    """Raised when a protocol sends a message exceeding the CONGEST budget.

    The SLEEPING-CONGEST model only allows ``O(log n)``-bit messages per edge
    per round.  The simulator enforces a concrete per-run byte budget and
    raises this error when a message exceeds it (unless enforcement is
    disabled).
    """


class ProtocolViolationError(SimulationError):
    """Raised when a protocol violates the round structure.

    Examples: scheduling a wake-up in the past, or sending on a port that
    does not exist on the node.
    """


class VerificationError(ReproError):
    """Raised when an algorithm output fails verification (e.g. not an MIS)."""
