"""Setuptools shim.

Kept so that ``pip install -e . --no-use-pep517`` works on environments whose
setuptools/pip are too old for PEP 660 editable installs (e.g. offline
machines without the ``wheel`` package).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
