"""Experiment E5 (Lemma 11 / Corollary 12): LDT-MIS on small components.

Regenerates the awake-complexity profile of LDT-MIS as the component size
n' grows, which is the regime Awake-MIS uses it in (n' = O(log n)).
"""

from __future__ import annotations

import pytest

from repro.algorithms.common import mis_from_result
from repro.algorithms.ldt_mis import run_ldt_mis
from repro.core.mis import is_maximal_independent_set
from repro.experiments.registry import experiment_e5
from repro.experiments.tables import format_table
from repro.graphs import generators


def test_bench_e5_report(benchmark, repro_scale):
    report = benchmark.pedantic(
        experiment_e5, args=("smoke" if repro_scale == "smoke" else "default",),
        kwargs={"seed": 5}, rounds=1, iterations=1,
    )
    print()
    print(report.render())
    assert report.passed


@pytest.mark.parametrize("n_prime", [4, 8, 16, 32, 64])
def test_bench_e5_component_size_profile(benchmark, n_prime):
    """Awake complexity of LDT-MIS as a function of the component size n'."""
    graph = generators.gnp_graph(n_prime, expected_degree=4, seed=n_prime)

    def run():
        return run_ldt_mis(graph, seed=9)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    mis = mis_from_result(result)
    assert is_maximal_independent_set(graph, mis)
    print()
    print(format_table([{
        "n_prime": n_prime,
        "awake_complexity": result.metrics.awake_complexity,
        "round_complexity": result.metrics.round_complexity,
        "mis_size": len(mis),
    }], title=f"E5 data point (n'={n_prime})"))
