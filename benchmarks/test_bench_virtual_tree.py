"""Experiment E8 (Figures 1 and 2): the virtual-binary-tree worked example.

Regenerates the B([1,6]) example of the paper's figures and benchmarks the
communication-set computation itself (it is on the hot path of VT-MIS and of
Awake-MIS's phase scheduling).
"""

from __future__ import annotations

from repro.core.virtual_tree import VirtualTree, communication_set, figure_example
from repro.experiments.registry import experiment_e8
from repro.experiments.tables import format_table


def test_bench_e8_report(benchmark):
    report = benchmark.pedantic(experiment_e8, rounds=1, iterations=1)
    print()
    print(report.render())
    assert report.passed


def test_bench_e8_figure_example(benchmark):
    example = benchmark(figure_example)
    assert example["S_3"] == [3, 4, 5]
    assert example["S_5"] == [5, 6]
    print()
    rows = [{"quantity": k, "value": v} for k, v in example.items()]
    print(format_table(rows, title="E8: Figure 1/2 regenerated"))


def test_bench_e8_communication_set_throughput(benchmark):
    """Micro-benchmark: computing S_k([1, 4096]) for a random k."""
    def compute():
        return communication_set(1234, 4096)

    result = benchmark(compute)
    assert 1234 in result


def test_bench_e8_full_tree_build(benchmark):
    """Building every communication set of a 1024-step schedule."""
    tree = benchmark.pedantic(VirtualTree.build, args=(1024,), rounds=1,
                              iterations=1)
    assert tree.max_awake_rounds() <= 11
