"""Shared configuration for the benchmark harness.

Each benchmark file regenerates one experiment of DESIGN.md §3 (E1–E8).  The
benchmarks print the experiment's table (so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the EXPERIMENTS.md
numbers) and use pytest-benchmark to time the underlying measurement, which
keeps the harness honest about simulation cost.

Sizes are deliberately moderate so the full benchmark suite completes in a
few minutes on a laptop; pass ``--repro-scale=full`` for the larger sweeps
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="default",
        choices=["smoke", "default", "full"],
        help="sweep scale used by the experiment benchmarks",
    )


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")
