"""Shared configuration for the benchmark harness.

Each benchmark file regenerates one experiment of DESIGN.md §3 (E1–E8).  The
benchmarks print the experiment's table (so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the EXPERIMENTS.md
numbers) and use pytest-benchmark to time the underlying measurement, which
keeps the harness honest about simulation cost.

Sizes are deliberately moderate so the full benchmark suite completes in a
few minutes on a laptop; pass ``--repro-scale=full`` for the larger sweeps
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="default",
        choices=["smoke", "default", "full"],
        help="sweep scale used by the experiment benchmarks",
    )


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture
def bench_record():
    """Record one benchmark's numbers into the perf-trajectory JSON file.

    When the environment variable ``REPRO_BENCH_JSON`` names a file, calling
    the fixture as ``bench_record(name, **numbers)`` merges ``{name:
    numbers}`` into that file (read-modify-write, so several benchmarks can
    contribute to one artifact).  CI uploads the result as ``BENCH_pr.json``
    and the committed ``BENCH_seed.json`` holds the baseline; without the
    variable the fixture is a no-op, so local runs stay side-effect free.
    """
    def record(name: str, **numbers):
        target = os.environ.get("REPRO_BENCH_JSON")
        if not target:
            return
        path = Path(target)
        payload = {}
        if path.exists() and path.stat().st_size > 0:
            payload = json.loads(path.read_text(encoding="utf-8"))
        payload[name] = numbers
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    return record
