"""Benchmark: the numpy whole-round engine vs the generator fast loop.

Unmetered Luby on a gnp graph at n ≥ 20k — the workload the vectorized
engine targets: every undecided node is awake in every iteration, so the
generator fast loop resumes tens of thousands of generators per round
while the vectorized engine computes the same rounds as a handful of
array operations over the CSR arrays.

Byte-identity is asserted first (outputs, per-node awake/message/round
counters, ``awake_by_label`` — the engine contract), then the speedup:
the ≥5× floor is part of the engine's acceptance criteria, measured
best-of-N on both sides so a transient scheduler stall on a shared CI
runner cannot fail it spuriously.  Both engines' throughput lands in the
perf-trajectory file (``vectorized_luby_tasks_per_second`` /
``generator_luby_tasks_per_second``) and is gated by
``compare_bench.py`` against ``BENCH_seed.json``.
"""

from __future__ import annotations

import time

from repro.algorithms.luby import luby_protocol
from repro.experiments.tables import format_table
from repro.graphs.generators import build_csr
from repro.sim.runner import run_protocol

#: Graph size per scale; the tentpole's target is n ≈ 20k (never smaller).
N_BY_SCALE = {"smoke": 20_000, "default": 20_000, "full": 30_000}

#: Timed (generator, vectorized) repetitions per scale.  The generator
#: side costs ~2s per run, so it gets fewer repetitions; best-of is used
#: for the speedup either way.
RUNS_BY_SCALE = {"smoke": (2, 4), "default": (3, 5), "full": (3, 6)}

#: The asserted speedup floor (acceptance criterion of the engine).
SPEEDUP_FLOOR = 5.0

GRAPH_SEED = 5


def _summarize(result):
    """Every byte an engine is allowed to influence — i.e. none."""
    per_node = [
        (node.awake_rounds, node.messages_sent, node.messages_received,
         node.terminated_round)
        for node in result.metrics.per_node
    ]
    return (result.outputs, per_node, result.awake_by_label,
            result.metrics.active_rounds, result.metrics.last_active_round,
            result.metrics.bits_metered)


def test_bench_vectorized_rounds(repro_scale, bench_record):
    n = N_BY_SCALE[repro_scale]
    generator_runs, vectorized_runs = RUNS_BY_SCALE[repro_scale]
    csr = build_csr("gnp", n, seed=GRAPH_SEED)

    # Warm both engines (numpy import, allocator, code caches) and pin the
    # byte-identity contract on this exact workload before timing anything.
    warm_generator = run_protocol(csr, luby_protocol, seed=0,
                                  vectorized=False)
    warm_vectorized = run_protocol(csr, luby_protocol, seed=0,
                                   vectorized=True)
    assert _summarize(warm_vectorized) == _summarize(warm_generator)
    assert list(warm_vectorized.outputs) == list(warm_generator.outputs)

    generator_times = []
    for run in range(generator_runs):
        started = time.perf_counter()
        run_protocol(csr, luby_protocol, seed=run + 1, vectorized=False)
        generator_times.append(time.perf_counter() - started)
    vectorized_times = []
    for run in range(vectorized_runs):
        started = time.perf_counter()
        run_protocol(csr, luby_protocol, seed=run + 1, vectorized=True)
        vectorized_times.append(time.perf_counter() - started)

    generator_seconds = sum(generator_times)
    vectorized_seconds = sum(vectorized_times)
    generator_rate = generator_runs / max(generator_seconds, 1e-9)
    vectorized_rate = vectorized_runs / max(vectorized_seconds, 1e-9)
    speedup = min(generator_times) / max(min(vectorized_times), 1e-9)

    rows = [
        {"engine": f"generator fast loop (x{generator_runs})",
         "best_s": round(min(generator_times), 3),
         "tasks_per_s": round(generator_rate, 2)},
        {"engine": f"vectorized (x{vectorized_runs})",
         "best_s": round(min(vectorized_times), 3),
         "tasks_per_s": round(vectorized_rate, 2)},
        {"engine": "speedup (best-of)", "best_s": round(speedup, 2),
         "tasks_per_s": ""},
    ]
    print()
    print(format_table(rows, title=f"vectorized rounds, unmetered luby "
                                   f"(gnp n={n}, m={csr.m})"))

    bench_record(
        "vectorized_rounds",
        scale=repro_scale,
        n=n,
        edges=csr.m,
        generator_runs=generator_runs,
        vectorized_runs=vectorized_runs,
        generator_luby_seconds=round(generator_seconds, 4),
        vectorized_luby_seconds=round(vectorized_seconds, 4),
        generator_luby_tasks_per_second=round(generator_rate, 3),
        vectorized_luby_tasks_per_second=round(vectorized_rate, 3),
        speedup=round(speedup, 3),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized engine only {speedup:.2f}x the generator fast loop "
        f"on unmetered luby over gnp n={n} (floor {SPEEDUP_FLOOR}x); "
        "whole-round vectorization is not engaging or has regressed")
