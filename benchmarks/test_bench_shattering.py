"""Experiment E7 (Lemma 3): shattering by a random 2*Delta partition.

Regenerates the largest-component vs maximum-degree table, plus the negative
control showing that an under-sized partition does *not* shatter.
"""

from __future__ import annotations

from repro.analysis.components import undersized_partition_failure
from repro.experiments.registry import experiment_e7
from repro.experiments.tables import format_table


def test_bench_e7_report(benchmark, repro_scale):
    report = benchmark.pedantic(
        experiment_e7, args=(repro_scale,), kwargs={"seed": 7},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    assert report.passed


def test_bench_e7_negative_control(benchmark):
    """Partitioning into 2 classes instead of 2*Delta leaves a giant component."""
    def run():
        return undersized_partition_failure(n=1024, degree=16, classes=2,
                                            trials=2, seed=8)

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "classes": m.classes,
            "largest_component": m.largest_component,
            "lemma3_bound": round(m.lemma_bound, 1),
            "shattered": m.within_bound,
        }
        for m in measurements
    ]
    print()
    print(format_table(rows, title="E7 negative control (2 classes only)"))
    assert any(not m.within_bound for m in measurements)
