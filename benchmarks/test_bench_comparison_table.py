"""Experiment E2: Awake-MIS vs the O(log n) baselines (Theorem 13 context).

Regenerates the awake/round comparison table between Awake-MIS, Luby and the
parallel rank-greedy baseline, and reports which growth law each algorithm's
awake complexity follows.
"""

from __future__ import annotations

from repro.experiments.registry import experiment_e2
from repro.experiments.sweeps import run_sweep
from repro.experiments.tables import format_table


def test_bench_e2_comparison_report(benchmark, repro_scale):
    report = benchmark.pedantic(
        experiment_e2, args=(repro_scale,), kwargs={"seed": 2},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    assert report.passed


def test_bench_e2_node_averaged_awake(benchmark):
    """The node-averaged awake comparison (the measure of [16] / [26])."""
    def run():
        return run_sweep(
            algorithms=["awake_mis", "luby"],
            sizes=[64, 128],
            families=("gnp",),
            repetitions=1,
            seed=3,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "algorithm": row["algorithm"],
            "n": row["n"],
            "node_averaged_awake": row["avg_awake_mean"],
            "awake_max": row["awake_max"],
            "rounds": row["rounds_mean"],
        }
        for row in sweep.rows()
    ]
    print()
    print(format_table(rows, title="E2: node-averaged awake complexity"))
    assert sweep.all_verified
