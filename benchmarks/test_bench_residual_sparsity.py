"""Experiment E6 (Lemma 2): residual sparsity of randomized greedy MIS.

Regenerates the residual-max-degree vs prefix-size table and checks every
point against the lemma's (t'/t) ln(n/eps) bound.
"""

from __future__ import annotations

from repro.analysis.residual import run_residual_experiment
from repro.experiments.registry import experiment_e6
from repro.experiments.tables import format_table
from repro.graphs import generators


def test_bench_e6_report(benchmark, repro_scale):
    report = benchmark.pedantic(
        experiment_e6, args=(repro_scale,), kwargs={"seed": 6},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    assert report.passed


def test_bench_e6_dense_graph(benchmark):
    """Lemma 2 on a denser graph, where the residual reduction is dramatic."""
    graph = generators.gnp_graph(1024, expected_degree=64, seed=7)

    def run():
        return run_residual_experiment(graph, trials=2, seed=8)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(result.rows(), title="E6: dense G(n, 64/n)"))
    assert result.all_within_bound
