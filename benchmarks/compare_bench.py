#!/usr/bin/env python3
"""Gate benchmark throughput against a committed baseline.

CI's benchmark-smoke job writes ``BENCH_pr.json`` (every ``bench_record``
call from the benchmark suite merges into it) and this script diffs it
against the committed ``BENCH_seed.json``::

    python benchmarks/compare_bench.py BENCH_pr.json BENCH_seed.json

Every *shared* numeric leaf is listed with its delta; leaves whose
dotted path ends in ``tasks_per_second`` are **gated** — any gated key
regressing by more than :data:`REGRESSION_THRESHOLD` (30%) fails the
run.  Keys present on only one side are reported but never gated (new
benchmarks appear, machines differ in what they record).

Throughput over a sub-second measurement is noise, not signal — on a
shared CI runner the same smoke benchmark swings 3× run to run — so a
gated key is only *enforced* when its sibling duration key (same dotted
prefix, ``tasks_per_second`` → ``seconds``) reaches
:data:`MIN_GATE_SECONDS` on either side.  That skews exactly the right
way: a real collapse (a serialised pipeline, an accidental O(n²))
inflates the PR-side duration past the floor and fails the gate, while
scheduler jitter on a 100ms measurement is listed as ``noisy`` and
ignored.  A gated key with no sibling duration is enforced
unconditionally.

``--warn-only`` reports the same table and regressions but always exits
0 — the escape hatch CI wires to the ``perf-regression-ok`` PR label for
intentional trade-offs.  Exit codes: 0 ok (or warn-only), 1 gated
regression, 2 unusable input (missing/invalid file).

Stdlib only, importable (``load``, ``compare``, ``main``) so the unit
tests can feed it synthetic regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterator, Tuple

#: Fractional throughput loss on a gated key that fails the run.
REGRESSION_THRESHOLD = 0.30

#: A dotted path is gated when it ends with this suffix.
GATED_SUFFIX = "tasks_per_second"

#: Suffix of the sibling key holding the measurement's wall-clock cost.
DURATION_SUFFIX = "seconds"

#: Minimum wall clock (either side) for a gated key to be enforced.
MIN_GATE_SECONDS = 0.5


def numeric_leaves(data: Any, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf of *data*."""
    if isinstance(data, bool):
        return
    if isinstance(data, (int, float)):
        yield prefix, float(data)
    elif isinstance(data, dict):
        for key in sorted(data):
            child = f"{prefix}.{key}" if prefix else str(key)
            yield from numeric_leaves(data[key], child)
    elif isinstance(data, list):
        for position, item in enumerate(data):
            yield from numeric_leaves(item, f"{prefix}[{position}]")


def load(path: str) -> Dict[str, float]:
    """Load *path* and flatten it to ``{dotted.path: value}``."""
    with open(path, encoding="utf-8") as handle:
        return dict(numeric_leaves(json.load(handle)))


def _measured_long_enough(path: str, pr: Dict[str, float],
                          seed: Dict[str, float]) -> bool:
    """Whether *path*'s sibling duration clears :data:`MIN_GATE_SECONDS`.

    ``a.b.serial_tasks_per_second`` → ``a.b.serial_seconds``; when
    neither file records the sibling, the key is assumed long enough
    (enforced unconditionally).
    """
    sibling = path[:-len(GATED_SUFFIX)] + DURATION_SUFFIX
    durations = [source[sibling] for source in (pr, seed)
                 if sibling in source]
    if not durations:
        return True
    return max(durations) >= MIN_GATE_SECONDS


def compare(pr: Dict[str, float], seed: Dict[str, float]) -> Dict[str, Any]:
    """Diff two flattened benchmark maps.

    Returns ``{"rows": [...], "regressions": [...], "only_pr": [...],
    "only_seed": [...]}`` where each row is ``(path, seed_value,
    pr_value, delta_fraction_or_None, gate_state)`` — gate_state one of
    ``"gated"`` (enforced), ``"noisy"`` (gated suffix but sub-floor
    measurement) or ``""`` — and *regressions* holds the enforced rows
    past :data:`REGRESSION_THRESHOLD`.
    """
    shared = sorted(set(pr) & set(seed))
    rows = []
    regressions = []
    for path in shared:
        seed_value, pr_value = seed[path], pr[path]
        delta = ((pr_value - seed_value) / seed_value if seed_value
                 else None)
        if not path.endswith(GATED_SUFFIX):
            gate_state = ""
        elif _measured_long_enough(path, pr, seed):
            gate_state = "gated"
        else:
            gate_state = "noisy"
        rows.append((path, seed_value, pr_value, delta, gate_state))
        if (gate_state == "gated" and delta is not None
                and -delta > REGRESSION_THRESHOLD):
            regressions.append((path, seed_value, pr_value, delta))
    return {
        "rows": rows,
        "regressions": regressions,
        "only_pr": sorted(set(pr) - set(seed)),
        "only_seed": sorted(set(seed) - set(pr)),
    }


def _print_report(result: Dict[str, Any]) -> None:
    rows = result["rows"]
    if not rows:
        print("no shared numeric keys between PR and seed benchmarks")
    else:
        width = max(len(path) for path, *_ in rows)
        print(f"{'key'.ljust(width)}  {'seed':>12}  {'pr':>12}  "
              f"{'delta':>8}  gate")
        for path, seed_value, pr_value, delta, gate_state in rows:
            delta_text = "n/a" if delta is None else f"{delta:+.1%}"
            print(f"{path.ljust(width)}  {seed_value:>12.3f}  "
                  f"{pr_value:>12.3f}  {delta_text:>8}  {gate_state}")
    for label, key in (("only in PR", "only_pr"), ("only in seed",
                                                   "only_seed")):
        extra = result[key]
        if extra:
            shown = ", ".join(extra[:8])
            more = f", … and {len(extra) - 8} more" if len(extra) > 8 else ""
            print(f"{label} ({len(extra)} key(s), not gated): "
                  f"{shown}{more}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail CI when a gated benchmark key regresses past "
                    f"{REGRESSION_THRESHOLD:.0%}")
    parser.add_argument("pr_json", help="benchmark JSON from this run")
    parser.add_argument("seed_json", help="committed baseline JSON")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (CI wires "
                             "this to the perf-regression-ok PR label)")
    args = parser.parse_args(argv)

    try:
        pr = load(args.pr_json)
        seed = load(args.seed_json)
    except (OSError, ValueError) as error:
        print(f"compare_bench: cannot load benchmarks: {error}",
              file=sys.stderr)
        return 2

    result = compare(pr, seed)
    _print_report(result)
    if not result["regressions"]:
        print(f"benchmark gate: OK (no gated key regressed "
              f">{REGRESSION_THRESHOLD:.0%})")
        return 0
    print(f"benchmark gate: {len(result['regressions'])} gated key(s) "
          f"regressed more than {REGRESSION_THRESHOLD:.0%} vs seed:",
          file=sys.stderr)
    for path, seed_value, pr_value, delta in result["regressions"]:
        print(f"  {path}: {seed_value:.3f} -> {pr_value:.3f} "
              f"({delta:+.1%})", file=sys.stderr)
    if args.warn_only:
        print("warn-only mode: not failing the run", file=sys.stderr)
        return 0
    print("apply the 'perf-regression-ok' label (or update "
          "BENCH_seed.json) if this trade-off is intentional",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
