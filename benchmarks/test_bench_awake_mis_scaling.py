"""Experiment E1 (Theorem 13): awake complexity of Awake-MIS vs n.

Regenerates the scaling series of Awake-MIS over G(n, p) and random
geometric graphs, prints the table and the growth-law fit, and times one
representative run.
"""

from __future__ import annotations

import pytest

from repro.algorithms.awake_mis import run_awake_mis
from repro.algorithms.common import mis_from_result
from repro.core.mis import is_maximal_independent_set
from repro.experiments.registry import experiment_e1
from repro.experiments.tables import format_table
from repro.graphs import generators


def test_bench_e1_scaling_report(benchmark, repro_scale):
    """Produce the full E1 report (the table EXPERIMENTS.md records)."""
    report = benchmark.pedantic(
        experiment_e1, args=(repro_scale,), kwargs={"seed": 1},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    assert report.passed


@pytest.mark.parametrize("n", [64, 128, 256])
def test_bench_e1_single_run(benchmark, n):
    """Time one Awake-MIS run per size (the series' raw data points)."""
    graph = generators.gnp_graph(n, expected_degree=8, seed=n)

    def run():
        return run_awake_mis(graph, seed=17)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    mis = mis_from_result(result)
    assert is_maximal_independent_set(graph, mis)
    print()
    print(format_table([{
        "n": n,
        "awake_complexity": result.metrics.awake_complexity,
        "node_averaged_awake": round(result.metrics.node_averaged_awake, 2),
        "round_complexity": result.metrics.round_complexity,
        "mis_size": len(mis),
    }], title=f"E1 data point (n={n})"))
