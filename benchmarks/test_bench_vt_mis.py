"""Experiment E4 (Lemma 10): VT-MIS vs the naive distributed greedy.

Regenerates the exponential awake-complexity separation between VT-MIS
(O(log I) awake) and the naive implementation (Theta(I) awake) while both
compute the same LFMIS in O(I) rounds.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import run_mis
from repro.experiments.registry import experiment_e4
from repro.experiments.tables import format_table
from repro.graphs import generators


def test_bench_e4_report(benchmark, repro_scale):
    report = benchmark.pedantic(
        experiment_e4, args=(repro_scale,), kwargs={"seed": 4},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    assert report.passed


@pytest.mark.parametrize("id_bound_factor", [1, 4, 16])
def test_bench_e4_id_space_dependence(benchmark, id_bound_factor):
    """Lemma 10's awake bound is O(log I): grow I, watch the gap widen."""
    graph = generators.gnp_graph(96, expected_degree=6, seed=6)
    n = graph.number_of_nodes()
    id_bound = n * id_bound_factor
    import random

    labels = list(graph.nodes)
    random.Random(1).shuffle(labels)
    ids = {label: {"id": 1 + index * id_bound_factor}
           for index, label in enumerate(labels)}

    def run():
        return run_mis(graph, algorithm="vt_mis", seed=2,
                       id_bound=id_bound, local_inputs=ids)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.verified
    print()
    print(format_table([{
        "id_bound": id_bound,
        "vt_mis_awake": result.metrics.awake_complexity,
        "vt_mis_rounds": result.metrics.round_complexity,
    }], title="E4: VT-MIS awake complexity vs ID bound"))
