"""Benchmark: parallel sweep executor vs the in-process serial path.

Runs the same representative grid (two algorithms × several sizes × a few
repetitions) once serially (``jobs=1``) and once fanned out over worker
processes, prints both wall times and the speedup, and asserts the
executor's core guarantee: the rows are byte-identical either way.

The speedup itself is hardware-dependent (a single-core CI runner sees
none, a laptop sees ~#cores once per-task cost dominates pool startup), so
it is printed rather than asserted.

The per-run numbers (wall clock and tasks/second for both executors) are
also written to the machine-readable perf-trajectory file when
``REPRO_BENCH_JSON`` is set — see the ``bench_record`` fixture.
"""

from __future__ import annotations

import os
import time

from repro.experiments.executor import plan_sweep_tasks
from repro.experiments.sweeps import run_sweep
from repro.experiments.tables import format_table

#: Representative grid: cheap baselines at sweep-relevant sizes.
GRID_BY_SCALE = {
    "smoke": dict(algorithms=["luby", "vt_mis"], sizes=[64, 128],
                  families=("gnp",), repetitions=2, seed=21),
    "default": dict(algorithms=["luby", "vt_mis"], sizes=[64, 128, 256],
                    families=("gnp",), repetitions=3, seed=21),
    "full": dict(algorithms=["luby", "vt_mis"], sizes=[64, 128, 256, 512],
                 families=("gnp",), repetitions=3, seed=21),
}


def test_bench_parallel_sweep_equivalence_and_speedup(benchmark, repro_scale,
                                                      bench_record):
    grid = GRID_BY_SCALE[repro_scale]
    jobs = min(4, os.cpu_count() or 1)
    task_count = len(plan_sweep_tasks(**grid))

    started = time.perf_counter()
    serial = run_sweep(**grid, jobs=1)
    serial_seconds = time.perf_counter() - started

    parallel = benchmark.pedantic(
        lambda: run_sweep(**grid, jobs=jobs), rounds=1, iterations=1,
    )
    parallel_seconds = benchmark.stats.stats.mean

    assert repr(parallel.rows()) == repr(serial.rows())
    assert parallel.fits("awake_max") == serial.fits("awake_max")
    assert parallel.all_verified

    serial_rate = task_count / max(serial_seconds, 1e-9)
    parallel_rate = task_count / max(parallel_seconds, 1e-9)
    rows = [
        {"executor": "serial (jobs=1)", "seconds": round(serial_seconds, 3),
         "tasks_per_s": round(serial_rate, 2)},
        {"executor": f"parallel (jobs={jobs})",
         "seconds": round(parallel_seconds, 3),
         "tasks_per_s": round(parallel_rate, 2)},
        {"executor": "speedup",
         "seconds": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
         "tasks_per_s": ""},
    ]
    print()
    print(format_table(rows, title=f"parallel sweep executor "
                                   f"({os.cpu_count()} CPUs visible)"))
    print(format_table(parallel.rows(), title="sweep rows (identical to serial)"))

    bench_record(
        "parallel_sweep",
        scale=repro_scale,
        tasks=task_count,
        jobs=jobs,
        cpu_count=os.cpu_count(),
        serial_seconds=round(serial_seconds, 4),
        parallel_seconds=round(parallel_seconds, 4),
        serial_tasks_per_second=round(serial_rate, 3),
        parallel_tasks_per_second=round(parallel_rate, 3),
        speedup=round(serial_seconds / max(parallel_seconds, 1e-9), 3),
    )


def test_bench_backend_matrix(repro_scale, bench_record):
    """Time every scheduler × transport combination; record tasks/sec.

    Byte-identity across combinations is asserted here too (a benchmark
    that silently computed different numbers would be meaningless); the
    timing spread — serial vs GIL-bound threads vs pool vs framed-JSON
    subprocesses vs TCP workers, and fifo vs large-first vs cost-model
    dispatch — is what the perf trajectory tracks.  The matrix iterates
    ``available_schedulers()``, so new policies (cost-model landed this
    way) get a row automatically.  The large-first/cost-model rows are
    where the straggler-tail win on skewed (ascending-n) grids shows
    up; the ``socket`` rows run against two freshly served local
    workers.
    """
    from repro.experiments.backends import (ComposedBackend, SocketTransport,
                                            available_schedulers,
                                            available_transports)
    from repro.experiments.worker import spawn_local_worker

    grid = GRID_BY_SCALE[repro_scale]
    jobs = min(4, os.cpu_count() or 1)
    task_count = len(plan_sweep_tasks(**grid))
    workers = [spawn_local_worker() for _ in range(2)]
    addresses = ",".join(address for _, address in workers)
    # One 2-slot worker per slot mode: process subprocesses mapping the
    # shared CSR cache vs the historical GIL-bound slot threads.
    slot_workers = {
        "socket[proc-slots]": spawn_local_worker(slots=2),
        "socket[thread-slots]": spawn_local_worker(slots=2,
                                                   slot_mode="thread"),
    }

    try:
        reference = None
        rows, numbers, telemetry = [], {}, {}
        # The scheduler × transport grid, plus two windowed socket
        # variants (fifo only, to keep the matrix inside its CI budget):
        # the strict window-1 alternation vs the pipelined+batched
        # default the CLI now composes — and one row per worker slot
        # mode, dialing both slots of a single 2-slot worker process.
        combos = [(scheduler, transport, None)
                  for transport in available_transports()
                  for scheduler in available_schedulers()]
        combos += [("fifo", "socket", dict(window=1, max_batch=1)),
                   ("fifo", "socket", dict(window=4, max_batch=8))]
        combos += [("fifo", variant, None) for variant in slot_workers]
        for scheduler, transport, pipeline in combos:
            if transport in slot_workers:
                _, slot_address = slot_workers[transport]
                backend = ComposedBackend(
                    scheduler=scheduler,
                    transport=SocketTransport(f"{slot_address}*2"),
                    jobs=jobs)
            elif transport == "socket":
                backend = ComposedBackend(
                    scheduler=scheduler,
                    transport=SocketTransport(addresses, **(pipeline or {})),
                    jobs=jobs)
            else:
                backend = ComposedBackend(scheduler=scheduler,
                                          transport=transport, jobs=jobs)
            started = time.perf_counter()
            sweep = run_sweep(**grid, jobs=jobs, backend=backend)
            seconds = time.perf_counter() - started
            if reference is None:
                reference = sweep
            assert repr(sweep.rows()) == repr(reference.rows())
            rate = task_count / max(seconds, 1e-9)
            variant = transport
            if pipeline:
                variant += (f"(w={pipeline['window']},"
                            f"b={pipeline['max_batch']})")
            label = f"{scheduler}+{variant}"
            rows.append({"scheduler": scheduler, "transport": variant,
                         "jobs": jobs, "seconds": round(seconds, 3),
                         "tasks_per_s": round(rate, 2)})
            numbers[f"{label}_seconds"] = round(seconds, 4)
            numbers[f"{label}_tasks_per_second"] = round(rate, 3)
            # Machine-readable transport telemetry per framed combo:
            # the per-worker RTT/frame/batch counters land next to the
            # throughput they explain.  Observational (the regression
            # gate only gates *_tasks_per_second keys).
            workers_block = backend.telemetry().get("workers")
            if workers_block:
                telemetry[label] = workers_block

        # Round-engine rows: the same luby tasks unmetered (CONGEST off),
        # once pinned to the generator fast loop and once on the numpy
        # vectorized engine.  Unmetered rows record max_message_bits=None
        # where the metered reference records a measurement, so the two
        # engine sweeps are byte-compared against *each other*, not
        # against the metered matrix above.  At matrix sizes the numpy
        # engine's fixed per-run cost can outweigh its per-round win —
        # the asserted ≥5× speedup lives at n≈20k in
        # test_bench_vectorized_rounds.py; these rows just track the
        # small-n regime per PR.
        engine_grid = dict(grid, algorithms=["luby"])
        engine_task_count = len(plan_sweep_tasks(**engine_grid))
        engine_sweeps = {}
        for engine, pinned in (("generator-loop", False),
                               ("vectorized", True)):
            params = {"luby": {"enforce_congest": False,
                               "vectorized": pinned}}
            started = time.perf_counter()
            engine_sweeps[engine] = run_sweep(**engine_grid,
                                              algorithm_params=params)
            seconds = time.perf_counter() - started
            rate = engine_task_count / max(seconds, 1e-9)
            label = f"unmetered-luby+{engine}"
            rows.append({"scheduler": "serial", "transport": label,
                         "jobs": 1, "seconds": round(seconds, 3),
                         "tasks_per_s": round(rate, 2)})
            numbers[f"{label}_seconds"] = round(seconds, 4)
            numbers[f"{label}_tasks_per_second"] = round(rate, 3)
        assert (repr(engine_sweeps["vectorized"].rows())
                == repr(engine_sweeps["generator-loop"].rows()))
        assert engine_sweeps["vectorized"].all_verified
    finally:
        for proc, _ in list(workers) + list(slot_workers.values()):
            proc.kill()
            proc.wait()

    print()
    print(format_table(rows, title=f"scheduler x transport matrix "
                                   f"({task_count} tasks, jobs={jobs}, "
                                   "socket = 2 local workers)"))
    bench_record("backend_matrix", scale=repro_scale, tasks=task_count,
                 jobs=jobs, cpu_count=os.cpu_count(), telemetry=telemetry,
                 **numbers)


def test_bench_windowed_socket(bench_record):
    """Pipelining win on a small-task, high-latency link — asserted.

    Tiny tasks over a link with per-frame latency are exactly where the
    historical one-frame-in-flight alternation drowns in round trips:
    every task pays a full RTT of dead air.  ``frame_latency`` injects a
    coordinator-side delay before each frame *write* (overlapping worker
    execution, like a real WAN), so a window-1 sweep of N tasks pays
    ~N×latency of serialised stalls while the windowed+batched transport
    amortises the same latency over whole batches and keeps the window
    full.  The ≥2× bound is deliberately loose — the measured gap on this
    grid is typically 4×+ — so the assertion survives noisy CI runners
    while still catching a transport that quietly stopped pipelining.

    Unlike the hardware-dependent speedups above, this one *is* asserted:
    the injected latency dominates task cost by construction, so the
    ratio measures protocol behaviour, not the host.
    """
    from repro.experiments.backends import ComposedBackend, SocketTransport
    from repro.experiments.worker import spawn_local_worker

    grid = dict(algorithms=["luby"], sizes=[8, 12], families=("gnp",),
                repetitions=16, seed=77)  # 32 tiny (~1ms) tasks
    task_count = len(plan_sweep_tasks(**grid))
    frame_latency = 0.03
    proc, address = spawn_local_worker(slots=2)
    workers = f"{address}*2"

    def timed(**pipeline):
        backend = ComposedBackend(transport=SocketTransport(
            workers, frame_latency=frame_latency, **pipeline))
        started = time.perf_counter()
        sweep = run_sweep(**grid, backend=backend)
        return (time.perf_counter() - started, sweep,
                backend.transport.peak_window, backend.telemetry())

    try:
        serial = run_sweep(**grid)
        stop_and_wait_seconds, stop_and_wait, _, _ = timed(window=1,
                                                           max_batch=1)
        (windowed_seconds, windowed, peak_window,
         windowed_telemetry) = timed(window="adaptive", max_batch=8)
    finally:
        proc.kill()
        proc.wait()

    assert repr(stop_and_wait.rows()) == repr(serial.rows())
    assert repr(windowed.rows()) == repr(serial.rows())
    speedup = stop_and_wait_seconds / max(windowed_seconds, 1e-9)

    rows = [
        {"transport": "socket w=1 b=1 (stop-and-wait)",
         "seconds": round(stop_and_wait_seconds, 3),
         "tasks_per_s": round(task_count / max(stop_and_wait_seconds,
                                               1e-9), 2)},
        {"transport": "socket w=adaptive b=8",
         "seconds": round(windowed_seconds, 3),
         "tasks_per_s": round(task_count / max(windowed_seconds, 1e-9), 2)},
        {"transport": "speedup", "seconds": round(speedup, 2),
         "tasks_per_s": ""},
    ]
    print()
    print(format_table(rows, title=f"windowed socket pipelining "
                                   f"({task_count} tiny tasks, "
                                   f"{frame_latency * 1000:.0f}ms frame "
                                   f"latency, peak window {peak_window})"))

    bench_record(
        "windowed_socket",
        tasks=task_count,
        frame_latency=frame_latency,
        peak_window=peak_window,
        stop_and_wait_seconds=round(stop_and_wait_seconds, 4),
        windowed_seconds=round(windowed_seconds, 4),
        stop_and_wait_tasks_per_second=round(
            task_count / max(stop_and_wait_seconds, 1e-9), 3),
        windowed_tasks_per_second=round(
            task_count / max(windowed_seconds, 1e-9), 3),
        speedup=round(speedup, 3),
        telemetry=windowed_telemetry.get("workers"),
    )
    assert speedup >= 2.0, (
        f"windowed transport only {speedup:.2f}x faster than "
        f"stop-and-wait on a {frame_latency * 1000:.0f}ms-latency link; "
        "pipelining is not engaging")


def test_bench_process_slots_vs_thread_slots(bench_record):
    """Process slots donate cores; thread slots time-slice one GIL.

    The tentpole's headline number: the same CPU-bound grid through a
    4-slot *process-backed* worker vs a 4-slot *thread* worker (one
    worker process each, all four slots dialed).  Thread slots execute
    pure-Python simulation under one GIL, so four of them approximate
    serial throughput; process slots run four interpreters fed from the
    serving process's shared-memory CSR graph cache.

    Byte identity with serial and a leak-free /dev/shm are asserted
    unconditionally.  The ≥2× throughput bound is asserted only where it
    can physically hold (``os.cpu_count() >= 4``); the measured numbers
    are always recorded for the perf trajectory either way.
    """
    from repro.experiments.backends import ComposedBackend, SocketTransport
    from repro.experiments.shm_cache import SEGMENT_PREFIX, active_segments
    from repro.experiments.worker import spawn_local_worker

    # CPU-bound by construction: dense graphs, ~0.15s of simulation per
    # task, negligible frame traffic.
    grid = dict(algorithms=["luby"], sizes=[512], families=("gnp_dense",),
                repetitions=8, seed=33)
    task_count = len(plan_sweep_tasks(**grid))
    slots = 4

    def timed(slot_mode):
        proc, address = spawn_local_worker(slots=slots,
                                           slot_mode=slot_mode)
        try:
            backend = ComposedBackend(transport=SocketTransport(
                f"{address}*{slots}"), jobs=slots)
            started = time.perf_counter()
            sweep = run_sweep(**grid, jobs=slots, backend=backend)
            seconds = time.perf_counter() - started
        finally:
            proc.terminate()
            proc.wait(timeout=10)
        leaked = [name for name in active_segments()
                  if name.startswith(f"{SEGMENT_PREFIX}-{proc.pid}-")]
        return seconds, sweep, leaked

    serial = run_sweep(**grid)
    thread_seconds, thread_sweep, thread_leaked = timed("thread")
    process_seconds, process_sweep, process_leaked = timed("process")

    assert repr(thread_sweep.rows()) == repr(serial.rows())
    assert repr(process_sweep.rows()) == repr(serial.rows())
    # The segment-lifecycle invariant, asserted on every run: nothing in
    # /dev/shm outlives its serving process (thread mode creates none).
    assert thread_leaked == []
    assert process_leaked == []

    thread_rate = task_count / max(thread_seconds, 1e-9)
    process_rate = task_count / max(process_seconds, 1e-9)
    speedup = thread_seconds / max(process_seconds, 1e-9)
    rows = [
        {"worker": f"thread slots (x{slots})",
         "seconds": round(thread_seconds, 3),
         "tasks_per_s": round(thread_rate, 2)},
        {"worker": f"process slots (x{slots})",
         "seconds": round(process_seconds, 3),
         "tasks_per_s": round(process_rate, 2)},
        {"worker": "speedup", "seconds": round(speedup, 2),
         "tasks_per_s": ""},
    ]
    print()
    print(format_table(rows, title=f"process vs thread worker slots "
                                   f"({task_count} CPU-bound tasks, "
                                   f"{os.cpu_count()} CPUs visible)"))

    bench_record(
        "process_slots",
        tasks=task_count,
        slots=slots,
        cpu_count=os.cpu_count(),
        thread_seconds=round(thread_seconds, 4),
        process_seconds=round(process_seconds, 4),
        thread_tasks_per_second=round(thread_rate, 3),
        process_tasks_per_second=round(process_rate, 3),
        speedup=round(speedup, 3),
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"process slots only {speedup:.2f}x thread slots on a "
            f"{os.cpu_count()}-CPU host; slot subprocesses are not "
            "executing in parallel")
