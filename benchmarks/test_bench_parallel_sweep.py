"""Benchmark: parallel sweep executor vs the in-process serial path.

Runs the same representative grid (two algorithms × several sizes × a few
repetitions) once serially (``jobs=1``) and once fanned out over worker
processes, prints both wall times and the speedup, and asserts the
executor's core guarantee: the rows are byte-identical either way.

The speedup itself is hardware-dependent (a single-core CI runner sees
none, a laptop sees ~#cores once per-task cost dominates pool startup), so
it is printed rather than asserted.
"""

from __future__ import annotations

import os
import time

from repro.experiments.sweeps import run_sweep
from repro.experiments.tables import format_table

#: Representative grid: cheap baselines at sweep-relevant sizes.
GRID_BY_SCALE = {
    "smoke": dict(algorithms=["luby", "vt_mis"], sizes=[64, 128],
                  families=("gnp",), repetitions=2, seed=21),
    "default": dict(algorithms=["luby", "vt_mis"], sizes=[64, 128, 256],
                    families=("gnp",), repetitions=3, seed=21),
    "full": dict(algorithms=["luby", "vt_mis"], sizes=[64, 128, 256, 512],
                 families=("gnp",), repetitions=3, seed=21),
}


def test_bench_parallel_sweep_equivalence_and_speedup(benchmark, repro_scale):
    grid = GRID_BY_SCALE[repro_scale]
    jobs = min(4, os.cpu_count() or 1)

    started = time.perf_counter()
    serial = run_sweep(**grid, jobs=1)
    serial_seconds = time.perf_counter() - started

    parallel = benchmark.pedantic(
        lambda: run_sweep(**grid, jobs=jobs), rounds=1, iterations=1,
    )
    parallel_seconds = benchmark.stats.stats.mean

    assert repr(parallel.rows()) == repr(serial.rows())
    assert parallel.fits("awake_max") == serial.fits("awake_max")
    assert parallel.all_verified

    rows = [
        {"executor": "serial (jobs=1)", "seconds": round(serial_seconds, 3)},
        {"executor": f"parallel (jobs={jobs})",
         "seconds": round(parallel_seconds, 3)},
        {"executor": "speedup",
         "seconds": round(serial_seconds / max(parallel_seconds, 1e-9), 2)},
    ]
    print()
    print(format_table(rows, title=f"parallel sweep executor "
                                   f"({os.cpu_count()} CPUs visible)"))
    print(format_table(parallel.rows(), title="sweep rows (identical to serial)"))
