"""Benchmark: parallel sweep executor vs the in-process serial path.

Runs the same representative grid (two algorithms × several sizes × a few
repetitions) once serially (``jobs=1``) and once fanned out over worker
processes, prints both wall times and the speedup, and asserts the
executor's core guarantee: the rows are byte-identical either way.

The speedup itself is hardware-dependent (a single-core CI runner sees
none, a laptop sees ~#cores once per-task cost dominates pool startup), so
it is printed rather than asserted.

The per-run numbers (wall clock and tasks/second for both executors) are
also written to the machine-readable perf-trajectory file when
``REPRO_BENCH_JSON`` is set — see the ``bench_record`` fixture.
"""

from __future__ import annotations

import os
import time

from repro.experiments.executor import plan_sweep_tasks
from repro.experiments.sweeps import run_sweep
from repro.experiments.tables import format_table

#: Representative grid: cheap baselines at sweep-relevant sizes.
GRID_BY_SCALE = {
    "smoke": dict(algorithms=["luby", "vt_mis"], sizes=[64, 128],
                  families=("gnp",), repetitions=2, seed=21),
    "default": dict(algorithms=["luby", "vt_mis"], sizes=[64, 128, 256],
                    families=("gnp",), repetitions=3, seed=21),
    "full": dict(algorithms=["luby", "vt_mis"], sizes=[64, 128, 256, 512],
                 families=("gnp",), repetitions=3, seed=21),
}


def test_bench_parallel_sweep_equivalence_and_speedup(benchmark, repro_scale,
                                                      bench_record):
    grid = GRID_BY_SCALE[repro_scale]
    jobs = min(4, os.cpu_count() or 1)
    task_count = len(plan_sweep_tasks(**grid))

    started = time.perf_counter()
    serial = run_sweep(**grid, jobs=1)
    serial_seconds = time.perf_counter() - started

    parallel = benchmark.pedantic(
        lambda: run_sweep(**grid, jobs=jobs), rounds=1, iterations=1,
    )
    parallel_seconds = benchmark.stats.stats.mean

    assert repr(parallel.rows()) == repr(serial.rows())
    assert parallel.fits("awake_max") == serial.fits("awake_max")
    assert parallel.all_verified

    serial_rate = task_count / max(serial_seconds, 1e-9)
    parallel_rate = task_count / max(parallel_seconds, 1e-9)
    rows = [
        {"executor": "serial (jobs=1)", "seconds": round(serial_seconds, 3),
         "tasks_per_s": round(serial_rate, 2)},
        {"executor": f"parallel (jobs={jobs})",
         "seconds": round(parallel_seconds, 3),
         "tasks_per_s": round(parallel_rate, 2)},
        {"executor": "speedup",
         "seconds": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
         "tasks_per_s": ""},
    ]
    print()
    print(format_table(rows, title=f"parallel sweep executor "
                                   f"({os.cpu_count()} CPUs visible)"))
    print(format_table(parallel.rows(), title="sweep rows (identical to serial)"))

    bench_record(
        "parallel_sweep",
        scale=repro_scale,
        tasks=task_count,
        jobs=jobs,
        cpu_count=os.cpu_count(),
        serial_seconds=round(serial_seconds, 4),
        parallel_seconds=round(parallel_seconds, 4),
        serial_tasks_per_second=round(serial_rate, 3),
        parallel_tasks_per_second=round(parallel_rate, 3),
        speedup=round(serial_seconds / max(parallel_seconds, 1e-9), 3),
    )


def test_bench_backend_matrix(repro_scale, bench_record):
    """Time every scheduler × transport combination; record tasks/sec.

    Byte-identity across combinations is asserted here too (a benchmark
    that silently computed different numbers would be meaningless); the
    timing spread — serial vs GIL-bound threads vs pool vs framed-JSON
    subprocesses vs TCP workers, and fifo vs large-first vs cost-model
    dispatch — is what the perf trajectory tracks.  The matrix iterates
    ``available_schedulers()``, so new policies (cost-model landed this
    way) get a row automatically.  The large-first/cost-model rows are
    where the straggler-tail win on skewed (ascending-n) grids shows
    up; the ``socket`` rows run against two freshly served local
    workers.
    """
    from repro.experiments.backends import (ComposedBackend, SocketTransport,
                                            available_schedulers,
                                            available_transports)
    from repro.experiments.worker import spawn_local_worker

    grid = GRID_BY_SCALE[repro_scale]
    jobs = min(4, os.cpu_count() or 1)
    task_count = len(plan_sweep_tasks(**grid))
    workers = [spawn_local_worker() for _ in range(2)]
    addresses = ",".join(address for _, address in workers)

    try:
        reference = None
        rows, numbers = [], {}
        for transport in available_transports():
            for scheduler in available_schedulers():
                if transport == "socket":
                    backend = ComposedBackend(
                        scheduler=scheduler,
                        transport=SocketTransport(addresses), jobs=jobs)
                else:
                    backend = ComposedBackend(scheduler=scheduler,
                                              transport=transport, jobs=jobs)
                started = time.perf_counter()
                sweep = run_sweep(**grid, jobs=jobs, backend=backend)
                seconds = time.perf_counter() - started
                if reference is None:
                    reference = sweep
                assert repr(sweep.rows()) == repr(reference.rows())
                rate = task_count / max(seconds, 1e-9)
                label = f"{scheduler}+{transport}"
                rows.append({"scheduler": scheduler, "transport": transport,
                             "jobs": jobs, "seconds": round(seconds, 3),
                             "tasks_per_s": round(rate, 2)})
                numbers[f"{label}_seconds"] = round(seconds, 4)
                numbers[f"{label}_tasks_per_second"] = round(rate, 3)
    finally:
        for proc, _ in workers:
            proc.kill()
            proc.wait()

    print()
    print(format_table(rows, title=f"scheduler x transport matrix "
                                   f"({task_count} tasks, jobs={jobs}, "
                                   "socket = 2 local workers)"))
    bench_record("backend_matrix", scale=repro_scale, tasks=task_count,
                 jobs=jobs, cpu_count=os.cpu_count(), **numbers)
