"""Experiment E3 (Corollary 14): the round-efficient Awake-MIS variant.

Regenerates the awake/round trade-off table for the ``variant="round"``
configuration and compares it against the default variant on the same
graphs.
"""

from __future__ import annotations

from repro.algorithms.awake_mis import run_awake_mis
from repro.algorithms.common import mis_from_result
from repro.core.mis import is_maximal_independent_set
from repro.experiments.registry import experiment_e3
from repro.experiments.tables import format_table
from repro.graphs import generators


def test_bench_e3_report(benchmark, repro_scale):
    report = benchmark.pedantic(
        experiment_e3, args=(repro_scale,), kwargs={"seed": 3},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    assert report.passed


def test_bench_e3_variant_side_by_side(benchmark):
    """Both variants on the same graph: same output quality, comparable cost."""
    graph = generators.gnp_graph(128, expected_degree=8, seed=5)

    def run_both():
        return (
            run_awake_mis(graph, seed=7, variant="awake"),
            run_awake_mis(graph, seed=7, variant="round"),
        )

    awake_variant, round_variant = benchmark.pedantic(run_both, rounds=1,
                                                      iterations=1)
    rows = []
    for name, result in (("Theorem 13 (awake)", awake_variant),
                         ("Corollary 14 (round)", round_variant)):
        mis = mis_from_result(result)
        assert is_maximal_independent_set(graph, mis)
        rows.append({
            "variant": name,
            "awake_complexity": result.metrics.awake_complexity,
            "round_complexity": result.metrics.round_complexity,
            "mis_size": len(mis),
        })
    print()
    print(format_table(rows, title="E3: Awake-MIS variants (n=128)"))
