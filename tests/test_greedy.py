"""Tests for sequential randomized greedy MIS and residual sparsity (Lemma 2)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import greedy
from repro.core.mis import greedy_mis_from_order, is_maximal_independent_set
from repro.graphs import generators


class TestRandomOrder:
    def test_is_permutation(self, small_gnp):
        order = greedy.random_order(small_gnp, seed=3)
        assert sorted(order) == sorted(small_gnp.nodes)

    def test_seed_reproducibility(self, small_gnp):
        assert greedy.random_order(small_gnp, seed=5) == \
            greedy.random_order(small_gnp, seed=5)

    def test_different_seeds_differ(self, small_gnp):
        assert greedy.random_order(small_gnp, seed=1) != \
            greedy.random_order(small_gnp, seed=2)


class TestRandomizedGreedy:
    def test_output_is_mis(self, any_small_graph):
        result = greedy.randomized_greedy_mis(any_small_graph, seed=13)
        assert is_maximal_independent_set(any_small_graph, result)

    def test_trace_consistency(self, small_gnp):
        trace = greedy.randomized_greedy_trace(small_gnp, seed=4)
        assert trace.mis == greedy_mis_from_order(small_gnp, trace.order)
        # Every MIS node joined at its own decision position.
        for node in trace.mis:
            assert trace.joined_at[node] == trace.decided_at[node]
        # Every node is decided.
        assert set(trace.decided_at) == set(small_gnp.nodes)

    def test_decided_at_monotone_with_blocking(self, small_gnp):
        trace = greedy.randomized_greedy_trace(small_gnp, seed=4)
        for node in small_gnp.nodes:
            if node not in trace.mis:
                # A non-MIS node was decided when some neighbour joined.
                assert any(
                    neighbor in trace.mis
                    and trace.joined_at[neighbor] == trace.decided_at[node]
                    for neighbor in small_gnp.neighbors(node)
                )


class TestComposability:
    @pytest.mark.parametrize("split", [1, 5, 13, 20])
    def test_composability_on_gnp(self, small_gnp, split):
        order = greedy.random_order(small_gnp, seed=9)
        assert greedy.composability_check(small_gnp, order, split)

    def test_composability_on_structured_graphs(self, any_small_graph):
        order = greedy.random_order(any_small_graph, seed=2)
        split = max(1, any_small_graph.number_of_nodes() // 3)
        assert greedy.composability_check(any_small_graph, order, split)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=35),
           st.randoms(use_true_random=False))
    def test_composability_property(self, n, rng):
        graph = nx.gnp_random_graph(n, 0.3, seed=rng.randrange(2**31))
        order = list(graph.nodes)
        rng.shuffle(order)
        split = rng.randint(1, n)
        assert greedy.composability_check(graph, order, split)


class TestResidualSparsity:
    def test_residual_graph_excludes_covered_nodes(self, small_gnp):
        order = greedy.random_order(small_gnp, seed=21)
        residual = greedy.residual_graph(small_gnp, order, t=10)
        prefix = order[:10]
        prefix_mis = greedy_mis_from_order(small_gnp.subgraph(prefix), prefix)
        covered = greedy.closed_neighborhood(small_gnp, prefix_mis)
        assert not (set(residual.nodes) & covered)

    def test_residual_degree_decreases_with_prefix(self):
        graph = generators.gnp_graph(400, expected_degree=20, seed=5)
        order = greedy.random_order(graph, seed=6)
        early = greedy.residual_max_degree(graph, order, t=10)
        late = greedy.residual_max_degree(graph, order, t=200)
        assert late <= early

    def test_residual_graph_parameter_validation(self, small_gnp):
        order = greedy.random_order(small_gnp, seed=1)
        with pytest.raises(ValueError):
            greedy.residual_graph(small_gnp, order, t=0)
        with pytest.raises(ValueError):
            greedy.residual_graph(small_gnp, order, t=5, t_prime=4)

    def test_lemma2_bound_holds_on_random_graph(self):
        # Lemma 2 with eps = 1/16 on a 512-node graph; the bound is loose, so
        # a single run comfortably respects it.
        graph = generators.gnp_graph(512, expected_degree=16, seed=8)
        points = greedy.residual_sparsity_profile(
            graph, prefix_sizes=[8, 16, 32, 64, 128], seed=3
        )
        assert points, "profile should produce measurements"
        assert all(p.within_bound for p in points)

    def test_profile_skips_invalid_prefixes(self, small_gnp):
        points = greedy.residual_sparsity_profile(
            small_gnp, prefix_sizes=[0, 10**6], seed=1
        )
        assert points == []
