"""Tests for Algorithm LDT-MIS / LDT-MIS-ROUND (Lemma 11 / Corollary 12)."""

from __future__ import annotations

import math

import pytest

from repro.algorithms.common import mis_from_result
from repro.algorithms.ldt_mis import (
    ldt_mis_round_budget,
    permutation_chunk_count,
    permutation_entries_per_chunk,
    run_ldt_mis,
)
from repro.core.mis import is_independent_set, is_maximal_independent_set
from repro.graphs import generators


class TestBudgets:
    def test_entries_per_chunk_positive(self):
        assert permutation_entries_per_chunk(4) >= 1
        assert permutation_entries_per_chunk(1000) >= 1

    def test_chunk_count_covers_all_entries(self):
        for n_bound in (1, 5, 33, 200):
            chunks = permutation_chunk_count(n_bound)
            assert chunks * permutation_entries_per_chunk(n_bound) >= n_bound

    def test_round_budget_is_monotone_in_n_bound(self):
        assert ldt_mis_round_budget(8, 2**20) < ldt_mis_round_budget(64, 2**20)


class TestCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_small_gnp(self, small_gnp, seed):
        result = run_ldt_mis(small_gnp, seed=seed)
        mis = mis_from_result(result)
        assert is_independent_set(small_gnp, mis)
        assert is_maximal_independent_set(small_gnp, mis)

    def test_structured_graphs(self, any_small_graph):
        result = run_ldt_mis(any_small_graph, seed=5)
        mis = mis_from_result(result)
        assert is_maximal_independent_set(any_small_graph, mis)

    def test_disconnected_graph(self, disconnected_graph):
        result = run_ldt_mis(disconnected_graph, seed=4)
        mis = mis_from_result(result)
        assert is_maximal_independent_set(disconnected_graph, mis)

    def test_isolated_nodes(self):
        graph = generators.empty_graph(7)
        result = run_ldt_mis(graph, seed=1)
        assert mis_from_result(result) == set(graph.nodes)

    def test_round_variant(self, small_gnp):
        result = run_ldt_mis(small_gnp, seed=6, variant="round")
        assert is_maximal_independent_set(small_gnp, mis_from_result(result))

    def test_invalid_variant_rejected(self, small_gnp):
        with pytest.raises(ValueError):
            run_ldt_mis(small_gnp, seed=1, variant="bogus")

    def test_large_id_space(self):
        # IDs may be drawn from a space exponentially larger than n'.
        graph = generators.cycle_graph(10)
        result = run_ldt_mis(graph, seed=3, id_space=2**48)
        assert is_maximal_independent_set(graph, mis_from_result(result))

    def test_randomness_changes_output(self):
        # The LFMIS is taken with respect to a *random* order, so different
        # seeds should eventually give different MISs on a path.
        graph = generators.path_graph(15)
        outputs = {frozenset(mis_from_result(run_ldt_mis(graph, seed=s)))
                   for s in range(6)}
        assert len(outputs) > 1


class TestComplexity:
    def test_awake_complexity_scales_with_component_not_ids(self):
        graph = generators.path_graph(6)
        small_ids = run_ldt_mis(graph, seed=2, id_space=2**12)
        huge_ids = run_ldt_mis(graph, seed=2, id_space=2**60)
        # Growing the ID space by 48 bits should barely change the awake
        # complexity (only through the log* term of the construction).
        assert huge_ids.metrics.awake_complexity <= \
            2 * small_ids.metrics.awake_complexity + 20

    def test_round_complexity_within_budget(self):
        graph = generators.gnp_graph(18, p=0.25, seed=7)
        n_bound = 18
        id_space = max(64, 20 ** 3)
        result = run_ldt_mis(graph, seed=1, n_bound=n_bound, id_space=id_space)
        assert result.metrics.round_complexity <= \
            1 + ldt_mis_round_budget(n_bound, id_space)

    def test_congest_messages(self, small_gnp):
        # Metering (and hence max_message_bits) is only active when a bit
        # limit is set; the unmetered fast path skips size estimation.
        n = small_gnp.number_of_nodes()
        budget = 64 * math.ceil(math.log2(n + 2))
        result = run_ldt_mis(small_gnp, seed=8, message_bit_limit=budget)
        assert 0 < result.metrics.max_message_bits <= budget

    def test_uses_component_bound_when_disconnected(self, disconnected_graph):
        # n_bound defaults to the largest component, which is much smaller
        # than the graph; the run must still be correct.
        result = run_ldt_mis(disconnected_graph, seed=9)
        assert is_maximal_independent_set(
            disconnected_graph, mis_from_result(result)
        )
