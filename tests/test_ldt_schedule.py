"""Tests for LDT transmission schedules and Cole–Vishkin colouring."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldt import cole_vishkin as cv
from repro.ldt import schedule


class TestSchedule:
    def test_block_length(self):
        assert schedule.block_length(5) == 12
        with pytest.raises(ValueError):
            schedule.block_length(0)

    def test_root_named_rounds(self):
        s = schedule.schedule_for(block_start=100, n_bound=10, depth=0)
        assert s.down_send == 100
        assert s.side == 100 + 10
        assert s.up_receive == 100 + 2 * 10

    def test_parent_child_alignment_downward(self):
        parent = schedule.schedule_for(50, 8, depth=3)
        child = schedule.schedule_for(50, 8, depth=4)
        assert parent.down_send == child.down_receive

    def test_parent_child_alignment_upward(self):
        parent = schedule.schedule_for(50, 8, depth=3)
        child = schedule.schedule_for(50, 8, depth=4)
        assert child.up_send == parent.up_receive

    def test_side_round_is_depth_independent(self):
        rounds = {schedule.schedule_for(7, 9, depth=d).side for d in range(9)}
        assert len(rounds) == 1

    def test_blocks_do_not_overlap(self):
        first = schedule.schedule_for(0, 6, depth=6)
        second_start = schedule.next_block(0, 6)
        second = schedule.schedule_for(second_start, 6, depth=0)
        assert second.down_send > first.up_send

    def test_depth_beyond_bound_rejected(self):
        with pytest.raises(ValueError):
            schedule.schedule_for(0, 4, depth=5)
        with pytest.raises(ValueError):
            schedule.schedule_for(0, 4, depth=-1)

    def test_next_block_multiple(self):
        assert schedule.next_block(10, 5, blocks=3) == 10 + 3 * schedule.block_length(5)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=2, max_value=200), st.data())
    def test_alignment_property(self, n_bound, data):
        # A component of at most n_bound nodes has tree depth <= n_bound - 1.
        depth = data.draw(st.integers(min_value=1, max_value=n_bound - 1))
        start = data.draw(st.integers(min_value=0, max_value=10**6))
        child = schedule.schedule_for(start, n_bound, depth)
        parent = schedule.schedule_for(start, n_bound, depth - 1)
        assert parent.down_send == child.down_receive
        assert child.up_send == parent.up_receive
        assert child.down_receive < child.side < child.up_receive


class TestColeVishkin:
    def test_cv_step_lowers_colors(self):
        assert cv.cv_step(0b1010, 0b1000) == 2 * 1 + 1
        assert cv.cv_step(0b0111, 0b0110) == 2 * 0 + 1

    def test_cv_step_requires_distinct(self):
        with pytest.raises(ValueError):
            cv.cv_step(5, 5)
        with pytest.raises(ValueError):
            cv.cv_step(-1, 2)

    def test_root_step_differs_from_children_steps(self):
        # root color 12; a child with color 9 differs at bit 0 and bit 2.
        root_new = cv.cv_root_step(12)
        child_new = cv.cv_step(9, 12)
        assert root_new != child_new

    def test_iterations_bound_monotone(self):
        assert cv.iterations_to_six_colors(2**10) <= cv.iterations_to_six_colors(2**60)
        assert cv.iterations_to_six_colors(8) >= 2

    def test_sequential_forest_reaches_six_colors(self):
        # A path (as a rooted tree) with large distinct IDs.
        parents = {i: (i - 1 if i > 0 else None) for i in range(60)}
        colors = {i: 1000 + 37 * i for i in range(60)}
        final = cv.six_color_rooted_forest(parents, colors)
        assert cv.is_proper_coloring(parents, final)
        assert max(final.values()) < cv.FINAL_COLORS

    def test_sequential_forest_star(self):
        parents = {0: None}
        parents.update({i: 0 for i in range(1, 40)})
        colors = {i: i + 1 for i in range(40)}
        final = cv.six_color_rooted_forest(parents, colors)
        assert cv.is_proper_coloring(parents, final)
        assert cv.color_classes_used(final.values()) <= cv.FINAL_COLORS

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=2, max_value=80),
           st.randoms(use_true_random=False))
    def test_random_rooted_tree_property(self, n, rng):
        parents = {0: None}
        for i in range(1, n):
            parents[i] = rng.randrange(i)
        ids = list(range(1, 10 * n, 7))[:n]
        rng.shuffle(ids)
        colors = {i: ids[i] for i in range(n)}
        final = cv.six_color_rooted_forest(parents, colors)
        assert cv.is_proper_coloring(parents, final)
        assert max(final.values()) < cv.FINAL_COLORS
