"""Tests for seeded randomness helpers."""

from __future__ import annotations

import random

import pytest

from repro import rng as rng_module


class TestMakeRng:
    def test_int_seed_deterministic(self):
        assert rng_module.make_rng(7).random() == rng_module.make_rng(7).random()

    def test_random_instance_passthrough(self):
        instance = random.Random(1)
        assert rng_module.make_rng(instance) is instance

    def test_none_gives_generator(self):
        assert isinstance(rng_module.make_rng(None), random.Random)


class TestDeriveSeed:
    def test_deterministic_for_int_master(self):
        assert rng_module.derive_seed(5, 3) == rng_module.derive_seed(5, 3)

    def test_differs_across_indices(self):
        seeds = {rng_module.derive_seed(5, i) for i in range(100)}
        assert len(seeds) == 100

    def test_spawn_rngs_are_independent(self):
        values = {rng_module.spawn_rng(9, i).random() for i in range(50)}
        assert len(values) == 50


class TestRandomUniqueIds:
    def test_ids_are_unique_and_in_range(self):
        ids = rng_module.random_unique_ids(50, 1000, random.Random(1))
        assert len(set(ids)) == 50
        assert all(1 <= i <= 1000 for i in ids)

    def test_dense_space(self):
        ids = rng_module.random_unique_ids(10, 10, random.Random(2))
        assert sorted(ids) == list(range(1, 11))

    def test_impossible_request_rejected(self):
        with pytest.raises(ValueError):
            rng_module.random_unique_ids(11, 10)
