"""Tests for seeded randomness helpers."""

from __future__ import annotations

import random

import pytest

from repro import rng as rng_module


class TestMakeRng:
    def test_int_seed_deterministic(self):
        assert rng_module.make_rng(7).random() == rng_module.make_rng(7).random()

    def test_random_instance_passthrough(self):
        instance = random.Random(1)
        assert rng_module.make_rng(instance) is instance

    def test_none_gives_generator(self):
        assert isinstance(rng_module.make_rng(None), random.Random)


class TestDeriveSeed:
    def test_deterministic_for_int_master(self):
        assert rng_module.derive_seed(5, 3) == rng_module.derive_seed(5, 3)

    def test_differs_across_indices(self):
        seeds = {rng_module.derive_seed(5, i) for i in range(100)}
        assert len(seeds) == 100

    def test_spawn_rngs_are_independent(self):
        values = {rng_module.spawn_rng(9, i).random() for i in range(50)}
        assert len(values) == 50


class TestSpawnRngs:
    """``spawn_rngs`` must equal ``[spawn_rng(m, i) ...]`` bit for bit.

    Both the small-count Python path and the batched numpy + C-seed path
    (count >= 1024) are pinned through ``getstate()``, which captures the
    full 624-word Mersenne state plus ``gauss_next`` — if the batched seed
    arithmetic or the direct C-layer construction ever diverged from
    ``random.Random(derive_seed(...))``, these comparisons would fail.
    """

    @pytest.mark.parametrize("master", [0, 9, -7, 2**80 + 123])
    @pytest.mark.parametrize("count", [0, 1, 50, 1500])
    def test_identical_to_spawn_rng_loop(self, master, count):
        batched = rng_module.spawn_rngs(master, count)
        reference = [rng_module.spawn_rng(master, i) for i in range(count)]
        assert len(batched) == count
        assert [r.getstate() for r in batched] == \
               [r.getstate() for r in reference]

    def test_batched_generators_draw_identically(self):
        batched = rng_module.spawn_rngs(3, 1500)
        reference = [rng_module.spawn_rng(3, i) for i in range(1500)]
        assert [r.randrange(2**62) for r in batched] == \
               [r.randrange(2**62) for r in reference]
        # gauss() exercises the gauss_next slot the fast path resets by hand.
        assert [r.gauss(0, 1) for r in batched[:32]] == \
               [r.gauss(0, 1) for r in reference[:32]]

    def test_random_master_keeps_per_index_draws(self):
        batched = rng_module.spawn_rngs(random.Random(42), 20)
        # A Random master draws a fresh base per index, so generator state
        # advances between spawns; replaying the same draws reproduces it.
        replay = random.Random(42)
        reference = [rng_module.spawn_rng(replay, i) for i in range(20)]
        assert [r.getstate() for r in batched] == \
               [r.getstate() for r in reference]

    def test_none_master_gives_distinct_generators(self):
        rngs = rng_module.spawn_rngs(None, 8)
        assert len(rngs) == 8
        assert all(isinstance(r, random.Random) for r in rngs)
        assert len({r.random() for r in rngs}) == 8


class TestRandomUniqueIds:
    def test_ids_are_unique_and_in_range(self):
        ids = rng_module.random_unique_ids(50, 1000, random.Random(1))
        assert len(set(ids)) == 50
        assert all(1 <= i <= 1000 for i in ids)

    def test_dense_space(self):
        ids = rng_module.random_unique_ids(10, 10, random.Random(2))
        assert sorted(ids) == list(range(1, 11))

    def test_impossible_request_rejected(self):
        with pytest.raises(ValueError):
            rng_module.random_unique_ids(11, 10)
