"""Process-backed worker slots (repro.experiments.worker --slots N).

With ``--slots N > 1`` each coordinator connection is served by its own
slot *subprocess* mapping the serving process's shared-memory CSR graph
cache read-only.  These tests pin the contracts the tentpole makes:

* byte identity with serial under both ``fork`` and ``spawn`` start
  methods (and under the historical ``--slot-mode thread``);
* telemetry names the *executing* process — the hello pid is the slot
  subprocess, not the serving process;
* no shared-memory segment outlives the worker (graceful shutdown
  unlinks everything; the leak check reads /dev/shm, not bookkeeping).
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments.backends import SocketBackend
from repro.experiments.shm_cache import SEGMENT_PREFIX, active_segments
from repro.experiments.sweeps import run_sweep
from repro.experiments.worker import serve

GRID = dict(algorithms=["luby", "vt_mis"], sizes=[16, 32],
            families=("gnp",), repetitions=2, seed=99)


def _worker_segments(pid):
    """Live /dev/shm segments owned by worker process *pid*."""
    return [name for name in active_segments()
            if name.startswith(f"{SEGMENT_PREFIX}-{pid}-")]


@pytest.fixture(scope="module")
def serial_rows():
    sweep = run_sweep(**GRID)
    return repr(sweep.rows()), repr(sweep.fits("awake_max"))


class TestProcessSlotEquivalence:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_byte_identical_to_serial_under_both_start_methods(
            self, spawn_socket_worker, serial_rows, start_method):
        process, address = spawn_socket_worker(
            slots=2, start_method=start_method)
        sweep = run_sweep(**GRID, backend=SocketBackend(
            workers=f"{address}*2"))
        assert (repr(sweep.rows()),
                repr(sweep.fits("awake_max"))) == serial_rows
        assert process.poll() is None

    def test_explicit_thread_mode_still_byte_identical(
            self, spawn_socket_worker, serial_rows):
        """--slot-mode thread restores the historical in-process slots;
        the bytes must not care which mode served them."""
        process, address = spawn_socket_worker(slots=2, slot_mode="thread")
        sweep = run_sweep(**GRID, backend=SocketBackend(
            workers=f"{address}*2"))
        assert (repr(sweep.rows()),
                repr(sweep.fits("awake_max"))) == serial_rows
        # Thread mode never creates shared segments.
        assert _worker_segments(process.pid) == []

    def test_single_slot_process_mode_byte_identical(
            self, spawn_socket_worker, serial_rows):
        """--slots 1 defaults to thread mode, but process mode can be
        forced explicitly — and still matches serial."""
        _, address = spawn_socket_worker(slots=1, slot_mode="process")
        sweep = run_sweep(**GRID, backend=SocketBackend(workers=address))
        assert (repr(sweep.rows()),
                repr(sweep.fits("awake_max"))) == serial_rows


class TestSlotProcessTelemetry:
    def test_hello_pid_is_the_slot_subprocess(self, spawn_socket_worker):
        """Telemetry must name the process that *executed* the tasks:
        two slots of one worker report two distinct pids, neither of
        which is the serving process."""
        process, address = spawn_socket_worker(slots=2)
        backend = SocketBackend(workers=f"{address}*2")
        run_sweep(**GRID, backend=backend)
        (row,) = backend.telemetry()["workers"]
        pids = row["worker_pids"]
        assert len(pids) == 2 and len(set(pids)) == 2
        assert process.pid not in pids
        assert all(isinstance(pid, int) for pid in pids)

    def test_thread_slots_report_the_serving_process(
            self, spawn_socket_worker):
        process, address = spawn_socket_worker(slots=2, slot_mode="thread")
        backend = SocketBackend(workers=f"{address}*2")
        run_sweep(**GRID, backend=backend)
        (row,) = backend.telemetry()["workers"]
        assert row["worker_pids"] == [process.pid]


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="no /dev/shm on this platform")
class TestSegmentLifecycle:
    def test_graceful_shutdown_unlinks_every_segment(
            self, spawn_socket_worker):
        """After the sweep the segments are still cached (that's the
        point); after SIGTERM the worker's shutdown path must have
        unlinked them all."""
        process, address = spawn_socket_worker(slots=2)
        run_sweep(**GRID, backend=SocketBackend(workers=f"{address}*2"))
        assert _worker_segments(process.pid)  # cache is warm

        process.terminate()
        process.wait(timeout=10)
        assert _worker_segments(process.pid) == []

    def test_bounded_worker_exit_unlinks_every_segment(
            self, spawn_socket_worker):
        """A --max-connections worker that exits on its own budget takes
        the same unlink path as SIGTERM."""
        process, address = spawn_socket_worker(slots=2, max_connections=2)
        run_sweep(**GRID, backend=SocketBackend(workers=f"{address}*2"))
        assert process.wait(timeout=10) == 0
        assert _worker_segments(process.pid) == []


class TestServeValidation:
    def test_invalid_slot_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="slot mode"):
            serve("127.0.0.1:0", slot_mode="fibers")

    def test_start_method_requires_process_mode(self):
        with pytest.raises(ConfigurationError, match="--start-method"):
            serve("127.0.0.1:0", slots=2, slot_mode="thread",
                  start_method="spawn")

    def test_invalid_start_method_rejected(self):
        with pytest.raises(ConfigurationError, match="start method"):
            serve("127.0.0.1:0", slots=2, start_method="teleport")
