"""Round-semantics regression tests for the SLEEPING-CONGEST driver.

The simulator has three round engines — the generator fast loop (no trace,
no bit limit), the metered loop (tracing and/or CONGEST accounting), and
the numpy whole-round engine for protocols that opt in (``luby``).  These
tests pin the model semantics of paper Section 1.3 on all of them: messages
to sleeping nodes are lost, the bit budget fires exactly at the limit,
protocol violations (non-increasing rounds, out-of-range ports) are
rejected, and every engine agrees on every count-based metric (the
invariant: engine choice changes wall-clock, never bytes).
"""

from __future__ import annotations

import pytest

from repro.errors import MessageTooLargeError, ProtocolViolationError
from repro.graphs import generators
from repro.sim import WakeCall, estimate_bits, run_protocol
from repro.sim.metrics import CompactRunMetrics


#: Simulator configurations covering both round loops.  A huge bit limit
#: forces the metered loop without ever tripping the budget.
PATHS = {
    "fast": {"trace": False, "message_bit_limit": None},
    "metered": {"trace": False, "message_bit_limit": 10_000},
    "traced": {"trace": True, "message_bit_limit": None},
}


@pytest.fixture(params=sorted(PATHS))
def sim_config(request):
    return PATHS[request.param]


# --------------------------------------------------------------------------- #
# Delivery semantics
# --------------------------------------------------------------------------- #
class TestSleepingReceivers:
    def test_message_to_sleeping_node_is_lost(self, sim_config):
        """The round-2 message arrives; the round-0 one hits a sleeper."""
        graph = generators.path_graph(2)

        def protocol(ctx):
            if ctx.local_input == "sender":
                yield WakeCall(round=0, sends=[(0, "early")])
                yield WakeCall(round=2, sends=[(0, "late")])
                return "done"
            inbox = yield WakeCall(round=2, sends=[])
            return [payload for _, payload in inbox]

        result = run_protocol(
            graph, protocol,
            local_inputs={0: "sender", 1: "receiver"},
            seed=1, **sim_config,
        )
        assert result.outputs[1] == ["late"]
        sender, receiver = result.metrics.per_node
        assert sender.messages_sent == 2
        assert receiver.messages_received == 1

    def test_trace_records_the_lost_message(self):
        graph = generators.path_graph(2)

        def protocol(ctx):
            if ctx.local_input == "sender":
                yield WakeCall(round=0, sends=[(0, "early")])
                return None
            yield WakeCall(round=1, sends=[])
            return None

        result = run_protocol(
            graph, protocol,
            local_inputs={0: "sender", 1: "receiver"},
            seed=1, trace=True,
        )
        lost = result.trace.lost_messages()
        assert len(lost) == 1 and lost[0].payload == "early"
        assert result.trace.delivered_messages() == []

    def test_same_round_delivery_between_awake_neighbors(self, sim_config):
        graph = generators.path_graph(2)

        def protocol(ctx):
            inbox = yield WakeCall(round=0, sends=[(0, ctx.local_input)])
            return [payload for _, payload in inbox]

        result = run_protocol(
            graph, protocol, local_inputs={0: "zero", 1: "one"},
            seed=1, **sim_config,
        )
        assert result.outputs == {0: ["one"], 1: ["zero"]}


# --------------------------------------------------------------------------- #
# CONGEST bit budget
# --------------------------------------------------------------------------- #
class TestBitLimit:
    PAYLOAD = "0123456789"  # estimate_bits = 80

    def _run(self, limit):
        graph = generators.path_graph(2)

        def protocol(ctx):
            yield WakeCall(round=0, sends=[(0, self.PAYLOAD)])
            return True

        return run_protocol(graph, protocol, seed=1, message_bit_limit=limit)

    def test_message_at_exactly_the_limit_passes(self):
        bits = estimate_bits(self.PAYLOAD)
        result = self._run(bits)
        assert result.metrics.max_message_bits == bits

    def test_message_one_bit_over_the_limit_raises(self):
        bits = estimate_bits(self.PAYLOAD)
        with pytest.raises(MessageTooLargeError):
            self._run(bits - 1)

    def test_error_message_names_the_offender(self):
        with pytest.raises(MessageTooLargeError, match="80-bit"):
            self._run(10)


# --------------------------------------------------------------------------- #
# Protocol violations
# --------------------------------------------------------------------------- #
class TestProtocolViolations:
    def test_non_increasing_round_rejected(self, sim_config):
        graph = generators.path_graph(2)

        def protocol(ctx):
            yield WakeCall(round=3, sends=[])
            yield WakeCall(round=3, sends=[])
            return None

        with pytest.raises(ProtocolViolationError, match="not after"):
            run_protocol(graph, protocol, seed=1, **sim_config)

    def test_decreasing_round_rejected(self, sim_config):
        graph = generators.path_graph(2)

        def protocol(ctx):
            yield WakeCall(round=5, sends=[])
            yield WakeCall(round=2, sends=[])
            return None

        with pytest.raises(ProtocolViolationError):
            run_protocol(graph, protocol, seed=1, **sim_config)

    def test_out_of_range_port_rejected(self, sim_config):
        graph = generators.path_graph(2)  # every node has exactly one port

        def protocol(ctx):
            yield WakeCall(round=0, sends=[(1, "x")])
            return None

        with pytest.raises(ProtocolViolationError, match="port 1"):
            run_protocol(graph, protocol, seed=1, **sim_config)

    def test_negative_port_rejected(self, sim_config):
        graph = generators.path_graph(2)

        def protocol(ctx):
            yield WakeCall(round=0, sends=[(-1, "x")])
            return None

        with pytest.raises(ProtocolViolationError):
            run_protocol(graph, protocol, seed=1, **sim_config)

    def test_non_wakecall_yield_rejected(self, sim_config):
        graph = generators.path_graph(2)

        def protocol(ctx):
            yield "not a wake call"
            return None

        with pytest.raises(ProtocolViolationError, match="expected WakeCall"):
            run_protocol(graph, protocol, seed=1, **sim_config)


# --------------------------------------------------------------------------- #
# Outputs coverage + path equivalence
# --------------------------------------------------------------------------- #
class TestOutputsCoverage:
    def test_every_node_has_an_output_on_an_edgeless_graph(self, sim_config):
        """Regression for the executor refactor: isolated nodes (which never
        send or receive anything) must still appear in ``outputs``."""
        graph = generators.empty_graph(7)

        def protocol(ctx):
            yield WakeCall(round=0, sends=[])
            return True

        result = run_protocol(graph, protocol, seed=1, **sim_config)
        assert set(result.outputs) == set(range(7))
        assert all(result.outputs[v] for v in range(7))
        assert set(result.awake_by_label) == set(range(7))

    def test_node_terminating_before_first_wake_is_covered(self, sim_config):
        graph = generators.empty_graph(3)

        def protocol(ctx):
            if False:  # pragma: no cover - makes this a generator function
                yield
            return "immediate"

        result = run_protocol(graph, protocol, seed=1, **sim_config)
        assert set(result.outputs) == {0, 1, 2}
        assert all(v == "immediate" for v in result.outputs.values())
        assert result.metrics.awake_complexity == 0


class TestPathEquivalence:
    @pytest.mark.parametrize("algorithm_seed", [3, 4])
    def test_fast_and_metered_loops_agree_on_counts(self, algorithm_seed):
        """Same protocol, same seed: every count-based metric must match
        between the fast loop and the metered loop (bit statistics are the
        documented exception — the fast loop reports them as 0)."""
        from repro.algorithms.luby import luby_protocol

        graph = generators.gnp_graph(48, expected_degree=6, seed=2)
        inputs = {"max_iterations": 4096}
        # vectorized=False pins the generator fast loop (luby would
        # otherwise auto-dispatch to the numpy whole-round engine here).
        fast = run_protocol(graph, luby_protocol, inputs=inputs,
                            seed=algorithm_seed, vectorized=False)
        metered = run_protocol(graph, luby_protocol, inputs=inputs,
                               seed=algorithm_seed, trace=True,
                               message_bit_limit=10_000)

        assert {k: bool(v) for k, v in fast.outputs.items()} == \
               {k: bool(v) for k, v in metered.outputs.items()}
        assert fast.awake_by_label == metered.awake_by_label
        fast_summary = fast.metrics.summary()
        metered_summary = metered.metrics.summary()
        fast_summary.pop("max_message_bits")
        metered_summary.pop("max_message_bits")
        assert fast_summary == metered_summary

    def test_unmetered_bit_statistics_read_not_measured(self):
        """Unmetered runs report max_message_bits as None (never a
        fabricated 0), metered runs report the real estimate."""
        from repro.algorithms.luby import luby_protocol

        graph = generators.gnp_graph(20, expected_degree=4, seed=6)
        inputs = {"max_iterations": 4096}
        unmetered = run_protocol(graph, luby_protocol, inputs=inputs, seed=7)
        assert unmetered.metrics.bits_metered is False
        assert unmetered.metrics.max_message_bits is None
        assert unmetered.metrics.summary()["max_message_bits"] is None

        metered = run_protocol(graph, luby_protocol, inputs=inputs, seed=7,
                               message_bit_limit=10_000)
        assert metered.metrics.bits_metered is True
        assert metered.metrics.max_message_bits > 0

    def test_compact_metrics_match_full_metrics(self):
        from repro.algorithms.luby import luby_protocol

        graph = generators.gnp_graph(30, expected_degree=5, seed=8)
        result = run_protocol(graph, luby_protocol,
                              inputs={"max_iterations": 4096}, seed=9)
        compact = result.metrics.compact()
        assert isinstance(compact, CompactRunMetrics)
        assert compact.summary() == result.metrics.summary()


class TestCSRPathEquivalence:
    """The CSR fast path must change *speed*, never bytes.

    ``run_protocol`` over a CSR-backed graph routes sends straight out
    of the flat ``(offsets, neighbors, arrivals)`` arrays in the fast
    loop; the metered loop and the adjacency-list representation are the
    oracles it must agree with, count for count.
    """

    @pytest.mark.parametrize("algorithm_seed", [3, 4])
    def test_csr_fast_and_metered_loops_agree_on_counts(
            self, algorithm_seed):
        from repro.algorithms.luby import luby_protocol

        csr = generators.to_csr(
            generators.gnp_graph(48, expected_degree=6, seed=2)).view()
        inputs = {"max_iterations": 4096}
        fast = run_protocol(csr, luby_protocol, inputs=inputs,
                            seed=algorithm_seed, vectorized=False)
        metered = run_protocol(csr, luby_protocol, inputs=inputs,
                               seed=algorithm_seed, trace=True,
                               message_bit_limit=10_000)

        assert {k: bool(v) for k, v in fast.outputs.items()} == \
               {k: bool(v) for k, v in metered.outputs.items()}
        assert fast.awake_by_label == metered.awake_by_label
        fast_summary = fast.metrics.summary()
        metered_summary = metered.metrics.summary()
        fast_summary.pop("max_message_bits")
        metered_summary.pop("max_message_bits")
        assert fast_summary == metered_summary

    def test_csr_representation_matches_adjacency_lists(self, sim_config):
        """Same seed, both loops: CSR arrays and networkx adjacency must
        produce identical outputs, wake schedules and metric counters."""
        from repro.algorithms.luby import luby_protocol

        graph = generators.gnp_graph(40, expected_degree=5, seed=12)
        inputs = {"max_iterations": 4096}
        over_nx = run_protocol(graph, luby_protocol, inputs=inputs,
                               seed=11, **sim_config)
        over_csr = run_protocol(generators.to_csr(graph).view(),
                                luby_protocol, inputs=inputs,
                                seed=11, **sim_config)
        assert over_csr.outputs == over_nx.outputs
        assert over_csr.awake_by_label == over_nx.awake_by_label
        assert over_csr.metrics.summary() == over_nx.metrics.summary()


class TestVectorizedEngineEquivalence:
    """The numpy whole-round engine is the third interchangeable engine.

    For a protocol that opts in (``luby``), all three engines must produce
    the same outputs *in the same insertion order*, the same per-node
    awake/message/termination counters and the same aggregate metrics —
    byte identity, not statistical agreement.  (The engine's own unit and
    property tests live in ``tests/test_vectorized.py``.)
    """

    @pytest.mark.parametrize("representation", ["nx", "csr"])
    @pytest.mark.parametrize("algorithm_seed", [3, 4])
    def test_all_three_engines_agree_byte_for_byte(
            self, representation, algorithm_seed):
        from repro.algorithms.luby import luby_protocol

        graph = generators.gnp_graph(48, expected_degree=6, seed=2)
        if representation == "csr":
            graph = generators.to_csr(graph).view()
        inputs = {"max_iterations": 4096}
        fast = run_protocol(graph, luby_protocol, inputs=inputs,
                            seed=algorithm_seed, vectorized=False)
        vectorized = run_protocol(graph, luby_protocol, inputs=inputs,
                                  seed=algorithm_seed, vectorized=True)
        metered = run_protocol(graph, luby_protocol, inputs=inputs,
                               seed=algorithm_seed, trace=True,
                               message_bit_limit=10_000)

        def essence(result):
            per_node = [
                (node.awake_rounds, node.messages_sent,
                 node.messages_received, node.terminated_round)
                for node in result.metrics.per_node
            ]
            return (result.outputs, list(result.outputs), per_node,
                    result.awake_by_label, result.metrics.active_rounds,
                    result.metrics.last_active_round)

        assert essence(vectorized) == essence(fast)
        assert essence(vectorized) == essence(metered)
        assert vectorized.metrics.bits_metered is False
        assert vectorized.metrics.max_message_bits is None
