"""Chaos suite: connection flaps under load must never change bytes.

A deterministic flap proxy (:class:`tests.conftest.FlapProxy`) sits
between the coordinator and a 2-slot socket worker and severs
connections after a planned number of task frames — mid-window, reply
undeliverable, no warning.  The suite pins the three contracts the
windowed transport makes under connection churn:

* **byte identity** — rows and fits equal the serial reference exactly,
  flaps or not;
* **bounded amplification** — every task executes at least once and at
  most ``max_attempts`` times (counted worker-side via the execution
  log, so duplicates cannot hide behind deduplicated results);
* **honest accounting** — telemetry reconnects/requeues reflect every
  kill, and the worker process itself survives all of it.

Set ``REPRO_CHAOS_ARTIFACTS`` to a directory to keep ``worker.log``,
``exec.log`` and ``telemetry.json`` from each test (the chaos-smoke CI
job uploads them on failure).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import subprocess
import sys
import time
from collections import Counter

import pytest

from repro.experiments.backends import ComposedBackend
from repro.experiments.executor import plan_sweep_tasks
from repro.experiments.sweeps import run_sweep
from repro.experiments.transports import WORKER_FAULT_DIR_ENV, SocketTransport
from repro.experiments.worker import WORKER_EXEC_LOG_ENV

pytestmark = pytest.mark.slow

#: Environment variable naming a directory to copy per-test chaos
#: artefacts (worker log, execution log, telemetry dump) into.
ARTIFACTS_ENV = "REPRO_CHAOS_ARTIFACTS"

#: 16 tiny tasks: enough traffic that every planned kill fires before
#: the sweep drains, small enough to keep the suite quick.
GRID = dict(algorithms=["luby"], sizes=[16, 24], families=("gnp",),
            repetitions=8, seed=13)

#: 24 even tinier tasks for the adaptive-window/batched variant — batched
#: frames carry several tasks each, so the flap plan needs more supply to
#: guarantee every budget is reached.
DENSE_GRID = dict(algorithms=["luby"], sizes=[16], families=("gnp",),
                  repetitions=24, seed=29)


@pytest.fixture(scope="module")
def serial_rows():
    """Serial reference for :data:`GRID` (the byte-identity oracle)."""
    sweep = run_sweep(**GRID, jobs=1)
    return repr(sweep.rows()), repr(sweep.fits("awake_max"))


@pytest.fixture(scope="module")
def dense_serial_rows():
    sweep = run_sweep(**DENSE_GRID, jobs=1)
    return repr(sweep.rows()), repr(sweep.fits("awake_max"))


def _spawn_logged_worker(tmp_path, slots=2, extra_env=None):
    """Spawn a 2-slot worker with stderr → ``worker.log`` and an armed
    execution log.

    Unlike :func:`spawn_local_worker` (which drains stderr into the
    void), the log file persists — it is the artefact the chaos-smoke CI
    job uploads when a test fails.  Returns ``(process, address,
    exec_log_path, worker_log_path)``.
    """
    worker_log = tmp_path / "worker.log"
    exec_log = tmp_path / "exec.log"
    env = os.environ.copy()
    env[WORKER_EXEC_LOG_ENV] = str(exec_log)
    env.update(extra_env or {})
    with open(worker_log, "w", encoding="utf-8") as log:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.worker",
             "--listen", "127.0.0.1:0", "--slots", str(slots)],
            stderr=log, env=env)
    address = None
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        match = re.search(r"listening on (\S+:\d+)",
                          worker_log.read_text(encoding="utf-8"))
        if match:
            address = match.group(1)
            break
        if process.poll() is not None:
            break
        time.sleep(0.05)
    if address is None:
        process.kill()
        process.wait()
        raise RuntimeError("chaos worker never announced its port; see "
                           f"{worker_log}")
    return process, address, exec_log, worker_log


def _export_artifacts(tmp_path, test_name):
    """Copy this test's logs/dumps into ``$REPRO_CHAOS_ARTIFACTS``."""
    target_root = os.environ.get(ARTIFACTS_ENV)
    if not target_root:
        return
    target = os.path.join(target_root, test_name)
    os.makedirs(target, exist_ok=True)
    for name in ("worker.log", "exec.log", "telemetry.json"):
        source = tmp_path / name
        if source.exists():
            shutil.copy(source, os.path.join(target, name))
    # An `ls /dev/shm`-style listing: leaked repro-csr segments are the
    # first thing to look for when a process-slot chaos test fails.
    from repro.experiments.shm_cache import active_segments

    with open(os.path.join(target, "shm-segments.txt"), "w",
              encoding="utf-8") as listing:
        listing.write("\n".join(active_segments()) + "\n")


@pytest.fixture
def chaos_worker(tmp_path, request):
    """A 2-slot worker with persistent logs, artefact-exported at teardown."""
    process, address, exec_log, worker_log = _spawn_logged_worker(tmp_path)
    yield process, address, exec_log
    if process.poll() is None:
        process.kill()
    process.wait()
    _export_artifacts(tmp_path, request.node.name)


def _execution_counts(exec_log):
    """``run_seed → times executed`` from the worker's execution log."""
    if not exec_log.exists():
        return Counter()
    lines = exec_log.read_text(encoding="utf-8").split()
    return Counter(int(line) for line in lines)


class TestFlapProxy:
    def test_pass_through_proxy_is_transparent(self, flap_proxy,
                                               chaos_worker, serial_rows,
                                               tmp_path):
        """An empty plan forwards everything untouched: the proxy itself
        must not perturb bytes, counts or connection accounting."""
        _process, address, exec_log = chaos_worker
        proxy = flap_proxy(address)
        backend = ComposedBackend(
            transport=SocketTransport(f"{proxy.address}*2",
                                      window=4, max_batch=2),
            jobs=2)
        sweep = run_sweep(**GRID, jobs=2, backend=backend)
        assert (repr(sweep.rows()),
                repr(sweep.fits("awake_max"))) == serial_rows
        assert proxy.kills == 0
        assert proxy.connections == 2
        assert backend.worker_restarts == 0
        counts = _execution_counts(exec_log)
        tasks = plan_sweep_tasks(**GRID)
        assert sum(counts.values()) == len(tasks)
        assert all(count == 1 for count in counts.values())


class TestConnectionFlaps:
    def test_flaps_are_byte_identical_with_bounded_amplification(
            self, flap_proxy, chaos_worker, serial_rows, tmp_path):
        """The headline chaos test.

        Both initial connections are severed after their 2nd task frame
        — each kill strands one in-flight frame whose reply can never
        arrive (the proxy cuts the client socket immediately after
        forwarding the frame upstream, milliseconds before the worker
        finishes computing the reply).  The transport must reconnect,
        requeue, and still hand back the serial bytes; the worker-side
        execution log bounds how many times any task actually ran.
        """
        max_attempts = 5
        _process, address, exec_log = chaos_worker
        proxy = flap_proxy(address, plan=[2, 2])
        backend = ComposedBackend(
            transport=SocketTransport(f"{proxy.address}*2",
                                      window=4, max_batch=2),
            jobs=2, max_attempts=max_attempts)
        sweep = run_sweep(**GRID, jobs=2, backend=backend)

        telemetry = backend.telemetry()
        (tmp_path / "telemetry.json").write_text(
            json.dumps(telemetry, indent=2), encoding="utf-8")

        # Byte identity: chaos is invisible in the results.
        assert (repr(sweep.rows()),
                repr(sweep.fits("awake_max"))) == serial_rows

        # The plan fired exactly as written: two kills, two reconnects.
        assert proxy.kills == 2
        assert proxy.connections == 4
        assert backend.worker_restarts >= 2

        # Bounded amplification: every task ran, none more than
        # max_attempts times (worker-side count — duplicates cannot hide
        # behind deduplicated results).
        counts = _execution_counts(exec_log)
        planned = {task.run_seed for task in plan_sweep_tasks(**GRID)}
        assert set(counts) == planned
        assert all(1 <= count <= max_attempts for count in counts.values())
        # Each kill strands exactly one unacked frame (window ramps from
        # 1, so frame 2 is the only one in flight when it dies) of at
        # most max_batch=2 tasks: total executions are tightly bounded.
        assert sum(counts.values()) <= len(planned) + 2 * proxy.kills

        # Honest accounting: telemetry saw the churn.
        workers = telemetry["workers"]
        assert len(workers) == 1
        (row,) = workers
        assert row["reconnects"] >= 2
        assert row["requeues"] >= 2
        assert telemetry["scheduler"]["requeues"] >= 2
        assert row["tasks_sent"] >= len(planned)
        assert row["acks"] >= 1

        # The worker process itself survived both connection kills.
        assert _process.poll() is None

    def test_adaptive_window_flaps_with_reconnect_kill(
            self, flap_proxy, chaos_worker, dense_serial_rows, tmp_path):
        """Chaos on the adaptive window, including killing a *reconnected*
        connection (plan entry 3 hits the first replacement connection) —
        recovery must itself be recoverable."""
        max_attempts = 6
        _process, address, exec_log = chaos_worker
        proxy = flap_proxy(address, plan=[2, 3, 2])
        backend = ComposedBackend(
            transport=SocketTransport(f"{proxy.address}*2",
                                      window="adaptive", max_batch=2),
            jobs=2, max_attempts=max_attempts)
        sweep = run_sweep(**DENSE_GRID, jobs=2, backend=backend)

        telemetry = backend.telemetry()
        (tmp_path / "telemetry.json").write_text(
            json.dumps(telemetry, indent=2), encoding="utf-8")

        assert (repr(sweep.rows()),
                repr(sweep.fits("awake_max"))) == dense_serial_rows
        assert proxy.kills == 3
        assert backend.worker_restarts >= 3

        counts = _execution_counts(exec_log)
        planned = {task.run_seed for task in plan_sweep_tasks(**DENSE_GRID)}
        assert set(counts) == planned
        assert all(1 <= count <= max_attempts for count in counts.values())

        assert telemetry["workers"][0]["reconnects"] >= 3
        assert _process.poll() is None


class TestSlotProcessChaos:
    """Fault injection against a process-backed slot (the exit-17 path).

    With process slots the historical exit-17 fault kills the slot
    *subprocess* mid-task instead of a connection or the whole worker:
    the serving process must log the slot death, keep serving, keep
    every shared graph segment it owns, and still produce serial bytes.
    """

    def test_exit_17_kills_one_slot_subprocess_not_the_worker(
            self, tmp_path, request, serial_rows):
        from repro.experiments.shm_cache import (SEGMENT_PREFIX,
                                                 active_segments)

        max_attempts = 5
        victim = plan_sweep_tasks(**GRID)[5]
        marker = tmp_path / f"crash-run_seed-{victim.run_seed}"
        marker.write_text("")
        process, address, exec_log, worker_log = _spawn_logged_worker(
            tmp_path, extra_env={WORKER_FAULT_DIR_ENV: str(tmp_path)})

        def worker_segments():
            return [name for name in active_segments()
                    if name.startswith(f"{SEGMENT_PREFIX}-{process.pid}-")]

        try:
            backend = ComposedBackend(
                transport=SocketTransport(f"{address}*2"),
                jobs=2, max_attempts=max_attempts)
            sweep = run_sweep(**GRID, jobs=2, backend=backend)

            telemetry = backend.telemetry()
            (tmp_path / "telemetry.json").write_text(
                json.dumps(telemetry, indent=2), encoding="utf-8")

            # Byte identity survives losing a slot subprocess mid-task.
            assert (repr(sweep.rows()),
                    repr(sweep.fits("awake_max"))) == serial_rows
            assert not marker.exists()  # the fault actually fired
            assert process.poll() is None  # the serving process survived
            assert backend.worker_restarts >= 1

            # The serving process saw a *slot* death, not a mere
            # disconnect: its log names the exit code and carries on.
            log_text = worker_log.read_text(encoding="utf-8")
            assert "exit 17" in log_text
            assert "worker continues" in log_text

            # Bounded amplification, counted across both slot processes
            # (the execution log is append-shared between them).
            counts = _execution_counts(exec_log)
            planned = {task.run_seed for task in plan_sweep_tasks(**GRID)}
            assert set(counts) == planned
            assert all(1 <= count <= max_attempts
                       for count in counts.values())

            # The dead slot leaked nothing: its mapped segments are owned
            # by the (alive) serving process, which still holds them.
            assert worker_segments()
        finally:
            if process.poll() is None:
                process.terminate()
            process.wait(timeout=10)
            _export_artifacts(tmp_path, request.node.name)

        # ... and the serving process's shutdown unlinked every one.
        assert worker_segments() == []
