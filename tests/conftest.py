"""Shared fixtures for the test suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import generators


@pytest.fixture(scope="session")
def spawn_socket_worker():
    """Factory spawning one TCP sweep worker on an ephemeral port.

    Calling the factory returns ``(Popen, "127.0.0.1:PORT")`` once the
    worker announced its listening address; *extra_env* lets the
    crash-recovery suite arm fault-injection markers in the worker's
    environment, and *slots*/*max_connections* pass straight through to
    ``repro-mis worker serve``.  Every spawned worker is killed at
    session teardown.
    """
    from repro.experiments.worker import spawn_local_worker

    spawned = []

    def spawn(extra_env=None, slots=1, max_connections=None):
        process, address = spawn_local_worker(
            extra_env, slots=slots, max_connections=max_connections)
        spawned.append(process)
        return process, address

    yield spawn
    for proc in spawned:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


@pytest.fixture(scope="session")
def socket_workers(spawn_socket_worker):
    """Two live, healthy socket workers: ``"127.0.0.1:P1,127.0.0.1:P2"``.

    Session-scoped and shared by the equivalence matrix — socket workers
    are built to serve any number of sweeps.  Tests that *kill* workers
    must spawn their own via ``spawn_socket_worker`` instead.
    """
    return ",".join(spawn_socket_worker()[1] for _ in range(2))


@pytest.fixture(scope="session")
def multislot_socket_worker(spawn_socket_worker):
    """One worker process serving two slots: ``"127.0.0.1:PORT*2"``.

    The ``*2`` multiplier makes the coordinator dial both slots of the
    single process, exercising the shared-graph-cache path the
    equivalence matrix pins against serial.  Session-scoped for the same
    reason as ``socket_workers``; tests that kill connections or the
    process must spawn their own.
    """
    _, address = spawn_socket_worker(slots=2)
    return f"{address}*2"


@pytest.fixture
def small_gnp():
    """A fixed, moderately dense random graph."""
    return generators.gnp_graph(40, p=0.15, seed=7)


@pytest.fixture
def sparse_gnp():
    """A fixed sparse random graph (may be disconnected)."""
    return generators.gnp_graph(60, expected_degree=3.0, seed=11)


@pytest.fixture
def path_graph():
    return generators.path_graph(17)


@pytest.fixture
def cycle_graph():
    return generators.cycle_graph(12)


@pytest.fixture
def clique():
    return generators.complete_graph(9)


@pytest.fixture
def star():
    return generators.star_graph(10)


@pytest.fixture
def grid():
    return generators.grid_graph(5, 5)


@pytest.fixture
def tree_graph():
    return generators.random_tree(25, seed=3)


@pytest.fixture
def disconnected_graph():
    """Three components: a path, a cycle and an isolated node."""
    graph = nx.disjoint_union(generators.path_graph(6), generators.cycle_graph(5))
    graph = nx.disjoint_union(graph, generators.empty_graph(1))
    return nx.convert_node_labels_to_integers(graph)


@pytest.fixture(params=["path", "cycle", "clique", "star", "gnp", "tree"])
def any_small_graph(request):
    """Parametrised fixture covering several small topologies."""
    builders = {
        "path": lambda: generators.path_graph(11),
        "cycle": lambda: generators.cycle_graph(10),
        "clique": lambda: generators.complete_graph(7),
        "star": lambda: generators.star_graph(9),
        "gnp": lambda: generators.gnp_graph(24, p=0.2, seed=5),
        "tree": lambda: generators.random_tree(15, seed=9),
    }
    return builders[request.param]()
