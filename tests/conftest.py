"""Shared fixtures for the test suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import generators


@pytest.fixture
def small_gnp():
    """A fixed, moderately dense random graph."""
    return generators.gnp_graph(40, p=0.15, seed=7)


@pytest.fixture
def sparse_gnp():
    """A fixed sparse random graph (may be disconnected)."""
    return generators.gnp_graph(60, expected_degree=3.0, seed=11)


@pytest.fixture
def path_graph():
    return generators.path_graph(17)


@pytest.fixture
def cycle_graph():
    return generators.cycle_graph(12)


@pytest.fixture
def clique():
    return generators.complete_graph(9)


@pytest.fixture
def star():
    return generators.star_graph(10)


@pytest.fixture
def grid():
    return generators.grid_graph(5, 5)


@pytest.fixture
def tree_graph():
    return generators.random_tree(25, seed=3)


@pytest.fixture
def disconnected_graph():
    """Three components: a path, a cycle and an isolated node."""
    graph = nx.disjoint_union(generators.path_graph(6), generators.cycle_graph(5))
    graph = nx.disjoint_union(graph, generators.empty_graph(1))
    return nx.convert_node_labels_to_integers(graph)


@pytest.fixture(params=["path", "cycle", "clique", "star", "gnp", "tree"])
def any_small_graph(request):
    """Parametrised fixture covering several small topologies."""
    builders = {
        "path": lambda: generators.path_graph(11),
        "cycle": lambda: generators.cycle_graph(10),
        "clique": lambda: generators.complete_graph(7),
        "star": lambda: generators.star_graph(9),
        "gnp": lambda: generators.gnp_graph(24, p=0.2, seed=5),
        "tree": lambda: generators.random_tree(15, seed=9),
    }
    return builders[request.param]()
