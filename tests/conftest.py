"""Shared fixtures for the test suite."""

from __future__ import annotations

import contextlib
import socket
import struct
import threading

import networkx as nx
import pytest

from repro.graphs import generators


class FlapProxy:
    """Deterministic connection-flapping TCP proxy (the chaos harness).

    Sits between a coordinator and a socket worker: listens on an
    ephemeral 127.0.0.1 port, dials *upstream* per accepted connection,
    and forwards whole length-prefixed frames.  The k-th accepted
    connection is severed abruptly — both directions at once, no FIN
    handshake niceties — after forwarding ``plan[k]``
    coordinator→worker task frames; connections beyond the plan (and
    ``None`` entries) pass through untouched.  Killing on a *frame
    count* rather than a timer is what makes the chaos deterministic:
    the same plan severs the same connection at the same protocol point
    every run, regardless of machine speed.

    Only coordinator→worker frames count toward a budget (the hello and
    all replies travel the other way), so ``plan[k] = N`` means "this
    connection dies with its N-th task frame delivered to the worker
    but its reply undeliverable" — the exact mid-window loss the
    requeue path must absorb.
    """

    def __init__(self, upstream, plan=()):
        self._upstream = upstream
        self._plan = list(plan)
        self.connections = 0
        self.kills = 0
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._socks = []
        self._threads = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.25)
        host, port = self._listener.getsockname()[:2]
        self.address = f"{host}:{port}"
        accepter = threading.Thread(target=self._accept_loop,
                                    name="flap-proxy-accept", daemon=True)
        self._threads.append(accepter)
        accepter.start()

    def _accept_loop(self):
        while not self._closing.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                budget = (self._plan[self.connections]
                          if self.connections < len(self._plan) else None)
                self.connections += 1
            try:
                upstream = socket.create_connection(self._upstream,
                                                    timeout=10.0)
            except OSError:
                client.close()
                continue
            for sock in (client, upstream):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            pumps = [
                threading.Thread(target=self._pump_frames,
                                 args=(client, upstream, budget),
                                 name="flap-proxy-frames", daemon=True),
                threading.Thread(target=self._pump_bytes,
                                 args=(upstream, client),
                                 name="flap-proxy-bytes", daemon=True),
            ]
            with self._lock:
                self._socks += [client, upstream]
                self._threads += pumps
            for pump in pumps:
                pump.start()

    @staticmethod
    def _sever(*socks):
        for sock in socks:
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                sock.close()

    def _pump_frames(self, client, upstream, budget):
        """Coordinator→worker: forward whole frames, kill at the budget."""
        from repro.experiments.worker import _read_exactly

        reader = client.makefile("rb")
        forwarded = 0
        try:
            while True:
                header = _read_exactly(reader, 4)
                if header is None:
                    return
                (length,) = struct.unpack(">I", header)
                payload = _read_exactly(reader, length)
                if payload is None:
                    return
                upstream.sendall(header + payload)
                forwarded += 1
                if budget is not None and forwarded >= budget:
                    with self._lock:
                        self.kills += 1
                    return
        except OSError:
            pass
        finally:
            self._sever(client, upstream)

    def _pump_bytes(self, upstream, client):
        """Worker→coordinator: raw byte pump (replies keep frame shape)."""
        try:
            while True:
                chunk = upstream.recv(65536)
                if not chunk:
                    return
                client.sendall(chunk)
        except OSError:
            pass
        finally:
            self._sever(client, upstream)

    def close(self):
        self._closing.set()
        with contextlib.suppress(OSError):
            self._listener.close()
        with self._lock:
            socks = list(self._socks)
            threads = list(self._threads)
        self._sever(*socks)
        for thread in threads:
            thread.join(timeout=5.0)


@pytest.fixture
def flap_proxy():
    """Factory building :class:`FlapProxy` instances, closed on teardown.

    ``proxy = flap_proxy("127.0.0.1:PORT", plan=[2, 3])`` severs the
    first accepted connection after 2 task frames and the second after
    3; point the coordinator at ``proxy.address`` instead of the worker.
    """
    proxies = []

    def factory(upstream_address, plan=()):
        host, _, port = upstream_address.rpartition(":")
        proxy = FlapProxy((host, int(port)), plan=plan)
        proxies.append(proxy)
        return proxy

    yield factory
    for proxy in proxies:
        proxy.close()


@pytest.fixture(scope="session")
def spawn_socket_worker():
    """Factory spawning one TCP sweep worker on an ephemeral port.

    Calling the factory returns ``(Popen, "127.0.0.1:PORT")`` once the
    worker announced its listening address; *extra_env* lets the
    crash-recovery suite arm fault-injection markers in the worker's
    environment, and *slots*/*max_connections* pass straight through to
    ``repro-mis worker serve``.  Every spawned worker is killed at
    session teardown.
    """
    from repro.experiments.worker import spawn_local_worker

    spawned = []

    def spawn(extra_env=None, slots=1, max_connections=None,
              slot_mode=None, start_method=None):
        process, address = spawn_local_worker(
            extra_env, slots=slots, max_connections=max_connections,
            slot_mode=slot_mode, start_method=start_method)
        spawned.append(process)
        return process, address

    yield spawn
    for proc in spawned:
        if proc.poll() is None:
            proc.kill()
        proc.wait()


@pytest.fixture(scope="session")
def socket_workers(spawn_socket_worker):
    """Two live, healthy socket workers: ``"127.0.0.1:P1,127.0.0.1:P2"``.

    Session-scoped and shared by the equivalence matrix — socket workers
    are built to serve any number of sweeps.  Tests that *kill* workers
    must spawn their own via ``spawn_socket_worker`` instead.
    """
    return ",".join(spawn_socket_worker()[1] for _ in range(2))


@pytest.fixture(scope="session")
def multislot_socket_worker(spawn_socket_worker):
    """One worker process serving two slots: ``"127.0.0.1:PORT*2"``.

    The ``*2`` multiplier makes the coordinator dial both slots of the
    single process, exercising the shared-graph-cache path the
    equivalence matrix pins against serial.  Session-scoped for the same
    reason as ``socket_workers``; tests that kill connections or the
    process must spawn their own.
    """
    _, address = spawn_socket_worker(slots=2)
    return f"{address}*2"


@pytest.fixture
def small_gnp():
    """A fixed, moderately dense random graph."""
    return generators.gnp_graph(40, p=0.15, seed=7)


@pytest.fixture
def sparse_gnp():
    """A fixed sparse random graph (may be disconnected)."""
    return generators.gnp_graph(60, expected_degree=3.0, seed=11)


@pytest.fixture
def path_graph():
    return generators.path_graph(17)


@pytest.fixture
def cycle_graph():
    return generators.cycle_graph(12)


@pytest.fixture
def clique():
    return generators.complete_graph(9)


@pytest.fixture
def star():
    return generators.star_graph(10)


@pytest.fixture
def grid():
    return generators.grid_graph(5, 5)


@pytest.fixture
def tree_graph():
    return generators.random_tree(25, seed=3)


@pytest.fixture
def disconnected_graph():
    """Three components: a path, a cycle and an isolated node."""
    graph = nx.disjoint_union(generators.path_graph(6), generators.cycle_graph(5))
    graph = nx.disjoint_union(graph, generators.empty_graph(1))
    return nx.convert_node_labels_to_integers(graph)


@pytest.fixture(params=["path", "cycle", "clique", "star", "gnp", "tree"])
def any_small_graph(request):
    """Parametrised fixture covering several small topologies."""
    builders = {
        "path": lambda: generators.path_graph(11),
        "cycle": lambda: generators.cycle_graph(10),
        "clique": lambda: generators.complete_graph(7),
        "star": lambda: generators.star_graph(9),
        "gnp": lambda: generators.gnp_graph(24, p=0.2, seed=5),
        "tree": lambda: generators.random_tree(15, seed=9),
    }
    return builders[request.param]()
