"""Tests for the SLEEPING-CONGEST simulator (network, runner, metrics, trace)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import (
    ConfigurationError,
    MessageTooLargeError,
    ProtocolViolationError,
    SimulationError,
)
from repro.graphs import generators
from repro.sim import Network, WakeCall, broadcast_sends, estimate_bits, run_protocol
from repro.sim.runner import Simulator


# --------------------------------------------------------------------------- #
# Network / ports
# --------------------------------------------------------------------------- #
class TestNetwork:
    def test_ports_cover_neighbors(self, small_gnp):
        network = Network(small_gnp)
        for index in range(network.size):
            degree = network.degree(index)
            neighbors = {network.neighbor_via_port(index, p) for p in range(degree)}
            expected = {
                network.index_of(v)
                for v in small_gnp.neighbors(network.label_of(index))
            }
            assert neighbors == expected

    def test_port_round_trip(self, small_gnp):
        network = Network(small_gnp)
        for u, v in small_gnp.edges:
            ui, vi = network.index_of(u), network.index_of(v)
            port = network.port_towards(ui, vi)
            assert network.neighbor_via_port(ui, port) == vi

    def test_invalid_port_rejected(self, path_graph):
        network = Network(path_graph)
        with pytest.raises(ConfigurationError):
            network.neighbor_via_port(0, 5)

    def test_non_adjacent_port_lookup_rejected(self, path_graph):
        network = Network(path_graph)
        with pytest.raises(ConfigurationError):
            network.port_towards(0, 5)

    def test_directed_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(nx.DiGraph([(0, 1)]))

    def test_self_loop_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        with pytest.raises(ConfigurationError):
            Network(graph)

    def test_max_degree(self, star):
        assert Network(star).max_degree() == star.number_of_nodes() - 1


# --------------------------------------------------------------------------- #
# Message size accounting
# --------------------------------------------------------------------------- #
class TestEstimateBits:
    def test_small_values(self):
        assert estimate_bits(None) == 1
        assert estimate_bits(True) == 1
        assert estimate_bits(0) == 2
        assert estimate_bits(7) == 4

    def test_strings_and_tuples(self):
        assert estimate_bits("ab") == 16
        assert estimate_bits(("ab", 7)) == 16 + 4 + 4

    def test_floats_and_bytes(self):
        assert estimate_bits(1.5) == 64
        assert estimate_bits(b"xy") == 16

    def test_dict(self):
        assert estimate_bits({1: 2}) > 0

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            estimate_bits(object())


# --------------------------------------------------------------------------- #
# Round semantics
# --------------------------------------------------------------------------- #
def _ping_protocol(ctx):
    """Both endpoints awake in round 0: messages are delivered."""
    inbox = yield WakeCall(round=0, sends=broadcast_sends(ctx.ports, "ping"))
    return [payload for _, payload in inbox]


def _mismatched_protocol(ctx):
    """Node 0 sends in round 0 while node 1 is awake only in round 1."""
    if ctx.local_input == "early":
        yield WakeCall(round=0, sends=broadcast_sends(ctx.ports, "hello"))
        return "sent"
    inbox = yield WakeCall(round=1, sends=[])
    return [payload for _, payload in inbox]


class TestRoundSemantics:
    def test_messages_delivered_when_both_awake(self):
        graph = generators.path_graph(2)
        result = run_protocol(graph, _ping_protocol, seed=1)
        assert result.outputs[0] == ["ping"]
        assert result.outputs[1] == ["ping"]

    def test_messages_lost_when_receiver_asleep(self):
        graph = generators.path_graph(2)
        result = run_protocol(
            graph, _mismatched_protocol, seed=1,
            local_inputs={0: "early", 1: "late"},
        )
        assert result.outputs[0] == "sent"
        assert result.outputs[1] == []  # the round-0 message was lost

    def test_awake_complexity_counts_wake_calls(self):
        graph = generators.path_graph(3)

        def protocol(ctx):
            yield WakeCall(round=0, sends=[])
            yield WakeCall(round=10, sends=[])
            yield WakeCall(round=10**9, sends=[])
            return True

        result = run_protocol(graph, protocol, seed=1)
        assert result.metrics.awake_complexity == 3
        assert result.metrics.node_averaged_awake == 3.0
        # Round complexity counts sleeping rounds too.
        assert result.metrics.round_complexity == 10**9 + 1
        # ... but the simulator only iterated over the active rounds.
        assert result.metrics.active_rounds == 3

    def test_idle_rounds_are_skipped_cheaply(self):
        graph = generators.empty_graph(5)

        def protocol(ctx):
            yield WakeCall(round=10**12, sends=[])
            return "done"

        result = run_protocol(graph, protocol, seed=1)
        assert result.metrics.active_rounds == 1
        assert result.metrics.round_complexity == 10**12 + 1

    def test_protocol_without_any_wake(self):
        graph = generators.empty_graph(3)

        def protocol(ctx):
            return "instant"
            yield  # pragma: no cover

        result = run_protocol(graph, protocol, seed=1)
        assert all(v == "instant" for v in result.outputs.values())
        assert result.metrics.awake_complexity == 0
        assert result.metrics.round_complexity == 0

    def test_outputs_keyed_by_graph_labels(self):
        graph = nx.relabel_nodes(generators.path_graph(3), {0: "a", 1: "b", 2: "c"})

        def protocol(ctx):
            yield WakeCall(round=0, sends=[])
            return ctx.degree

        result = run_protocol(graph, protocol, seed=1)
        assert set(result.outputs) == {"a", "b", "c"}
        assert result.outputs["b"] == 2


# --------------------------------------------------------------------------- #
# Enforcement and diagnostics
# --------------------------------------------------------------------------- #
class TestEnforcement:
    def test_message_bit_limit(self):
        graph = generators.path_graph(2)

        def protocol(ctx):
            yield WakeCall(round=0, sends=broadcast_sends(ctx.ports, "x" * 100))
            return True

        with pytest.raises(MessageTooLargeError):
            run_protocol(graph, protocol, seed=1, message_bit_limit=64)

    def test_non_increasing_round_rejected(self):
        graph = generators.path_graph(2)

        def protocol(ctx):
            yield WakeCall(round=5, sends=[])
            yield WakeCall(round=5, sends=[])
            return True

        with pytest.raises(ProtocolViolationError):
            run_protocol(graph, protocol, seed=1)

    def test_invalid_port_rejected(self):
        graph = generators.path_graph(2)

        def protocol(ctx):
            yield WakeCall(round=0, sends=[(7, "boom")])
            return True

        with pytest.raises(ProtocolViolationError):
            run_protocol(graph, protocol, seed=1)

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            WakeCall(round=-1, sends=[])

    def test_livelock_guard(self):
        graph = generators.path_graph(2)

        def protocol(ctx):
            r = 0
            while True:
                yield WakeCall(round=r, sends=[])
                r += 1

        network = Network(graph)
        simulator = Simulator(network, seed=1, max_active_rounds=50)
        with pytest.raises(SimulationError):
            simulator.run(protocol)

    def test_wrong_yield_type_rejected(self):
        graph = generators.path_graph(2)

        def protocol(ctx):
            yield "not a wake call"
            return True

        with pytest.raises(ProtocolViolationError):
            run_protocol(graph, protocol, seed=1)


# --------------------------------------------------------------------------- #
# Determinism, randomness and tracing
# --------------------------------------------------------------------------- #
class TestDeterminismAndTrace:
    def test_same_seed_same_outputs(self, small_gnp):
        def protocol(ctx):
            value = ctx.rng.randrange(10**9)
            yield WakeCall(round=0, sends=[])
            return value

        first = run_protocol(small_gnp, protocol, seed=42)
        second = run_protocol(small_gnp, protocol, seed=42)
        assert first.outputs == second.outputs

    def test_nodes_have_independent_rngs(self, small_gnp):
        def protocol(ctx):
            value = ctx.rng.randrange(10**9)
            yield WakeCall(round=0, sends=[])
            return value

        result = run_protocol(small_gnp, protocol, seed=42)
        assert len(set(result.outputs.values())) > 1

    def test_trace_records_awake_and_messages(self):
        graph = generators.path_graph(2)
        result = run_protocol(graph, _ping_protocol, seed=1, trace=True)
        assert result.trace is not None
        assert result.trace.awake_rounds_of(0) == [0]
        assert len(result.trace.delivered_messages()) == 2
        assert result.trace.lost_messages() == []
        assert result.trace.active_rounds() == [0]

    def test_trace_records_lost_messages(self):
        graph = generators.path_graph(2)
        result = run_protocol(
            graph, _mismatched_protocol, seed=1, trace=True,
            local_inputs={0: "early", 1: "late"},
        )
        assert len(result.trace.lost_messages()) == 1

    def test_output_set_helper(self):
        graph = generators.path_graph(4)

        def protocol(ctx):
            yield WakeCall(round=0, sends=[])
            return ctx.degree == 1

        result = run_protocol(graph, protocol, seed=1)
        assert result.output_set() == {0, 3}

    def test_metrics_summary_keys(self, small_gnp):
        result = run_protocol(small_gnp, _ping_protocol, seed=2)
        summary = result.metrics.summary()
        for key in ("nodes", "awake_complexity", "round_complexity",
                    "total_messages", "max_message_bits"):
            assert key in summary


class TestNodeContext:
    def test_require_input_error_message(self):
        graph = generators.path_graph(2)

        def protocol(ctx):
            ctx.require_input("missing")
            yield WakeCall(round=0, sends=[])
            return True

        with pytest.raises(KeyError, match="missing"):
            run_protocol(graph, protocol, seed=1)

    def test_input_default(self):
        graph = generators.path_graph(2)

        def protocol(ctx):
            yield WakeCall(round=0, sends=[])
            return ctx.input("absent", "fallback")

        result = run_protocol(graph, protocol, seed=1)
        assert result.outputs[0] == "fallback"
