"""Cross-algorithm integration tests.

These tests exercise several modules together: every algorithm on the same
workloads, LFMIS agreement between the three greedy-order algorithms, and
the awake-complexity ordering the paper's comparison section describes.
"""

from __future__ import annotations

import pytest

from repro.algorithms.common import mis_from_result
from repro.algorithms.naive_greedy import naive_greedy_protocol
from repro.algorithms.vt_mis import assign_sequential_ids, vt_mis_protocol
from repro.core.mis import greedy_mis_from_order
from repro.experiments.harness import available_algorithms, run_mis
from repro.graphs import generators
from repro.sim import run_protocol

WORKLOADS = {
    "gnp": lambda: generators.gnp_graph(48, expected_degree=6, seed=31),
    "rgg": lambda: generators.random_geometric(48, seed=32),
    "tree": lambda: generators.random_tree(48, seed=33),
    "powerlaw": lambda: generators.barabasi_albert(48, seed=34),
    "disconnected": lambda: generators.bounded_degree_graph(48, 3, seed=35),
}


class TestAllAlgorithmsAllWorkloads:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("algorithm", sorted(
        set(available_algorithms())
    ))
    def test_valid_mis_everywhere(self, workload, algorithm):
        graph = WORKLOADS[workload]()
        result = run_mis(graph, algorithm=algorithm, seed=7)
        assert result.verified, (
            f"{algorithm} produced an invalid MIS on {workload}"
        )


class TestLFMISAgreement:
    def test_vt_mis_and_naive_greedy_agree_given_same_ids(self):
        graph = generators.gnp_graph(40, expected_degree=5, seed=41)
        order = sorted(graph.nodes, key=lambda v: (v * 7919) % 101)
        local_inputs = assign_sequential_ids(graph.nodes, seed_order=order)
        sequential = greedy_mis_from_order(graph, order)

        vt = run_protocol(graph, vt_mis_protocol,
                          inputs={"id_bound": len(order)},
                          local_inputs=local_inputs, seed=1)
        naive = run_protocol(graph, naive_greedy_protocol,
                             inputs={"id_bound": len(order)},
                             local_inputs=local_inputs, seed=1)
        assert mis_from_result(vt) == sequential
        assert mis_from_result(naive) == sequential


class TestComparativeComplexity:
    def test_awake_ordering_vt_vs_naive(self):
        graph = generators.gnp_graph(128, expected_degree=6, seed=51)
        vt = run_mis(graph, algorithm="vt_mis", seed=3)
        naive = run_mis(graph, algorithm="naive_greedy", seed=3)
        assert vt.metrics.awake_complexity < naive.metrics.awake_complexity / 4

    def test_awake_mis_has_tiny_average_awake(self):
        graph = generators.gnp_graph(128, expected_degree=6, seed=52)
        awake = run_mis(graph, algorithm="awake_mis", seed=4)
        naive = run_mis(graph, algorithm="naive_greedy", seed=4)
        assert awake.metrics.node_averaged_awake < \
            naive.metrics.node_averaged_awake

    def test_luby_rounds_smaller_than_awake_mis_rounds(self):
        graph = generators.gnp_graph(96, expected_degree=6, seed=53)
        luby = run_mis(graph, algorithm="luby", seed=5)
        awake = run_mis(graph, algorithm="awake_mis", seed=5)
        # The paper's trade-off: Awake-MIS pays heavily in round complexity.
        assert luby.metrics.round_complexity < awake.metrics.round_complexity

    def test_mis_sizes_comparable_across_algorithms(self):
        graph = generators.gnp_graph(96, expected_degree=8, seed=54)
        sizes = {
            algorithm: len(run_mis(graph, algorithm=algorithm, seed=6).mis)
            for algorithm in ("luby", "vt_mis", "awake_mis")
        }
        smallest, largest = min(sizes.values()), max(sizes.values())
        assert largest <= 2 * smallest
