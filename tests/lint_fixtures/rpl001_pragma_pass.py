# repro-lint-fixture: path=src/repro/algorithms/demo.py
# expect: none
"""An inline pragma documents a deliberate module-level draw."""

import random

jitter = random.uniform(0.0, 1.0)  # repro-lint: disable=RPL001
