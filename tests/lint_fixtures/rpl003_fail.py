# repro-lint-fixture: path=src/repro/experiments/executor.py
# expect: RPL003:9 RPL003:10
"""Slot-side code may not create or unlink segments."""

from multiprocessing.shared_memory import SharedMemory


def rogue(name):
    shm = SharedMemory(name=name, create=True, size=64)
    shm.unlink()
