# repro-lint-fixture: path=src/repro/algorithms/demo.py
# expect: RPL001:9 RPL001:13 RPL001:17
"""Module-level random calls and unseeded generators are flagged."""

import random
from random import Random


degree_noise = random.uniform(0.0, 1.0)


def shuffle_nodes(nodes):
    random.shuffle(nodes)
    return nodes


rng = Random()
