# repro-lint-fixture: path=src/repro/experiments/backends.py
# expect: RPL004:7 RPL004:8
"""Telemetry counters written outside their owning module."""


def tamper(stats):
    stats.frames_sent += 1
    stats.bytes_sent = 0
