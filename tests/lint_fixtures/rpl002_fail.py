# repro-lint-fixture: path=src/repro/sim/demo.py
# expect: RPL002:8 RPL002:9 RPL002:10 RPL002:11 RPL002:12
"""In-place mutation of a cached graph from a sim module."""


def corrupt(graph, csr):
    labels = csr.labels
    graph.add_edge(1, 2)
    graph.remove_node(3)
    csr.offsets[0] = 99
    csr.neighbors.setflags(write=True)
    csr.arrivals.flags.writeable = True
    return labels
