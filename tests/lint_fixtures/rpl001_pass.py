# repro-lint-fixture: path=src/repro/algorithms/demo.py
# expect: none
"""Threading a seeded generator through is the supported pattern."""

from repro.rng import make_rng


def pick(items, seed):
    rng = make_rng(seed)
    return rng.choice(items)
