# repro-lint-fixture: path=src/repro/experiments/demo.py
# expect: RPL005:9 RPL005:10
"""Wall-clock reads in production modules are flagged."""

import time
from datetime import datetime


stamp = time.time()
today = datetime.now()
