# repro-lint-fixture: path=src/repro/experiments/transports.py
# expect: none
"""Writes under the stats lock in the owning module are fine."""


def note_restart(self):
    with self._stats_lock:
        self._restarts += 1
        self._peak_window = max(self._peak_window, 4)
