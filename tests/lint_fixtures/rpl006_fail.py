# repro-lint-fixture: path=src/repro/experiments/transports.py
# expect: RPL006:7 RPL006:8 RPL006:11
"""Raw socket reads and a bare except outside read_frame."""


def drain(sock):
    data = sock.recv(4096)
    more = sock.read(4)
    try:
        return data + more
    except:
        return b""
