# repro-lint-fixture: path=src/repro/experiments/transports.py
# expect: none
"""Framed reads via worker.read_frame, narrow excepts."""

from repro.experiments.worker import read_frame


def drain(sock):
    try:
        return read_frame(sock)
    except OSError:
        return b""
