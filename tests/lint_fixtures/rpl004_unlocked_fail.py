# repro-lint-fixture: path=src/repro/experiments/transports.py
# expect: RPL004:7
"""The aggregate counters must be written under the stats lock."""


def note_restart(self):
    self._restarts += 1
