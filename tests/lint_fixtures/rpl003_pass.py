# repro-lint-fixture: path=src/repro/experiments/executor.py
# expect: none
"""Attaching and closing is the slot-side contract."""

from multiprocessing.shared_memory import SharedMemory


def attach(name):
    shm = SharedMemory(name=name)
    try:
        return bytes(shm.buf[:8])
    finally:
        shm.close()
