# repro-lint-fixture: path=src/repro/experiments/schedulers.py
# expect: RPL001:7
"""Seed derivation from a task-execution module is flagged."""

from repro.rng import derive_seed

child = derive_seed(123, 4)
