# repro-lint-fixture: path=src/repro/graphs/demo.py
# expect: none
"""Construction-time mutation inside repro.graphs is whitelisted."""


def build(graph, csr):
    graph.add_edge(1, 2)
    csr.offsets[0] = 0
    return graph
