# repro-lint-fixture: path=src/repro/experiments/demo.py
# expect: none
"""Monotonic clocks are the supported timing source."""

import time

start = time.monotonic()
elapsed = time.perf_counter() - start
