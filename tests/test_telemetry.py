"""Unit tests for the RTT estimator and the telemetry counters.

The estimator's numbers *retune timing only* (slow-ack threshold, batch
flush hold) — the equivalence matrix in ``tests/test_executor.py`` pins
that they never touch a result byte.  Here we pin the numbers
themselves: Jacobson/Karels update rules, priming, the threshold floors,
and the counter/aggregation arithmetic every telemetry surface rests on.
"""

from __future__ import annotations

import pytest

from repro.experiments.telemetry import (
    FLUSH_HOLD_DEFAULT,
    FLUSH_HOLD_MAX,
    FLUSH_HOLD_MIN,
    RTT_ALPHA,
    RTT_BETA,
    RTT_MIN_THRESHOLD,
    RTT_PRIME_SAMPLES,
    ConnectionStats,
    RttEstimator,
    aggregate_by_worker,
)


class TestRttEstimator:
    def test_first_sample_initialises_srtt_and_half_variance(self):
        est = RttEstimator()
        est.observe(0.080)
        assert est.srtt == pytest.approx(0.080)
        assert est.rttvar == pytest.approx(0.040)
        assert est.samples == 1
        assert est.rto == pytest.approx(0.080 + 4 * 0.040)

    def test_update_rule_matches_jacobson_karels(self):
        """Second sample must follow the textbook EWMA pair, with rttvar
        updated against the *old* srtt."""
        est = RttEstimator()
        est.observe(0.100)
        est.observe(0.060)
        expected_rttvar = (1 - RTT_BETA) * 0.050 + RTT_BETA * abs(0.100 - 0.060)
        expected_srtt = (1 - RTT_ALPHA) * 0.100 + RTT_ALPHA * 0.060
        assert est.rttvar == pytest.approx(expected_rttvar)
        assert est.srtt == pytest.approx(expected_srtt)

    def test_converges_on_a_steady_link(self):
        """Constant 100ms samples: srtt locks to 100ms and the deviation
        decays towards zero (so rto tightens towards srtt)."""
        est = RttEstimator()
        for _ in range(50):
            est.observe(0.100)
        assert est.srtt == pytest.approx(0.100, rel=1e-6)
        assert est.rttvar < 0.0005
        assert est.rto == pytest.approx(0.100, rel=0.02)
        assert est.min_rtt == pytest.approx(0.100)
        assert est.max_rtt == pytest.approx(0.100)

    def test_latency_step_inflates_variance_then_decays(self):
        """A 10ms→100ms latency step: the deviation EWMA spikes (rto must
        exceed the new latency within a few samples, so in-flight acks at
        the new speed are not misread as congestion), then decays again
        once the link is steady at 100ms."""
        est = RttEstimator()
        for _ in range(20):
            est.observe(0.010)
        settled_var = est.rttvar
        for _ in range(5):
            est.observe(0.100)
        assert est.rttvar > settled_var * 5
        assert est.rto > 0.100
        for _ in range(200):
            est.observe(0.100)
        assert est.srtt == pytest.approx(0.100, rel=0.01)
        assert est.rttvar < 0.005
        assert est.min_rtt == pytest.approx(0.010)
        assert est.max_rtt == pytest.approx(0.100)

    def test_negative_samples_clamp_to_zero(self):
        """Clock oddities (monotonic is safe, but belt and braces) must
        not poison the EWMA with negative round trips."""
        est = RttEstimator()
        est.observe(-0.5)
        assert est.srtt == 0.0
        assert est.rttvar == 0.0
        assert est.min_rtt == 0.0

    def test_unprimed_estimator_derives_no_threshold(self):
        """Fewer than RTT_PRIME_SAMPLES acks → no slow-ack threshold (the
        transport falls back to 'nothing is slow') and the fixed default
        flush hold."""
        est = RttEstimator()
        for _ in range(RTT_PRIME_SAMPLES - 1):
            est.observe(0.020)
            assert est.slow_threshold() is None
            assert est.flush_hold() == FLUSH_HOLD_DEFAULT
        est.observe(0.020)
        assert est.primed
        assert est.slow_threshold() is not None

    def test_slow_threshold_floors(self):
        """Loopback-tight estimates floor at RTT_MIN_THRESHOLD; slower
        links floor at twice the smoothed RTT."""
        tight = RttEstimator()
        for _ in range(10):
            tight.observe(0.0001)
        assert tight.slow_threshold() == RTT_MIN_THRESHOLD

        slow = RttEstimator()
        for _ in range(50):
            slow.observe(0.200)
        # rto ≈ srtt once variance decays, so the 2*srtt floor rules.
        assert slow.slow_threshold() == pytest.approx(0.400, rel=0.02)

    def test_flush_hold_is_clamped(self):
        fast = RttEstimator()
        for _ in range(10):
            fast.observe(0.0)
        assert fast.flush_hold() == FLUSH_HOLD_MIN

        glacial = RttEstimator()
        for _ in range(10):
            glacial.observe(5.0)
        assert glacial.flush_hold() == FLUSH_HOLD_MAX

    def test_snapshot_shape(self):
        est = RttEstimator()
        snap = est.snapshot()
        assert snap["samples"] == 0
        assert snap["min_rtt_ms"] is None and snap["max_rtt_ms"] is None
        assert snap["primed"] is False
        est.observe(0.0125)
        snap = est.snapshot()
        assert snap == {"samples": 1, "srtt_ms": 12.5, "rttvar_ms": 6.25,
                        "rto_ms": 37.5, "min_rtt_ms": 12.5,
                        "max_rtt_ms": 12.5, "primed": False}
        for _ in range(RTT_PRIME_SAMPLES - 1):
            est.observe(0.0125)
        assert est.snapshot()["primed"] is True


class TestConnectionStats:
    def test_counters_accumulate(self):
        stats = ConnectionStats("w:1", 0)
        stats.note_send(1, 100)
        stats.note_send(3, 300)
        stats.note_ack(0.010, slow=False)
        stats.note_ack(0.050, slow=True)
        stats.note_bytes_received(64)
        stats.note_window(4)
        stats.note_window(2)
        stats.note_death(3)
        snap = stats.snapshot()
        assert snap["connection"] == "w:1" and snap["slot"] == 0
        assert snap["frames_sent"] == 2
        assert snap["tasks_sent"] == 4
        assert snap["batches_sent"] == 1  # only the 3-task frame batched
        assert snap["acks"] == 2 and snap["slow_acks"] == 1
        assert snap["bytes_sent"] == 400 and snap["bytes_received"] == 64
        assert snap["window"] == 2 and snap["peak_window"] == 4
        assert snap["reconnects"] == 1 and snap["requeues"] == 3
        assert snap["samples"] == 2

    def test_aggregate_by_worker_sums_and_weights(self):
        a0 = ConnectionStats("worker-a", 0)
        a1 = ConnectionStats("worker-a", 1)
        b0 = ConnectionStats("worker-b", 0)
        for _ in range(RTT_PRIME_SAMPLES):  # both connections primed
            a0.note_ack(0.010, slow=False)
            a1.note_ack(0.100, slow=False)
        a0.note_send(2, 200)
        a1.note_send(1, 50)
        a0.note_window(8)
        b0.note_send(1, 10)
        rows = aggregate_by_worker([a0.snapshot(), a1.snapshot(),
                                    b0.snapshot()])
        assert [row["worker"] for row in rows] == ["worker-a", "worker-b"]
        worker_a, worker_b = rows
        assert worker_a["connections"] == 2
        assert worker_a["frames_sent"] == 2
        assert worker_a["tasks_sent"] == 3
        assert worker_a["bytes_sent"] == 250
        assert worker_a["acks"] == 2 * RTT_PRIME_SAMPLES
        assert worker_a["peak_window"] == 8
        assert worker_a["rtt_samples"] == 2 * RTT_PRIME_SAMPLES
        # Sample-weighted mean over the two primed estimators: equal
        # sample counts at srtt 10ms and 100ms.
        assert worker_a["srtt_ms"] == pytest.approx((10 + 100) / 2,
                                                    abs=0.01)
        # An ack-less worker reports no RTT rather than a fake zero.
        assert worker_b["rtt_samples"] == 0
        assert worker_b["srtt_ms"] is None and worker_b["rttvar_ms"] is None


class TestEndToEndTelemetry:
    @pytest.mark.slow
    def test_subprocess_sweep_reports_real_counters(self):
        """A real windowed subprocess sweep must account for every task:
        acks == tasks sent == tasks planned, bytes flow both ways, and
        the estimator collects one sample per acked task."""
        from repro.experiments.backends import ComposedBackend
        from repro.experiments.executor import plan_sweep_tasks
        from repro.experiments.sweeps import run_sweep
        from repro.experiments.transports import SubprocessTransport

        grid = dict(algorithms=["luby"], sizes=[16], repetitions=6, seed=3)
        backend = ComposedBackend(
            transport=SubprocessTransport(window=4, max_batch=2), jobs=2)
        sweep = run_sweep(**grid, jobs=2, backend=backend)
        planned = len(plan_sweep_tasks(**grid))

        telemetry = sweep.telemetry
        assert telemetry is not None
        assert telemetry["transport"] == "subprocess"
        assert telemetry["scheduler"] == {"name": "fifo", "requeues": 0}
        rows = telemetry["workers"]
        assert rows, "windowed subprocess sweeps must report telemetry"
        total = {key: sum(row[key] for row in rows)
                 for key in ("tasks_sent", "acks", "frames_sent",
                             "bytes_sent", "bytes_received", "rtt_samples")}
        assert total["tasks_sent"] == planned
        # One reply (and one RTT sample) per task, even when several
        # tasks rode one batched frame.
        assert total["acks"] == planned
        assert total["rtt_samples"] == planned
        assert total["frames_sent"] <= planned
        assert total["bytes_sent"] > 0 and total["bytes_received"] > 0
        connections = telemetry["connections"]
        assert all(snap["samples"] == snap["acks"] for snap in connections)

    def test_serial_sweep_reports_no_worker_rows(self):
        """The inline transport has no framed connections: telemetry is
        present but its worker table is empty (and format_telemetry says
        so instead of printing a header-only table)."""
        from repro.experiments.backends import SerialBackend
        from repro.experiments.sweeps import run_sweep
        from repro.experiments.tables import format_telemetry

        backend = SerialBackend()
        sweep = run_sweep(algorithms=["luby"], sizes=[16], repetitions=2,
                          seed=3, backend=backend)
        telemetry = sweep.telemetry
        assert telemetry is not None
        assert telemetry["workers"] == []
        text = format_telemetry(telemetry)
        assert "no framed connections" in text


class TestPrimedWeighting:
    """Only primed estimators enter the worker RTT mean — and a genuine
    0.0 ms srtt is a measurement, not a missing value.

    Regression: aggregation used ``snap.get("srtt_ms") or 0.0``, which
    treated a legitimate zero srtt (loopback acks under the clock's
    resolution) as absent, and let a single-sample estimator's noisy
    srtt weigh into the mean alongside converged ones.
    """

    def _primed_zero(self, worker="w", slot=0):
        stats = ConnectionStats(worker, slot)
        for _ in range(RTT_PRIME_SAMPLES):
            stats.note_ack(0.0, slow=False)
        return stats

    def test_primed_zero_srtt_reports_zero_not_none(self):
        (row,) = aggregate_by_worker([self._primed_zero().snapshot()])
        assert row["srtt_ms"] == 0.0
        assert row["rttvar_ms"] == 0.0

    def test_unprimed_estimator_is_excluded_from_the_mean(self):
        noisy = ConnectionStats("w", 0)
        noisy.note_ack(5.0, slow=False)  # one wild 5000ms sample
        converged = ConnectionStats("w", 1)
        for _ in range(RTT_PRIME_SAMPLES):
            converged.note_ack(0.010, slow=False)
        (row,) = aggregate_by_worker([noisy.snapshot(),
                                      converged.snapshot()])
        # The unprimed outlier contributes samples to the count but not
        # to the mean: only the converged estimator weighs in.
        assert row["rtt_samples"] == RTT_PRIME_SAMPLES + 1
        assert row["srtt_ms"] == pytest.approx(10.0, abs=0.01)

    def test_all_unprimed_means_no_rtt_not_a_fabricated_one(self):
        stats = ConnectionStats("w", 0)
        stats.note_ack(0.010, slow=False)
        (row,) = aggregate_by_worker([stats.snapshot()])
        assert row["srtt_ms"] is None and row["rttvar_ms"] is None

    def test_legacy_snapshots_fall_back_to_the_sample_count(self):
        """Snapshots from an older worker lack ``primed``; priming is
        then inferred from the sample count so mixed fleets aggregate."""
        snap = self._primed_zero().snapshot()
        del snap["primed"]
        (row,) = aggregate_by_worker([snap])
        assert row["srtt_ms"] == 0.0


class TestWorkerPids:
    def test_note_peer_collects_distinct_pids_sorted(self):
        a0 = ConnectionStats("w", 0)
        a1 = ConnectionStats("w", 1)
        a0.note_peer(4002)
        a1.note_peer(4001)
        (row,) = aggregate_by_worker([a0.snapshot(), a1.snapshot()])
        assert row["worker_pids"] == [4001, 4002]

    def test_duplicate_and_missing_pids_collapse(self):
        a0 = ConnectionStats("w", 0)
        a1 = ConnectionStats("w", 1)
        a2 = ConnectionStats("w", 2)
        a0.note_peer(4001)
        a1.note_peer(4001)  # same slot process served both connections
        a2.note_peer(None)  # a hello without a pid stays absent
        (row,) = aggregate_by_worker([a0.snapshot(), a1.snapshot(),
                                      a2.snapshot()])
        assert row["worker_pids"] == [4001]
