"""Unit tests for the RTT estimator and the telemetry counters.

The estimator's numbers *retune timing only* (slow-ack threshold, batch
flush hold) — the equivalence matrix in ``tests/test_executor.py`` pins
that they never touch a result byte.  Here we pin the numbers
themselves: Jacobson/Karels update rules, priming, the threshold floors,
and the counter/aggregation arithmetic every telemetry surface rests on.
"""

from __future__ import annotations

import pytest

from repro.experiments.telemetry import (
    FLUSH_HOLD_DEFAULT,
    FLUSH_HOLD_MAX,
    FLUSH_HOLD_MIN,
    RTT_ALPHA,
    RTT_BETA,
    RTT_MIN_THRESHOLD,
    RTT_PRIME_SAMPLES,
    ConnectionStats,
    RttEstimator,
    aggregate_by_worker,
)


class TestRttEstimator:
    def test_first_sample_initialises_srtt_and_half_variance(self):
        est = RttEstimator()
        est.observe(0.080)
        assert est.srtt == pytest.approx(0.080)
        assert est.rttvar == pytest.approx(0.040)
        assert est.samples == 1
        assert est.rto == pytest.approx(0.080 + 4 * 0.040)

    def test_update_rule_matches_jacobson_karels(self):
        """Second sample must follow the textbook EWMA pair, with rttvar
        updated against the *old* srtt."""
        est = RttEstimator()
        est.observe(0.100)
        est.observe(0.060)
        expected_rttvar = (1 - RTT_BETA) * 0.050 + RTT_BETA * abs(0.100 - 0.060)
        expected_srtt = (1 - RTT_ALPHA) * 0.100 + RTT_ALPHA * 0.060
        assert est.rttvar == pytest.approx(expected_rttvar)
        assert est.srtt == pytest.approx(expected_srtt)

    def test_converges_on_a_steady_link(self):
        """Constant 100ms samples: srtt locks to 100ms and the deviation
        decays towards zero (so rto tightens towards srtt)."""
        est = RttEstimator()
        for _ in range(50):
            est.observe(0.100)
        assert est.srtt == pytest.approx(0.100, rel=1e-6)
        assert est.rttvar < 0.0005
        assert est.rto == pytest.approx(0.100, rel=0.02)
        assert est.min_rtt == pytest.approx(0.100)
        assert est.max_rtt == pytest.approx(0.100)

    def test_latency_step_inflates_variance_then_decays(self):
        """A 10ms→100ms latency step: the deviation EWMA spikes (rto must
        exceed the new latency within a few samples, so in-flight acks at
        the new speed are not misread as congestion), then decays again
        once the link is steady at 100ms."""
        est = RttEstimator()
        for _ in range(20):
            est.observe(0.010)
        settled_var = est.rttvar
        for _ in range(5):
            est.observe(0.100)
        assert est.rttvar > settled_var * 5
        assert est.rto > 0.100
        for _ in range(200):
            est.observe(0.100)
        assert est.srtt == pytest.approx(0.100, rel=0.01)
        assert est.rttvar < 0.005
        assert est.min_rtt == pytest.approx(0.010)
        assert est.max_rtt == pytest.approx(0.100)

    def test_negative_samples_clamp_to_zero(self):
        """Clock oddities (monotonic is safe, but belt and braces) must
        not poison the EWMA with negative round trips."""
        est = RttEstimator()
        est.observe(-0.5)
        assert est.srtt == 0.0
        assert est.rttvar == 0.0
        assert est.min_rtt == 0.0

    def test_unprimed_estimator_derives_no_threshold(self):
        """Fewer than RTT_PRIME_SAMPLES acks → no slow-ack threshold (the
        transport falls back to 'nothing is slow') and the fixed default
        flush hold."""
        est = RttEstimator()
        for _ in range(RTT_PRIME_SAMPLES - 1):
            est.observe(0.020)
            assert est.slow_threshold() is None
            assert est.flush_hold() == FLUSH_HOLD_DEFAULT
        est.observe(0.020)
        assert est.primed
        assert est.slow_threshold() is not None

    def test_slow_threshold_floors(self):
        """Loopback-tight estimates floor at RTT_MIN_THRESHOLD; slower
        links floor at twice the smoothed RTT."""
        tight = RttEstimator()
        for _ in range(10):
            tight.observe(0.0001)
        assert tight.slow_threshold() == RTT_MIN_THRESHOLD

        slow = RttEstimator()
        for _ in range(50):
            slow.observe(0.200)
        # rto ≈ srtt once variance decays, so the 2*srtt floor rules.
        assert slow.slow_threshold() == pytest.approx(0.400, rel=0.02)

    def test_flush_hold_is_clamped(self):
        fast = RttEstimator()
        for _ in range(10):
            fast.observe(0.0)
        assert fast.flush_hold() == FLUSH_HOLD_MIN

        glacial = RttEstimator()
        for _ in range(10):
            glacial.observe(5.0)
        assert glacial.flush_hold() == FLUSH_HOLD_MAX

    def test_snapshot_shape(self):
        est = RttEstimator()
        snap = est.snapshot()
        assert snap["samples"] == 0
        assert snap["min_rtt_ms"] is None and snap["max_rtt_ms"] is None
        est.observe(0.0125)
        snap = est.snapshot()
        assert snap == {"samples": 1, "srtt_ms": 12.5, "rttvar_ms": 6.25,
                        "rto_ms": 37.5, "min_rtt_ms": 12.5,
                        "max_rtt_ms": 12.5}


class TestConnectionStats:
    def test_counters_accumulate(self):
        stats = ConnectionStats("w:1", 0)
        stats.note_send(1, 100)
        stats.note_send(3, 300)
        stats.note_ack(0.010, slow=False)
        stats.note_ack(0.050, slow=True)
        stats.note_bytes_received(64)
        stats.note_window(4)
        stats.note_window(2)
        stats.note_death(3)
        snap = stats.snapshot()
        assert snap["connection"] == "w:1" and snap["slot"] == 0
        assert snap["frames_sent"] == 2
        assert snap["tasks_sent"] == 4
        assert snap["batches_sent"] == 1  # only the 3-task frame batched
        assert snap["acks"] == 2 and snap["slow_acks"] == 1
        assert snap["bytes_sent"] == 400 and snap["bytes_received"] == 64
        assert snap["window"] == 2 and snap["peak_window"] == 4
        assert snap["reconnects"] == 1 and snap["requeues"] == 3
        assert snap["samples"] == 2

    def test_aggregate_by_worker_sums_and_weights(self):
        a0 = ConnectionStats("worker-a", 0)
        a1 = ConnectionStats("worker-a", 1)
        b0 = ConnectionStats("worker-b", 0)
        for _ in range(3):
            a0.note_ack(0.010, slow=False)
        a1.note_ack(0.100, slow=False)
        a0.note_send(2, 200)
        a1.note_send(1, 50)
        a0.note_window(8)
        b0.note_send(1, 10)
        rows = aggregate_by_worker([a0.snapshot(), a1.snapshot(),
                                    b0.snapshot()])
        assert [row["worker"] for row in rows] == ["worker-a", "worker-b"]
        worker_a, worker_b = rows
        assert worker_a["connections"] == 2
        assert worker_a["frames_sent"] == 2
        assert worker_a["tasks_sent"] == 3
        assert worker_a["bytes_sent"] == 250
        assert worker_a["acks"] == 4
        assert worker_a["peak_window"] == 8
        assert worker_a["rtt_samples"] == 4
        # Sample-weighted mean: 3 samples at srtt 10ms, 1 at 100ms.
        assert worker_a["srtt_ms"] == pytest.approx((3 * 10 + 1 * 100) / 4,
                                                    abs=0.01)
        # An ack-less worker reports no RTT rather than a fake zero.
        assert worker_b["rtt_samples"] == 0
        assert worker_b["srtt_ms"] is None and worker_b["rttvar_ms"] is None


class TestEndToEndTelemetry:
    @pytest.mark.slow
    def test_subprocess_sweep_reports_real_counters(self):
        """A real windowed subprocess sweep must account for every task:
        acks == tasks sent == tasks planned, bytes flow both ways, and
        the estimator collects one sample per acked task."""
        from repro.experiments.backends import ComposedBackend
        from repro.experiments.executor import plan_sweep_tasks
        from repro.experiments.sweeps import run_sweep
        from repro.experiments.transports import SubprocessTransport

        grid = dict(algorithms=["luby"], sizes=[16], repetitions=6, seed=3)
        backend = ComposedBackend(
            transport=SubprocessTransport(window=4, max_batch=2), jobs=2)
        sweep = run_sweep(**grid, jobs=2, backend=backend)
        planned = len(plan_sweep_tasks(**grid))

        telemetry = sweep.telemetry
        assert telemetry is not None
        assert telemetry["transport"] == "subprocess"
        assert telemetry["scheduler"] == {"name": "fifo", "requeues": 0}
        rows = telemetry["workers"]
        assert rows, "windowed subprocess sweeps must report telemetry"
        total = {key: sum(row[key] for row in rows)
                 for key in ("tasks_sent", "acks", "frames_sent",
                             "bytes_sent", "bytes_received", "rtt_samples")}
        assert total["tasks_sent"] == planned
        # One reply (and one RTT sample) per task, even when several
        # tasks rode one batched frame.
        assert total["acks"] == planned
        assert total["rtt_samples"] == planned
        assert total["frames_sent"] <= planned
        assert total["bytes_sent"] > 0 and total["bytes_received"] > 0
        connections = telemetry["connections"]
        assert all(snap["samples"] == snap["acks"] for snap in connections)

    def test_serial_sweep_reports_no_worker_rows(self):
        """The inline transport has no framed connections: telemetry is
        present but its worker table is empty (and format_telemetry says
        so instead of printing a header-only table)."""
        from repro.experiments.backends import SerialBackend
        from repro.experiments.sweeps import run_sweep
        from repro.experiments.tables import format_telemetry

        backend = SerialBackend()
        sweep = run_sweep(algorithms=["luby"], sizes=[16], repetitions=2,
                          seed=3, backend=backend)
        telemetry = sweep.telemetry
        assert telemetry is not None
        assert telemetry["workers"] == []
        text = format_telemetry(telemetry)
        assert "no framed connections" in text
