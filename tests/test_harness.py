"""Tests for the single-run experiment harness (repro.experiments.harness)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import (
    available_algorithms,
    default_message_bit_limit,
    run_mis,
)
from repro.graphs import generators


class TestAvailability:
    def test_all_expected_algorithms_registered(self):
        names = available_algorithms()
        for expected in ("awake_mis", "ldt_mis", "vt_mis", "luby",
                         "naive_greedy", "rank_greedy"):
            assert expected in names

    def test_unknown_algorithm_rejected(self, small_gnp):
        with pytest.raises(ConfigurationError):
            run_mis(small_gnp, algorithm="does_not_exist")

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            run_mis(generators.empty_graph(0), algorithm="luby")


class TestRunMIS:
    @pytest.mark.parametrize("algorithm", ["vt_mis", "luby", "rank_greedy",
                                           "naive_greedy", "ldt_mis",
                                           "awake_mis"])
    def test_every_algorithm_verifies(self, algorithm):
        graph = generators.gnp_graph(36, expected_degree=5, seed=4)
        result = run_mis(graph, algorithm=algorithm, seed=2)
        assert result.verified
        assert result.independent and result.maximal
        assert result.algorithm == algorithm
        assert result.graph_nodes == 36

    def test_summary_keys(self, small_gnp):
        result = run_mis(small_gnp, algorithm="luby", seed=1)
        summary = result.summary()
        for key in ("algorithm", "n", "m", "mis_size", "verified",
                    "awake_complexity", "round_complexity",
                    "node_averaged_awake", "wall_time_s"):
            assert key in summary

    def test_congest_limit_default(self):
        assert default_message_bit_limit(1024) == 64 * 11
        assert default_message_bit_limit(2) >= 64

    def test_keep_raw_exposes_outputs(self, small_gnp):
        result = run_mis(small_gnp, algorithm="luby", seed=3, keep_raw=True)
        assert result.raw is not None
        assert set(result.raw.outputs) == set(small_gnp.nodes)

    def test_raw_dropped_by_default(self, small_gnp):
        result = run_mis(small_gnp, algorithm="luby", seed=3)
        assert result.raw is None

    def test_verification_can_be_disabled(self, small_gnp):
        result = run_mis(small_gnp, algorithm="luby", seed=3, verify=False)
        assert result.verified  # trivially true when not checked

    def test_seed_reproducibility(self, small_gnp):
        first = run_mis(small_gnp, algorithm="awake_mis", seed=12)
        second = run_mis(small_gnp, algorithm="awake_mis", seed=12)
        assert first.mis == second.mis
        assert first.metrics.awake_complexity == second.metrics.awake_complexity

    def test_congest_enforcement_passes_for_shipped_protocols(self, small_gnp):
        # enforce_congest=True is the default; it must not reject any of the
        # CONGEST algorithms of the paper.
        for algorithm in ("vt_mis", "ldt_mis", "awake_mis"):
            result = run_mis(small_gnp, algorithm=algorithm, seed=5,
                             enforce_congest=True)
            assert result.verified
