"""CSR graph representation tests (repro.graphs.csr, repro.sim.network).

The shared-memory graph cache ships graphs between worker processes as
flat CSR arrays, so everything downstream must be *byte-identical*
between the adjacency-list representation (``Network`` over a networkx
graph) and the CSR one (``CSRNetwork`` over ``CSRGraph`` arrays).  These
tests pin that equivalence property for every registered graph family,
the serialisation round-trip, and the shared-memory segment lifecycle
(owned by the serving process, unlinked exactly once, orphans reaped).
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import run_mis
from repro.experiments.shm_cache import (SEGMENT_PREFIX, SharedGraphCache,
                                         active_segments, attach_segment,
                                         reap_stale_segments)
from repro.graphs import generators
from repro.graphs.csr import MAGIC, CSRGraph, CSRGraphView
from repro.sim.network import CSRNetwork, Network, build_network


@pytest.fixture(params=sorted(generators.FAMILIES))
def family_graph(request):
    """One modest instance of every registered graph family."""
    return generators.by_name(request.param, 48, seed=17)


def _records_sans_wall_time(result):
    record = result.to_record()
    record.pop("wall_time_seconds", None)
    return record


# --------------------------------------------------------------------------- #
# Network-view equivalence (the property the whole fast path rests on)
# --------------------------------------------------------------------------- #
class TestNetworkEquivalence:
    def test_csr_network_matches_network_on_every_family(self, family_graph):
        """Same labels, same ports, same tables — on every family."""
        reference = Network(family_graph)
        csr_net = CSRNetwork(generators.to_csr(family_graph))

        assert csr_net.size == reference.size
        assert csr_net.edge_count == reference.edge_count
        assert csr_net.labels() == reference.labels()
        assert csr_net.max_degree() == reference.max_degree()
        for index in range(reference.size):
            assert csr_net.degree(index) == reference.degree(index)
            assert csr_net.label_of(index) == reference.label_of(index)
            assert csr_net.index_of(reference.label_of(index)) == index
        assert [list(row) for row in csr_net.neighbor_tables()] == \
               [list(row) for row in reference.neighbor_tables()]
        assert [list(row) for row in csr_net.arrival_port_tables()] == \
               [list(row) for row in reference.arrival_port_tables()]

    def test_port_routing_agrees_everywhere(self, family_graph):
        reference = Network(family_graph)
        csr_net = CSRNetwork(generators.to_csr(family_graph))
        for index in range(reference.size):
            for port in range(reference.degree(index)):
                neighbor = reference.neighbor_via_port(index, port)
                assert csr_net.neighbor_via_port(index, port) == neighbor
                assert csr_net.port_towards(index, neighbor) == \
                       reference.port_towards(index, neighbor)

    def test_out_of_range_port_rejected(self):
        csr_net = CSRNetwork(generators.to_csr(generators.path_graph(4)))
        with pytest.raises(ConfigurationError, match="ports"):
            csr_net.neighbor_via_port(0, 5)

    def test_non_adjacent_port_towards_rejected(self):
        csr_net = CSRNetwork(generators.to_csr(generators.path_graph(4)))
        with pytest.raises(ConfigurationError, match="not adjacent"):
            csr_net.port_towards(0, 3)

    def test_csr_tables_present_only_on_csr_network(self):
        graph = generators.gnp_graph(24, p=0.2, seed=5)
        assert Network(graph).csr_tables() is None
        offsets, neighbors, arrivals = \
            CSRNetwork(generators.to_csr(graph)).csr_tables()
        assert len(offsets) == graph.number_of_nodes() + 1
        assert len(neighbors) == len(arrivals) == \
               2 * graph.number_of_edges()

    def test_build_network_dispatches_on_type(self):
        graph = generators.cycle_graph(8)
        assert isinstance(build_network(graph), Network)
        csr = generators.to_csr(graph)
        assert isinstance(build_network(csr), CSRNetwork)
        assert isinstance(build_network(csr.view()), CSRNetwork)


# --------------------------------------------------------------------------- #
# The graph-API view (what run_mis and the verifiers touch)
# --------------------------------------------------------------------------- #
class TestCSRGraphView:
    def test_view_mirrors_networkx_surface(self, family_graph):
        view = generators.to_csr(family_graph).view()
        assert view.number_of_nodes() == family_graph.number_of_nodes()
        assert view.number_of_edges() == family_graph.number_of_edges()
        assert not view.is_directed()
        assert not view.is_multigraph()
        assert sorted(view.nodes) == sorted(family_graph.nodes)
        assert sorted(map(tuple, map(sorted, view.edges))) == \
               sorted(map(tuple, map(sorted, family_graph.edges)))
        for node in family_graph.nodes:
            assert sorted(view.neighbors(node)) == \
                   sorted(family_graph.neighbors(node))

    def test_has_edge_both_orientations(self):
        graph = generators.path_graph(5)
        view = generators.to_csr(graph).view()
        assert view.has_edge(1, 2) and view.has_edge(2, 1)
        assert not view.has_edge(0, 4)

    def test_run_mis_byte_identical_between_representations(self):
        """The headline property: the exact same result record (modulo
        wall time) whether the algorithm runs over networkx adjacency or
        over flat CSR arrays."""
        for family in sorted(generators.FAMILIES):
            graph = generators.by_name(family, 32, seed=23)
            over_nx = run_mis(graph, algorithm="luby", seed=7,
                              collect_raw=False)
            over_csr = run_mis(generators.to_csr(graph).view(),
                               algorithm="luby", seed=7, collect_raw=False)
            assert _records_sans_wall_time(over_csr) == \
                   _records_sans_wall_time(over_nx), family


# --------------------------------------------------------------------------- #
# Serialisation
# --------------------------------------------------------------------------- #
class TestSerialisation:
    def test_buffer_round_trip(self, family_graph):
        original = generators.to_csr(family_graph)
        restored = CSRGraph.from_buffer(original.to_bytes())
        assert restored.n == original.n and restored.m == original.m
        for name in ("offsets", "neighbors", "arrivals", "labels"):
            assert list(getattr(restored, name)) == \
                   list(getattr(original, name)), name

    def test_bad_magic_rejected(self):
        with pytest.raises(ConfigurationError, match="bad magic"):
            CSRGraph.from_buffer(bytes(64))

    def test_truncated_buffer_rejected(self):
        buffer = generators.to_csr(generators.cycle_graph(6)).to_bytes()
        with pytest.raises(ConfigurationError, match="truncated"):
            CSRGraph.from_buffer(buffer[:-8])

    def test_pack_into_undersized_buffer_rejected(self):
        csr = generators.to_csr(generators.cycle_graph(6))
        with pytest.raises(ConfigurationError, match="words"):
            csr.pack_into(bytearray(csr.nbytes - 8))

    def test_from_graph_rejects_non_integer_labels(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(ConfigurationError, match="integer node labels"):
            CSRGraph.from_graph(graph)

    def test_from_graph_rejects_directed_graphs(self):
        import networkx as nx

        with pytest.raises(ConfigurationError, match="undirected"):
            CSRGraph.from_graph(nx.DiGraph([(0, 1)]))

    def test_from_graph_rejects_self_loops(self):
        import networkx as nx

        graph = nx.Graph([(0, 1)])
        graph.add_edge(1, 1)
        with pytest.raises(ConfigurationError, match="self-loops"):
            CSRGraph.from_graph(graph)

    def test_magic_word_spells_csrg(self):
        assert MAGIC.to_bytes(4, "big") == b"CSRG"


# --------------------------------------------------------------------------- #
# Numpy fast paths (construction, packing, zero-copy array views)
# --------------------------------------------------------------------------- #
class TestNumpyPaths:
    """The numpy construction/packing paths must be byte-identical to the
    portable Python paths, and ``as_arrays()`` must be zero-copy and
    read-only — the contract the vectorized engine and the graph
    statistics fast paths rely on."""

    def test_numpy_and_python_construction_agree(self, family_graph,
                                                 monkeypatch):
        import repro.graphs.csr as csr_module

        if csr_module._numpy is None:
            pytest.skip("numpy not installed")
        with_numpy = CSRGraph.from_graph(family_graph).to_bytes()
        monkeypatch.setattr(csr_module, "_numpy", None)
        pure_python = CSRGraph.from_graph(family_graph).to_bytes()
        assert with_numpy == pure_python

    def test_pack_into_paths_agree(self, family_graph, monkeypatch):
        import repro.graphs.csr as csr_module

        if csr_module._numpy is None:
            pytest.skip("numpy not installed")
        csr = generators.to_csr(family_graph)
        with_numpy = csr.to_bytes()
        monkeypatch.setattr(csr_module, "_numpy", None)
        assert csr.to_bytes() == with_numpy

    def test_as_arrays_values_and_read_only(self, family_graph):
        np = pytest.importorskip("numpy")
        csr = generators.to_csr(family_graph)
        offsets, neighbors, arrivals, labels = csr.as_arrays()
        assert offsets.tolist() == list(csr.offsets)
        assert neighbors.tolist() == list(csr.neighbors)
        assert arrivals.tolist() == list(csr.arrivals)
        assert labels.tolist() == list(csr.labels)
        for arr in (offsets, neighbors, arrivals, labels):
            assert arr.dtype == np.int64
            assert arr.flags.writeable is False
            if arr.size:
                with pytest.raises(ValueError):
                    arr[0] = 0

    def test_as_arrays_is_zero_copy(self):
        np = pytest.importorskip("numpy")
        csr = generators.to_csr(generators.cycle_graph(6))
        first = csr.as_arrays()
        second = csr.as_arrays()
        for a, b in zip(first, second):
            assert np.shares_memory(a, b)

    def test_as_arrays_survives_buffer_round_trip(self):
        pytest.importorskip("numpy")
        csr = generators.to_csr(generators.cycle_graph(6))
        restored = CSRGraph.from_buffer(csr.to_bytes())
        for mine, theirs in zip(csr.as_arrays(), restored.as_arrays()):
            assert mine.tolist() == theirs.tolist()

    def test_as_arrays_requires_numpy(self, monkeypatch):
        import repro.graphs.csr as csr_module

        csr = generators.to_csr(generators.cycle_graph(6))
        monkeypatch.setattr(csr_module, "_numpy", None)
        with pytest.raises(ConfigurationError, match="requires numpy"):
            csr.as_arrays()


# --------------------------------------------------------------------------- #
# Shared-memory segment lifecycle
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="no /dev/shm on this platform")
class TestSharedGraphCache:
    def test_hit_miss_and_attach_round_trip(self):
        cache = SharedGraphCache(max_entries=4)
        try:
            name = cache.get_or_create("gnp", 32, 5)
            assert name.startswith(f"{SEGMENT_PREFIX}-{os.getpid()}-")
            assert cache.get_or_create("gnp", 32, 5) == name
            assert cache.stats()["hits"] == 1
            assert cache.stats()["misses"] == 1

            view = attach_segment(name)
            assert isinstance(view, CSRGraphView)
            reference = generators.build_csr("gnp", 32, seed=5)
            assert list(view.csr.labels) == list(reference.labels)
            assert list(view.csr.neighbors) == list(reference.neighbors)
        finally:
            cache.close()

    def test_eviction_unlinks_exactly_the_evicted_segment(self):
        cache = SharedGraphCache(max_entries=2)
        try:
            first = cache.get_or_create("path", 8, 1)
            second = cache.get_or_create("path", 16, 1)
            third = cache.get_or_create("path", 24, 1)  # evicts `first`
            live = active_segments()
            assert first not in live
            assert second in live and third in live
            assert cache.stats()["evictions"] == 1
        finally:
            cache.close()

    def test_close_unlinks_everything_and_is_idempotent(self):
        cache = SharedGraphCache(max_entries=4)
        names = [cache.get_or_create("cycle", n, 3) for n in (8, 12)]
        assert all(name in active_segments() for name in names)
        cache.close()
        cache.close()  # idempotent: a second close must be a no-op
        assert not any(name in active_segments() for name in names)
        with pytest.raises(RuntimeError, match="closed"):
            cache.get_or_create("cycle", 8, 3)

    def test_attach_missing_segment_raises_file_not_found(self):
        with pytest.raises(FileNotFoundError):
            attach_segment(f"{SEGMENT_PREFIX}-999999-gone")

    def test_reaper_unlinks_only_dead_owners(self):
        """A segment named for a dead pid is reaped; one named for this
        (live) process is left strictly alone."""
        # Find a pid that certainly does not exist.
        dead_pid = 2 ** 22 - 7
        while True:
            try:
                os.kill(dead_pid, 0)
            except ProcessLookupError:
                break
            except OSError:
                pass
            dead_pid -= 1
        orphan_name = f"{SEGMENT_PREFIX}-{dead_pid}-0"
        orphan = shared_memory.SharedMemory(name=orphan_name, create=True,
                                            size=64)
        cache = SharedGraphCache(max_entries=2)
        try:
            owned = cache.get_or_create("path", 8, 2)
            reaped = reap_stale_segments()
            assert orphan_name in reaped
            assert owned not in reaped
            assert owned in active_segments()
            assert orphan_name not in active_segments()
        finally:
            cache.close()
            orphan.close()
            # Already unlinked by the reaper; tracker bookkeeping only.
            try:
                orphan.unlink()
            except FileNotFoundError:
                pass
