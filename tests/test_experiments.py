"""Tests for sweeps, tables, fitting, statistics and the experiment registry."""

from __future__ import annotations

import pytest

from repro.analysis import fitting, stats
from repro.analysis.components import (
    run_shattering_experiment,
    undersized_partition_failure,
)
from repro.analysis.residual import run_residual_experiment
from repro.experiments import registry
from repro.experiments.sweeps import run_sweep
from repro.experiments.tables import ascii_plot, format_csv, format_series, format_table
from repro.graphs import generators


class TestStats:
    def test_summarize_basic(self):
        summary = stats.summarize([1, 2, 3, 4])
        assert summary.mean == 2.5
        assert summary.minimum == 1 and summary.maximum == 4
        assert summary.median == 2.5
        assert summary.as_dict()["count"] == 4

    def test_summarize_empty(self):
        assert stats.summarize([]).count == 0

    def test_percentile(self):
        values = list(range(1, 11))
        assert stats.percentile(values, 0) == 1
        assert stats.percentile(values, 100) == 10
        assert stats.percentile(values, 50) == pytest.approx(5.5)
        with pytest.raises(ValueError):
            stats.percentile(values, 120)

    def test_geometric_sizes(self):
        assert stats.geometric_sizes(4, 32) == [4, 8, 16, 32]
        with pytest.raises(ValueError):
            stats.geometric_sizes(0, 8)


class TestFitting:
    def test_log_series_fits_log(self):
        import math

        ns = [64, 128, 256, 512, 1024]
        values = [3 * math.log2(n) + 2 for n in ns]
        best = fitting.best_fit(ns, values)
        assert best.law == "log(n)"
        assert best.r_squared > 0.999

    def test_linear_series_fits_n(self):
        ns = [32, 64, 128, 256]
        values = [2 * n + 5 for n in ns]
        assert fitting.best_fit(ns, values).law == "n"

    def test_flat_series(self):
        ns = [32, 64, 128, 256]
        values = [7, 7, 7, 7]
        best = fitting.best_fit(ns, values)
        assert best.law in ("constant", "loglog(n)")

    def test_loglog_series(self):
        import math

        ns = [2**k for k in range(4, 13)]
        values = [5 * math.log2(math.log2(n)) + 1 for n in ns]
        assert fitting.best_fit(ns, values).law == "loglog(n)"

    def test_fit_validation(self):
        with pytest.raises(KeyError):
            fitting.fit_law([1, 2], [1, 2], "cubic")
        with pytest.raises(ValueError):
            fitting.fit_law([1], [1], "log(n)")

    def test_growth_ratio(self):
        assert fitting.growth_ratio([1, 2, 3], [2, 3, 8]) == 4.0
        assert fitting.growth_ratio([], []) == 1.0

    def test_fit_report_keys(self):
        report = fitting.fit_report([10, 100, 1000], [1, 2, 3])
        assert {"best_law", "scale", "offset", "r_squared",
                "growth_ratio"} <= set(report)


class TestTables:
    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="demo")
        assert "demo" in text and "22" in text and "a" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_csv(self):
        rows = [{"a": 1, "b": 2}]
        assert format_csv(rows) == "a,b\n1,2"
        assert format_csv([]) == ""

    def test_format_series(self):
        text = format_series([(1, 2), (3, 4)], x_label="n", y_label="awake")
        assert "awake" in text and "3" in text

    def test_ascii_plot(self):
        text = ascii_plot([(10, 1), (20, 4)], width=8, label="demo")
        assert "demo" in text
        assert text.count("#") >= 3
        assert ascii_plot([]) == "(empty series)"


class TestSweeps:
    def test_small_sweep(self):
        sweep = run_sweep(
            algorithms=["luby", "vt_mis"],
            sizes=[16, 32],
            families=("gnp",),
            repetitions=1,
            seed=1,
        )
        assert sweep.all_verified
        rows = sweep.rows()
        assert len(rows) == 4
        assert {row["algorithm"] for row in rows} == {"luby", "vt_mis"}
        series = sweep.series("luby", "gnp")
        assert [n for n, _ in series] == [16, 32]

    def test_sweep_fits_produced_with_enough_sizes(self):
        sweep = run_sweep(
            algorithms=["luby"],
            sizes=[16, 32, 64],
            families=("gnp",),
            repetitions=1,
            seed=2,
        )
        fits = sweep.fits("awake_max")
        assert len(fits) == 1
        assert fits[0]["algorithm"] == "luby"


class TestAnalysisExperiments:
    def test_residual_experiment(self):
        graph = generators.gnp_graph(256, expected_degree=10, seed=3)
        result = run_residual_experiment(graph, trials=2, seed=4)
        assert result.all_within_bound
        assert all("lemma2_bound" in row for row in result.rows())

    def test_shattering_experiment(self):
        result = run_shattering_experiment(n=400, degrees=(4, 8), trials=2, seed=5)
        assert result.all_within_bound
        assert len(result.rows()) == 2

    def test_undersized_partition_control(self):
        measurements = undersized_partition_failure(n=600, degree=12,
                                                    classes=2, trials=2, seed=6)
        assert any(not m.within_bound for m in measurements)


class TestRegistry:
    def test_available_experiments(self):
        assert registry.available_experiments() == [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
        ]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            registry.run_experiment("E99")

    def test_e8_passes(self):
        report = registry.run_experiment("E8")
        assert report.passed
        assert "S_3" in str(report.rows)

    def test_e6_smoke(self):
        report = registry.run_experiment("E6", scale="smoke", seed=1)
        assert report.passed
        assert report.rows

    def test_e7_smoke(self):
        report = registry.run_experiment("E7", scale="smoke", seed=2)
        assert report.passed

    def test_e4_smoke(self):
        report = registry.run_experiment("E4", scale="smoke", seed=3)
        assert report.rows
        assert report.render().startswith("== E4")

    def test_e1_smoke(self):
        report = registry.run_experiment("E1", scale="smoke", seed=4)
        assert report.passed
        assert any(row["algorithm"] == "awake_mis" for row in report.rows)

    def test_e9_smoke(self):
        report = registry.run_experiment("E9", scale="smoke", seed=5)
        assert report.passed
        assert {row["algorithm"] for row in report.rows} == {"awake_mis",
                                                             "luby"}
        assert all(fit["metric"] == "avg_awake_mean" for fit in report.fits)

    def test_e9_resumes_from_store(self, tmp_path):
        from repro.experiments.store import ResultStore

        path = tmp_path / "e9.jsonl"
        first = registry.run_experiment("E9", scale="smoke", seed=5,
                                        store=ResultStore(path))
        resumed = registry.run_experiment("E9", scale="smoke", seed=5,
                                          store=ResultStore(path), resume=True)
        assert repr(resumed.rows) == repr(first.rows)
        assert resumed.fits == first.fits
