"""Unit tests for the CI benchmark-regression gate.

``benchmarks/compare_bench.py`` is what turns ``BENCH_pr.json`` vs the
committed ``BENCH_seed.json`` into a pass/fail CI signal, so its
arithmetic and exit codes are pinned here — including the acceptance
demonstration that a synthetic >30% throughput regression fails the
gate, and that the ``--warn-only`` label escape hatch downgrades the
same regression to exit 0.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = (pathlib.Path(__file__).resolve().parent.parent
           / "benchmarks" / "compare_bench.py")


@pytest.fixture(scope="module")
def compare_bench():
    spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data), encoding="utf-8")
    return str(path)


SEED = {
    "parallel_sweep": {
        "serial_tasks_per_second": 100.0,
        "parallel_tasks_per_second": 200.0,
        "speedup": 2.0,
        "tasks": 8,
    }
}


class TestNumericLeaves:
    def test_flattens_nested_dicts_and_lists(self, compare_bench):
        flat = dict(compare_bench.numeric_leaves(
            {"a": {"b": 1, "c": [2.5, {"d": 3}]}, "skip": "text",
             "flag": True}))
        assert flat == {"a.b": 1.0, "a.c[0]": 2.5, "a.c[1].d": 3.0}

    def test_booleans_are_not_numbers(self, compare_bench):
        assert dict(compare_bench.numeric_leaves({"ok": True})) == {}


class TestCompare:
    def test_improvements_and_small_dips_pass(self, compare_bench):
        seed = {"x.tasks_per_second": 100.0}
        result = compare_bench.compare({"x.tasks_per_second": 75.0}, seed)
        assert result["regressions"] == []  # -25% is inside the 30% band
        result = compare_bench.compare({"x.tasks_per_second": 400.0}, seed)
        assert result["regressions"] == []

    def test_regression_past_threshold_is_flagged(self, compare_bench):
        result = compare_bench.compare({"x.tasks_per_second": 60.0},
                                       {"x.tasks_per_second": 100.0})
        assert [row[0] for row in result["regressions"]] == \
            ["x.tasks_per_second"]

    def test_only_tasks_per_second_keys_are_gated(self, compare_bench):
        """A collapsed speedup or wall-clock blowup alone never gates —
        only throughput keys do."""
        result = compare_bench.compare(
            {"speedup": 0.1, "serial_seconds": 99.0},
            {"speedup": 4.0, "serial_seconds": 0.1})
        assert result["regressions"] == []

    def test_subsecond_measurements_are_noisy_not_gated(self,
                                                        compare_bench):
        """A 3× swing on a 100ms smoke measurement is runner jitter:
        when both sides' sibling duration is under the floor the key is
        marked noisy and never enforced."""
        seed = {"m.x_tasks_per_second": 100.0, "m.x_seconds": 0.08}
        pr = {"m.x_tasks_per_second": 30.0, "m.x_seconds": 0.26}
        result = compare_bench.compare(pr, seed)
        assert result["regressions"] == []
        states = {path: state for path, *_, state in result["rows"]}
        assert states["m.x_tasks_per_second"] == "noisy"

    def test_collapse_inflates_duration_and_still_fails(self,
                                                        compare_bench):
        """The regression the gate exists for: a collapsed pipeline
        pushes the PR-side duration past the floor, so the same noisy
        smoke key becomes enforced — sub-second baselines cannot hide a
        real 10× slowdown."""
        seed = {"m.x_tasks_per_second": 100.0, "m.x_seconds": 0.08}
        pr = {"m.x_tasks_per_second": 10.0, "m.x_seconds": 0.8}
        result = compare_bench.compare(pr, seed)
        assert [row[0] for row in result["regressions"]] == \
            ["m.x_tasks_per_second"]

    def test_unshared_keys_reported_but_not_gated(self, compare_bench):
        result = compare_bench.compare(
            {"new.tasks_per_second": 1.0},
            {"old.tasks_per_second": 500.0})
        assert result["regressions"] == []
        assert result["only_pr"] == ["new.tasks_per_second"]
        assert result["only_seed"] == ["old.tasks_per_second"]


class TestMainExitCodes:
    def test_clean_run_exits_zero(self, compare_bench, tmp_path, capsys):
        pr = _write(tmp_path, "pr.json", SEED)
        seed = _write(tmp_path, "seed.json", SEED)
        assert compare_bench.main([pr, seed]) == 0
        assert "benchmark gate: OK" in capsys.readouterr().out

    def test_synthetic_regression_fails_the_gate(self, compare_bench,
                                                 tmp_path, capsys):
        """The acceptance demonstration: >30% tasks/sec regression →
        exit 1 with the offending key named."""
        regressed = json.loads(json.dumps(SEED))
        regressed["parallel_sweep"]["parallel_tasks_per_second"] = 120.0
        pr = _write(tmp_path, "pr.json", regressed)
        seed = _write(tmp_path, "seed.json", SEED)
        assert compare_bench.main([pr, seed]) == 1
        captured = capsys.readouterr()
        assert "parallel_tasks_per_second" in captured.err
        assert "-40.0%" in captured.err

    def test_warn_only_downgrades_to_exit_zero(self, compare_bench,
                                               tmp_path, capsys):
        regressed = json.loads(json.dumps(SEED))
        regressed["parallel_sweep"]["parallel_tasks_per_second"] = 10.0
        pr = _write(tmp_path, "pr.json", regressed)
        seed = _write(tmp_path, "seed.json", SEED)
        assert compare_bench.main([pr, seed, "--warn-only"]) == 0
        assert "warn-only" in capsys.readouterr().err

    def test_missing_file_exits_two(self, compare_bench, tmp_path):
        seed = _write(tmp_path, "seed.json", SEED)
        assert compare_bench.main([str(tmp_path / "absent.json"),
                                   seed]) == 2

    def test_invalid_json_exits_two(self, compare_bench, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        seed = _write(tmp_path, "seed.json", SEED)
        assert compare_bench.main([str(bad), seed]) == 2

    def test_gate_against_committed_seed_baseline(self, compare_bench,
                                                  tmp_path):
        """The committed BENCH_seed.json must gate against itself — the
        shape CI actually exercises."""
        seed_path = _SCRIPT.parent.parent / "BENCH_seed.json"
        assert compare_bench.main([str(seed_path), str(seed_path)]) == 0
