"""Tests for the transport layer (repro.experiments.transports).

Focus: the socket transport's failure modes — a worker process killed
mid-task over TCP is requeued with byte-identical results, a handshake
schema mismatch is refused, an abandoned run closes every connection —
plus the transport-agnostic guarantees: exception-safe progress
callbacks (a raising callback must not abandon in-flight workers or leak
transports) and clean session teardown.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.errors import ConfigurationError, WorkerCrashError
from repro.experiments.backends import ComposedBackend, SocketBackend
from repro.experiments.executor import iter_task_results, plan_sweep_tasks
from repro.experiments.store import CODE_SCHEMA_VERSION
from repro.experiments.sweeps import run_sweep
from repro.experiments.transports import (
    ADAPTIVE_WINDOW_CAP,
    TRANSPORTS,
    WORKER_FAULT_DIR_ENV,
    SocketTransport,
    SubprocessTransport,
    available_transports,
    parse_worker_addresses,
    resolve_max_batch,
    resolve_transport,
    resolve_window,
    split_host_port,
)
from repro.experiments.worker import write_frame

GRID = dict(algorithms=["luby", "vt_mis"], sizes=[16, 32],
            families=("gnp",), repetitions=2, seed=99)


def _transport_threads():
    """Names of live transport slot threads (leak detector)."""
    return [thread.name for thread in threading.enumerate()
            if thread.name.startswith("repro-transport-slot")]


def _wait_for_no_transport_threads(timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not _transport_threads():
            return
        time.sleep(0.01)
    raise AssertionError(f"leaked transport threads: {_transport_threads()}")


class TestResolveTransport:
    def test_none_is_jobs_driven(self):
        assert resolve_transport(None, jobs=1).name == "inline"
        assert resolve_transport(None, jobs=4).name == "process"

    def test_names_resolve_to_their_classes(self):
        for name, cls in TRANSPORTS.items():
            assert isinstance(resolve_transport(name), cls)

    def test_objects_pass_through(self):
        transport = SocketTransport("127.0.0.1:1")
        assert resolve_transport(transport) is transport

    def test_unknown_name_rejected_with_known_list(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_transport("carrier-pigeon")
        message = str(excinfo.value)
        assert "unknown transport 'carrier-pigeon'" in message
        for name in available_transports():
            assert name in message

    def test_available_transports_is_sorted(self):
        assert available_transports() == sorted(TRANSPORTS)


class TestWorkerAddresses:
    def test_comma_string_and_sequence_forms(self):
        expected = [("hostA", 8750), ("hostB", 8751)]
        assert parse_worker_addresses("hostA:8750,hostB:8751") == expected
        assert parse_worker_addresses(["hostA:8750", "hostB:8751"]) == expected
        assert parse_worker_addresses(" hostA:8750 , hostB:8751 ") == expected

    def test_none_and_empty_mean_no_addresses(self):
        assert parse_worker_addresses(None) == []
        assert parse_worker_addresses("") == []

    def test_slot_multiplier_expands_to_one_pair_per_connection(self):
        assert parse_worker_addresses("hostA:8750*3,hostB:8751") == [
            ("hostA", 8750), ("hostA", 8750), ("hostA", 8750),
            ("hostB", 8751)]
        assert parse_worker_addresses("hostA:8750*1") == [("hostA", 8750)]

    def test_bracketed_ipv6_addresses_are_stripped(self):
        """Regression: ``[::1]:8750`` used to keep the brackets in the
        host (rpartition on ':') and then fail to connect."""
        assert parse_worker_addresses("[::1]:8750") == [("::1", 8750)]
        assert parse_worker_addresses("[fe80::2]:8750*2,hostB:8751") == [
            ("fe80::2", 8750), ("fe80::2", 8750), ("hostB", 8751)]

    @pytest.mark.parametrize("bad", ["nohost", "host:", ":8750", "host:abc"])
    def test_malformed_addresses_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="invalid worker address"):
            parse_worker_addresses(bad)

    @pytest.mark.parametrize("bad", ["host:8750*0", "host:8750*-1",
                                     "host:8750*x", "host:8750*",
                                     "host:8750*2*2"])
    def test_malformed_slot_multipliers_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="invalid worker address"):
            parse_worker_addresses(bad)

    @pytest.mark.parametrize("bad", ["[::1]", "[::1]:", "[]:8750",
                                     "[::1:8750", "[::1]:abc"])
    def test_malformed_ipv6_addresses_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="invalid worker address"):
            parse_worker_addresses(bad)


class TestListenAddresses:
    def test_plain_and_bracketed_forms(self):
        from repro.experiments.worker import parse_listen_address

        assert parse_listen_address("0.0.0.0:8750") == ("0.0.0.0", 8750)
        assert parse_listen_address("127.0.0.1:0") == ("127.0.0.1", 0)
        # Regression: the bracketed IPv6 form used to mis-parse (the
        # brackets stayed in the host) and could never bind.
        assert parse_listen_address("[::1]:8750") == ("::1", 8750)
        assert parse_listen_address("[::]:0") == ("::", 0)

    @pytest.mark.parametrize("bad", ["nohost", "host:", ":8750", "host:abc",
                                     "[::1]", "[]:8750", "[::1:8750"])
    def test_malformed_listen_addresses_rejected(self, bad):
        from repro.experiments.worker import parse_listen_address

        with pytest.raises(ConfigurationError,
                           match="invalid listen address"):
            parse_listen_address(bad)

    def test_unreachable_worker_refused_up_front(self):
        # Dial a port nothing listens on: the sweep must fail before any
        # task is dispatched, naming the address.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # free the port again; nothing listens now
        backend = SocketBackend(workers=f"127.0.0.1:{port}")
        tasks = plan_sweep_tasks(algorithms=["luby"], sizes=[16],
                                 repetitions=1, seed=1)
        with pytest.raises(ConfigurationError, match="cannot reach worker"):
            list(backend.submit_tasks(tasks))


class TestSocketEquivalenceAndReuse:
    def test_sweep_byte_identical_to_serial(self, socket_workers):
        serial = run_sweep(**GRID)
        over_tcp = run_sweep(**GRID, backend=SocketBackend(
            workers=socket_workers))
        assert repr(over_tcp.rows()) == repr(serial.rows())
        assert over_tcp.fits("awake_max") == serial.fits("awake_max")

    def test_workers_serve_many_sweeps(self, socket_workers):
        """Long-lived workers loop back to accept: two sweeps through the
        same two worker processes, both byte-identical to serial."""
        serial = run_sweep(**GRID)
        for _ in range(2):
            again = run_sweep(**GRID, backend=SocketBackend(
                workers=socket_workers))
            assert repr(again.rows()) == repr(serial.rows())

    def test_large_first_over_sockets_matches_serial(self, socket_workers):
        serial = run_sweep(**GRID)
        sweep = run_sweep(**GRID, backend=ComposedBackend(
            scheduler="large-first",
            transport=SocketTransport(socket_workers)))
        assert repr(sweep.rows()) == repr(serial.rows())


class TestMultiSlotWorker:
    """One worker process, many slots: equivalence, failure and budget."""

    def test_one_process_two_slots_byte_identical_to_serial(
            self, multislot_socket_worker):
        serial = run_sweep(**GRID)
        sweep = run_sweep(**GRID, backend=SocketBackend(
            workers=multislot_socket_worker))
        assert repr(sweep.rows()) == repr(serial.rows())
        assert sweep.fits("awake_max") == serial.fits("awake_max")

    def test_multislot_worker_serves_many_sweeps(
            self, multislot_socket_worker):
        """Each slot loops back to accept after its coordinator leaves:
        the same 2-slot process serves back-to-back sweeps."""
        serial = run_sweep(**GRID)
        for _ in range(2):
            again = run_sweep(**GRID, backend=SocketBackend(
                workers=multislot_socket_worker))
            assert repr(again.rows()) == repr(serial.rows())

    def test_killing_one_slot_connection_spares_the_process(
            self, tmp_path, spawn_socket_worker):
        """The multi-slot failover satellite: a fault that kills one
        slot's connection mid-task must cost exactly that connection —
        the worker *process* survives, the coordinator reconnects the
        slot (or fails the task over to the surviving slot), and the
        rows stay byte-identical to serial."""
        serial = run_sweep(**GRID)
        victim = plan_sweep_tasks(**GRID)[3]
        marker = tmp_path / f"crash-run_seed-{victim.run_seed}"
        marker.write_text("")
        proc, address = spawn_socket_worker(
            extra_env={WORKER_FAULT_DIR_ENV: str(tmp_path)}, slots=2)

        backend = SocketBackend(workers=f"{address}*2")
        recovered = run_sweep(**GRID, backend=backend)

        assert not marker.exists()  # the fault actually fired
        assert proc.poll() is None  # ...but the process survived it
        assert backend.worker_restarts >= 1
        assert repr(recovered.rows()) == repr(serial.rows())
        assert recovered.fits("awake_max") == serial.fits("awake_max")

    def test_garbage_connection_does_not_consume_a_bounded_budget(
            self, spawn_socket_worker):
        """Regression: ``served`` used to be incremented at accept time,
        so a garbage peer permanently consumed one slot-count of a
        ``--max-connections`` budget.  Now only connections that deliver
        a valid task frame count: after a junk connection, a
        max_connections=1 worker must still serve a full real sweep —
        and only then exit."""
        proc, address = spawn_socket_worker(max_connections=1)
        host, port = address.split(":")
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            sock.recv(4096)  # its hello
            sock.sendall(b"\x00\x00\x00\x04junk")  # framed non-JSON
        time.sleep(0.1)
        assert proc.poll() is None  # the junk did not burn the budget

        serial = run_sweep(**GRID)
        sweep = run_sweep(**GRID, backend=SocketBackend(workers=address))
        assert repr(sweep.rows()) == repr(serial.rows())
        # The real sweep was the budgeted connection: the worker exits.
        assert proc.wait(timeout=10) == 0

    def test_worker_side_slot_threads_do_not_leak(self):
        """serve() run in-process: after a bounded 2-slot worker returns,
        no ``repro-worker-slot`` thread may remain (and the sweep that
        exercised both slots is byte-identical to serial)."""
        from repro.experiments.worker import serve

        ready = threading.Event()
        bound = {}

        def on_listening(host, port):
            bound["port"] = port
            ready.set()

        server = threading.Thread(
            target=serve, args=("127.0.0.1:0",),
            kwargs=dict(max_connections=2, slots=2,
                        on_listening=on_listening),
            daemon=True)
        server.start()
        assert ready.wait(5)

        serial = run_sweep(**GRID)
        sweep = run_sweep(**GRID, backend=SocketBackend(
            workers=f"127.0.0.1:{bound['port']}*2"))
        server.join(timeout=10)
        assert not server.is_alive()  # the budget terminated serve()
        leaked = [thread.name for thread in threading.enumerate()
                  if thread.name.startswith("repro-worker-slot")]
        assert leaked == []
        assert repr(sweep.rows()) == repr(serial.rows())

    def test_invalid_slot_counts_rejected(self):
        from repro.experiments.worker import serve

        for bad in (0, -1, True, 1.5):
            with pytest.raises(ConfigurationError, match="invalid slots"):
                serve("127.0.0.1:0", slots=bad)


class TestSocketFailureModes:
    """The satellite suite: kill/refuse/abandon over TCP."""

    def _arm_crash(self, tmp_path, task):
        marker = tmp_path / f"crash-run_seed-{task.run_seed}"
        marker.write_text("")
        return marker

    def test_worker_killed_mid_task_over_tcp_requeues_byte_identical(
            self, tmp_path, spawn_socket_worker):
        """A worker process dying mid-task over TCP costs nothing: the
        dropped connection retires that slot (reconnect fails — the
        process is gone), the task is requeued onto the surviving
        worker, and the rows match serial byte-for-byte."""
        serial = run_sweep(**GRID)
        victim = plan_sweep_tasks(**GRID)[3]
        marker = self._arm_crash(tmp_path, victim)
        # Both workers are fault-armed: whichever one picks the victim
        # task up dies.  The marker is one-shot, so the requeued task
        # succeeds on the survivor.
        fault_env = {WORKER_FAULT_DIR_ENV: str(tmp_path)}
        workers = [spawn_socket_worker(extra_env=fault_env)
                   for _ in range(2)]

        backend = SocketBackend(workers=",".join(address
                                                 for _, address in workers))
        recovered = run_sweep(**GRID, backend=backend)

        assert not marker.exists()  # the fault actually fired
        # Exactly one worker process actually died (exit code 17), and
        # its death was observed as a slot replacement attempt.
        exit_codes = [proc.poll() for proc, _ in workers]
        assert exit_codes.count(17) == 1
        assert backend.worker_restarts >= 1
        assert repr(recovered.rows()) == repr(serial.rows())
        assert recovered.fits("awake_max") == serial.fits("awake_max")

    def test_every_task_executes_exactly_once_despite_the_kill(
            self, tmp_path, spawn_socket_worker):
        tasks = plan_sweep_tasks(**GRID)
        self._arm_crash(tmp_path, tasks[0])
        fault_env = {WORKER_FAULT_DIR_ENV: str(tmp_path)}
        addresses = [spawn_socket_worker(extra_env=fault_env)[1]
                     for _ in range(2)]
        backend = SocketBackend(workers=",".join(addresses))
        pairs = list(iter_task_results(tasks, backend=backend))
        assert sorted(t.run_seed for t, _ in pairs) == sorted(
            t.run_seed for t in tasks)

    def test_all_workers_dead_raises_instead_of_hanging(
            self, tmp_path, spawn_socket_worker):
        tasks = plan_sweep_tasks(**GRID)
        for task in tasks[:2]:
            self._arm_crash(tmp_path, task)
        fault_env = {WORKER_FAULT_DIR_ENV: str(tmp_path)}
        _, only_address = spawn_socket_worker(extra_env=fault_env)
        backend = SocketBackend(workers=only_address, max_attempts=5)
        with pytest.raises(WorkerCrashError,
                           match="every execution slot was lost"):
            list(backend.submit_tasks(tasks))

    def test_handshake_schema_mismatch_is_refused(self):
        """A worker speaking a different CODE_SCHEMA_VERSION must be
        refused at dial time — mixed schemas would silently mix
        incomparable metrics."""
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def impostor():
            connection, _ = server.accept()
            with connection:
                writer = connection.makefile("wb")
                write_frame(writer, {"kind": "hello",
                                     "schema": CODE_SCHEMA_VERSION + 1000,
                                     "pid": 0})
                writer.close()
                connection.recv(1)  # linger until the coordinator reacts

        thread = threading.Thread(target=impostor, daemon=True)
        thread.start()
        try:
            backend = SocketBackend(workers=f"127.0.0.1:{port}")
            tasks = plan_sweep_tasks(algorithms=["luby"], sizes=[16],
                                     repetitions=1, seed=1)
            with pytest.raises(ConfigurationError,
                               match="refusing the worker"):
                list(backend.submit_tasks(tasks))
        finally:
            server.close()
            thread.join(timeout=5)

    def test_non_worker_peer_is_refused(self):
        """Something that accepts but never says hello is not a worker."""
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def mute():
            connection, _ = server.accept()
            with connection:
                connection.makefile("wb").write(b"")  # say nothing
                connection.recv(1)

        thread = threading.Thread(target=mute, daemon=True)
        thread.start()
        try:
            transport = SocketTransport(f"127.0.0.1:{port}",
                                        connect_timeout=1.0)
            backend = ComposedBackend(transport=transport)
            tasks = plan_sweep_tasks(algorithms=["luby"], sizes=[16],
                                     repetitions=1, seed=1)
            with pytest.raises(ConfigurationError):
                list(backend.submit_tasks(tasks))
        finally:
            server.close()
            thread.join(timeout=5)

    def test_malformed_result_frame_raises_instead_of_hanging(self):
        """A peer that handshakes fine but then answers with a frame the
        coordinator cannot interpret must surface an error — a slot
        thread dying silently would leave the scheduler blocked in
        next_event() forever."""
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def liar():
            connection, _ = server.accept()
            with connection:
                writer = connection.makefile("wb")
                write_frame(writer, {"kind": "hello",
                                     "schema": CODE_SCHEMA_VERSION,
                                     "pid": 0})
                reader = connection.makefile("rb")
                from repro.experiments.worker import read_frame

                read_frame(reader)  # accept the task...
                # ...then answer with a result frame missing its body.
                write_frame(writer, {"kind": "result", "index": 0})
                connection.recv(1)  # linger until the coordinator reacts

        thread = threading.Thread(target=liar, daemon=True)
        thread.start()
        try:
            backend = SocketBackend(workers=f"127.0.0.1:{port}")
            tasks = plan_sweep_tasks(algorithms=["luby"], sizes=[16],
                                     repetitions=1, seed=1)
            with pytest.raises(KeyError):
                list(backend.submit_tasks(tasks))
            _wait_for_no_transport_threads()
        finally:
            server.close()
            thread.join(timeout=5)

    def test_worker_survives_a_garbage_connection(self, spawn_socket_worker):
        """One misbehaving peer must cost one connection, not the
        long-lived worker: after feeding it garbage frames, the same
        worker still serves a real sweep."""
        proc, address = spawn_socket_worker()
        host, port = address.split(":")
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            sock.recv(4096)  # its hello
            sock.sendall(b"\x00\x00\x00\x04junk")  # framed non-JSON
        time.sleep(0.1)
        assert proc.poll() is None  # the worker did not die
        serial = run_sweep(**GRID)
        sweep = run_sweep(**GRID, backend=SocketBackend(workers=address))
        assert repr(sweep.rows()) == repr(serial.rows())

    def test_abandoned_run_closes_all_connections(self, socket_workers):
        """Abandoning the result stream mid-sweep must tear down every
        slot thread and connection — the workers go back to accepting
        and immediately serve a fresh, byte-identical sweep."""
        serial = run_sweep(**GRID)
        tasks = plan_sweep_tasks(**GRID)
        stream = iter_task_results(
            tasks, backend=SocketBackend(workers=socket_workers))
        next(stream)
        stream.close()
        _wait_for_no_transport_threads()
        again = run_sweep(**GRID,
                          backend=SocketBackend(workers=socket_workers))
        assert repr(again.rows()) == repr(serial.rows())


class TestProgressCallbackSafety:
    """A raising progress callback must not leak workers or transports."""

    @pytest.mark.parametrize("transport", ["thread", "subprocess", "socket"])
    def test_raising_callback_shuts_transport_down_and_re_raises(
            self, transport, request, monkeypatch):
        if transport == "socket":
            workers = request.getfixturevalue("socket_workers")
            backend = SocketBackend(workers=workers)
        else:
            backend = ComposedBackend(transport=transport, jobs=2)
        tasks = plan_sweep_tasks(**GRID)

        class CallbackBoom(RuntimeError):
            pass

        calls = []

        def progress(task, result, done, total):
            calls.append(done)
            if done == 2:
                raise CallbackBoom("progress callback exploded")

        with pytest.raises(CallbackBoom):
            list(iter_task_results(tasks, jobs=2, progress=progress,
                                   backend=backend))
        assert calls  # the callback genuinely fired before raising
        _wait_for_no_transport_threads()

    def test_raising_callback_mid_sweep_keeps_store_resumable(
            self, tmp_path, socket_workers):
        """The sweep-level contract: results persisted before the
        callback raised stay on disk, and resuming completes the grid
        byte-identically to an uninterrupted run."""
        from repro.experiments.store import ResultStore

        serial = run_sweep(**GRID)
        path = tmp_path / "out.jsonl"

        def explode_after_three(task, result, done, total):
            if done == 3:
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            run_sweep(**GRID, store=ResultStore(path),
                      progress=explode_after_three,
                      backend=SocketBackend(workers=socket_workers))
        _wait_for_no_transport_threads()

        # The callback raised while the third result was in hand, so
        # exactly the first two results made it to disk; resume executes
        # only the remainder, byte-identically.
        executed = []
        resumed = run_sweep(
            **GRID, store=ResultStore(path), resume=True,
            progress=lambda task, *_: executed.append(task.run_seed),
            backend=SocketBackend(workers=socket_workers))
        assert repr(resumed.rows()) == repr(serial.rows())
        assert len(executed) == len(plan_sweep_tasks(**GRID)) - 2

    def test_subsequent_sweeps_unaffected_by_an_earlier_callback_crash(
            self):
        def explode(task, result, done, total):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            run_sweep(**GRID, jobs=2, backend="async", progress=explode)
        _wait_for_no_transport_threads()
        assert repr(run_sweep(**GRID, jobs=2, backend="async").rows()) == \
            repr(run_sweep(**GRID).rows())


class TestSubprocessTransportHygiene:
    def test_no_threads_leak_after_a_normal_sweep(self):
        run_sweep(**GRID, jobs=2, backend="async")
        _wait_for_no_transport_threads()

    def test_restart_counter_counts_replacements_only(self):
        backend = ComposedBackend(transport="subprocess", jobs=2)
        run_sweep(algorithms=["luby"], sizes=[16], repetitions=1, seed=1,
                  backend=backend)
        assert backend.worker_restarts == 0

    def test_concurrent_restart_counts_lose_no_increment(self):
        """Regression for the unsynchronised ``restarts += 1``: many slot
        threads reporting peer deaths at once used to lose increments (a
        classic read-modify-write race).  16 threads counting 500
        restarts each must land on exactly 8000."""
        import sys

        transport = SubprocessTransport()
        barrier = threading.Barrier(16)

        def hammer():
            barrier.wait()
            for _ in range(500):
                transport.count_restart()

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # provoke interleaving aggressively
        try:
            threads = [threading.Thread(target=hammer) for _ in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert transport.restarts == 16 * 500


class TestPortRangeValidation:
    """Satellite: out-of-range ports fail at parse time with flag advice,
    not later as confusing OS errors."""

    @pytest.mark.parametrize("bad", ["host:0", "host:99999", "host:65536",
                                     "[::1]:0", "[::1]:70000"])
    def test_workers_reject_out_of_range_ports(self, bad):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_worker_addresses(bad)
        message = str(excinfo.value)
        assert "invalid worker address" in message
        assert "out of range" in message
        assert "--workers" in message

    @pytest.mark.parametrize("bad", ["host:99999", "host:65536",
                                     "[::1]:70000"])
    def test_listen_rejects_out_of_range_ports(self, bad):
        from repro.experiments.worker import parse_listen_address

        with pytest.raises(ConfigurationError) as excinfo:
            parse_listen_address(bad)
        message = str(excinfo.value)
        assert "invalid listen address" in message
        assert "out of range" in message
        assert "--listen" in message

    def test_listen_keeps_the_ephemeral_port_0(self):
        """Port 0 stays valid for --listen only: a listener may ask the
        OS for an ephemeral port, but dialling port 0 can never work."""
        from repro.experiments.worker import parse_listen_address

        assert parse_listen_address("127.0.0.1:0") == ("127.0.0.1", 0)
        assert parse_listen_address("[::]:0") == ("::", 0)

    def test_split_host_port_boundaries(self):
        assert split_host_port("host:1") == ("host", 1)
        assert split_host_port("host:65535") == ("host", 65535)
        assert split_host_port("host:0", allow_ephemeral=True) == ("host", 0)
        with pytest.raises(ValueError, match="out of range"):
            split_host_port("host:0")
        with pytest.raises(ValueError, match="out of range"):
            split_host_port("host:65536", allow_ephemeral=True)


class TestCloseDuringReconnect:
    def test_close_returns_promptly_while_a_slot_reconnects(
            self, tmp_path, spawn_socket_worker):
        """Regression: close() used to join slot threads without a bound,
        and a thread grinding through a long reconnect loop (sleeping
        between attempts with no peer to interrupt) would hang the whole
        teardown for reconnect_attempts × reconnect_delay.  With the
        closing-aware reconnect loop, close() returns in seconds even
        with a 100 × 8s reconnect schedule in progress."""
        tasks = plan_sweep_tasks(algorithms=["luby"], sizes=[16],
                                 repetitions=1, seed=1)
        marker = tmp_path / f"crash-run_seed-{tasks[0].run_seed}"
        marker.write_text("")
        proc, address = spawn_socket_worker(
            extra_env={WORKER_FAULT_DIR_ENV: str(tmp_path)})
        transport = SocketTransport(address, reconnect_attempts=100,
                                    reconnect_delay=8.0)
        session = transport.open(1)
        try:
            session.submit(0, tasks[0])
            # The worker exits mid-task (exit 17); wait until the slot
            # thread has observed the death and entered its reconnect
            # loop against the now-dead address.
            deadline = time.monotonic() + 20
            while transport.restarts == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert transport.restarts >= 1
        finally:
            started = time.monotonic()
            session.close()
            elapsed = time.monotonic() - started
        assert elapsed < 5.0
        _wait_for_no_transport_threads()


class TestWindowedProtocol:
    """The tentpole suite: pipelined windows, batching, AIMD, downgrade."""

    # Many small tasks so windows actually grow mid-sweep.
    WGRID = dict(algorithms=["luby"], sizes=[16, 32], families=("gnp",),
                 repetitions=4, seed=41)

    def test_window_selectors_resolve(self):
        assert resolve_window("adaptive") == ADAPTIVE_WINDOW_CAP
        assert resolve_window(4) == 4
        assert resolve_window("4") == 4
        assert resolve_max_batch("8") == 8
        transport = SocketTransport("host:8750", window="adaptive",
                                    max_batch=8)
        assert transport.window == ADAPTIVE_WINDOW_CAP
        assert transport.max_batch == 8
        assert SocketTransport("host:8750").window == ADAPTIVE_WINDOW_CAP
        assert SubprocessTransport().window == 1  # pipes: no RTT to hide

    def test_invalid_window_and_batch_selectors_rejected(self):
        for bad in (0, -3, "turbo", 1.5, True, None):
            with pytest.raises(ConfigurationError, match="invalid window"):
                resolve_window(bad)
        for bad in (0, -1, "many", 2.5, False, None):
            with pytest.raises(ConfigurationError,
                               match="invalid max_batch"):
                resolve_max_batch(bad)
        with pytest.raises(ConfigurationError, match="invalid window"):
            SocketTransport("host:8750", window=0)
        with pytest.raises(ConfigurationError, match="invalid max_batch"):
            SubprocessTransport(max_batch=0)

    def test_adaptive_window_grows_and_fixed_window_1_does_not(
            self, spawn_socket_worker):
        """The self-clocking actually engages: over one connection the
        adaptive window must climb past 1 as acks arrive, while an
        explicit window=1 pins the historical strict alternation — with
        byte-identical rows either way."""
        proc, address = spawn_socket_worker()
        serial = run_sweep(**self.WGRID)
        pinned = ComposedBackend(transport=SocketTransport(address,
                                                           window=1))
        assert repr(run_sweep(**self.WGRID, backend=pinned).rows()) == \
            repr(serial.rows())
        assert pinned.transport.peak_window == 1
        adaptive = ComposedBackend(transport=SocketTransport(address))
        assert repr(run_sweep(**self.WGRID, backend=adaptive).rows()) == \
            repr(serial.rows())
        assert adaptive.transport.peak_window > 1

    def test_slow_acks_keep_the_window_at_1(self, spawn_socket_worker):
        """ack_timeout=0 marks every ack slow, so the multiplicative-
        decrease path runs on each one: the window must never leave 1 —
        and, like every window schedule, the rows stay byte-identical."""
        proc, address = spawn_socket_worker()
        serial = run_sweep(**self.WGRID)
        backend = ComposedBackend(transport=SocketTransport(
            address, ack_timeout=0.0))
        assert repr(run_sweep(**self.WGRID, backend=backend).rows()) == \
            repr(serial.rows())
        assert backend.transport.peak_window == 1

    def test_windowed_subprocess_byte_identical(self):
        """The windowed protocol is transport-agnostic: worker
        subprocesses over pipes honour windows and batch frames too."""
        serial = run_sweep(**self.WGRID)
        backend = ComposedBackend(
            transport=SubprocessTransport(window=4, max_batch=4), jobs=2)
        sweep = run_sweep(**self.WGRID, backend=backend)
        assert repr(sweep.rows()) == repr(serial.rows())
        _wait_for_no_transport_threads()

    def test_mid_window_connection_kill_requeues_every_in_flight_frame(
            self, tmp_path, spawn_socket_worker):
        """A connection dying with a window full of frames loses nothing:
        every in-flight frame is reported lost and requeued (each task
        still executes to completion exactly once), the worker process
        survives its slot's death, and rows stay byte-identical."""
        serial = run_sweep(**self.WGRID)
        tasks = plan_sweep_tasks(**self.WGRID)
        victim = tasks[len(tasks) // 2]  # mid-grid: windows have grown
        marker = tmp_path / f"crash-run_seed-{victim.run_seed}"
        marker.write_text("")
        proc, address = spawn_socket_worker(
            extra_env={WORKER_FAULT_DIR_ENV: str(tmp_path)}, slots=2)

        backend = ComposedBackend(transport=SocketTransport(
            f"{address}*2", window=4, max_batch=2))
        pairs = list(iter_task_results(tasks, backend=backend))

        assert not marker.exists()  # the fault actually fired
        assert proc.poll() is None  # connection-scope fault: process lives
        assert backend.worker_restarts >= 1
        assert sorted(t.run_seed for t, _ in pairs) == sorted(
            t.run_seed for t in tasks)
        sweep = run_sweep(**self.WGRID, backend=ComposedBackend(
            transport=SocketTransport(f"{address}*2", window=4,
                                      max_batch=2)))
        assert repr(sweep.rows()) == repr(serial.rows())

    def test_peer_without_window_capability_degrades_to_single_frame(self):
        """Old-worker downgrade: a hello without the window/batch
        features pins the coordinator to one frame in flight and no
        ``tasks`` frames — verified by the worker itself, which fails the
        sweep on any pipelined or batched frame it observes."""
        from repro.experiments.executor import SweepTask, run_task
        from repro.experiments.worker import read_frame

        grid = dict(algorithms=["luby"], sizes=[16], families=("gnp",),
                    repetitions=3, seed=5)
        serial = run_sweep(**grid)
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]
        violations = []

        def legacy_worker():
            connection, _ = server.accept()
            with connection:
                reader = connection.makefile("rb")
                writer = connection.makefile("wb")
                # A pre-windowing worker: hello with no features list.
                write_frame(writer, {"kind": "hello",
                                     "schema": CODE_SCHEMA_VERSION,
                                     "pid": 0})
                while True:
                    frame = read_frame(reader)
                    if frame is None:
                        return
                    if frame.get("kind") != "task":
                        violations.append(
                            f"unsupported frame kind {frame.get('kind')!r}")
                        return
                    # A window-1 coordinator never has a second frame
                    # outstanding before our reply.
                    connection.setblocking(False)
                    try:
                        pending = connection.recv(1, socket.MSG_PEEK)
                    except BlockingIOError:
                        pending = b""
                    finally:
                        connection.setblocking(True)
                    if pending:
                        violations.append(
                            "a second frame was outstanding before the "
                            "previous reply")
                        return
                    result = run_task(SweepTask.from_json(frame["task"]))
                    # Legacy reply shape: index only, no seq echo.
                    write_frame(writer, {"kind": "result",
                                         "index": frame["index"],
                                         "result": result.to_record()})

        thread = threading.Thread(target=legacy_worker, daemon=True)
        thread.start()
        try:
            sweep = run_sweep(**grid, backend=ComposedBackend(
                transport=SocketTransport(f"127.0.0.1:{port}",
                                          window="adaptive", max_batch=8)))
            assert violations == []
            assert repr(sweep.rows()) == repr(serial.rows())
        finally:
            server.close()
            thread.join(timeout=5)
