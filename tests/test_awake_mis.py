"""Tests for Algorithm Awake-MIS (Theorem 13 / Corollary 14)."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.algorithms.awake_mis import (
    AwakeMISParameters,
    batch_index,
    choose_batch,
    run_awake_mis,
)
from repro.algorithms.common import mis_from_result
from repro.algorithms.ldt_mis import ldt_mis_round_budget
from repro.core.mis import is_independent_set, is_maximal_independent_set
from repro.graphs import generators
from repro.rng import make_rng


class TestParameters:
    def test_scaled_parameters_are_consistent(self):
        params = AwakeMISParameters.scaled(1024)
        assert params.ell >= 1
        assert params.delta_prime >= 3
        assert params.batch_count == params.ell * 2 * params.delta_prime
        assert abs(sum(params.group_probabilities) - 1.0) < 1e-9
        assert params.phase_length > ldt_mis_round_budget(params.n_bound,
                                                          params.id_space)
        assert params.total_rounds == params.batch_count * params.phase_length

    def test_paper_parameters_are_larger(self):
        scaled = AwakeMISParameters.scaled(1024)
        paper = AwakeMISParameters.paper(1024)
        assert paper.delta_prime > scaled.delta_prime
        assert abs(sum(paper.group_probabilities) - 1.0) < 1e-9

    def test_parameters_for_tiny_graphs(self):
        for n in (2, 3, 5, 10):
            params = AwakeMISParameters.scaled(n)
            assert params.batch_count >= 1
            assert abs(sum(params.group_probabilities) - 1.0) < 1e-9

    def test_group_probabilities_grow_geometrically(self):
        params = AwakeMISParameters.scaled(4096)
        weights = params.group_probabilities[:-1]
        for smaller, larger in zip(weights, weights[1:]):
            assert larger >= smaller

    def test_batch_index_bijection(self):
        params = AwakeMISParameters.scaled(256)
        seen = set()
        for group in range(1, params.ell + 1):
            for slot in range(1, 2 * params.delta_prime + 1):
                seen.add(batch_index(group, slot, params))
        assert seen == set(range(1, params.batch_count + 1))

    def test_choose_batch_in_range(self):
        params = AwakeMISParameters.scaled(512)
        rng = make_rng(3)
        for _ in range(200):
            group, slot = choose_batch(rng, params)
            assert 1 <= group <= params.ell
            assert 1 <= slot <= 2 * params.delta_prime


class TestCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_gnp_graphs(self, seed):
        graph = generators.gnp_graph(120, expected_degree=8, seed=seed + 50)
        result = run_awake_mis(graph, seed=seed)
        mis = mis_from_result(result)
        assert is_independent_set(graph, mis)
        assert is_maximal_independent_set(graph, mis)

    def test_structured_graphs(self, any_small_graph):
        result = run_awake_mis(any_small_graph, seed=7)
        assert is_maximal_independent_set(any_small_graph,
                                          mis_from_result(result))

    def test_dense_graph_with_stress_parameters(self):
        # Shrink the number of batches so same-batch components are large and
        # the whole LDT-MIS machinery is exercised inside the phases.
        graph = generators.gnp_graph(40, p=0.3, seed=2)
        base = AwakeMISParameters.scaled(40)
        n_bound = max(base.n_bound, 40)
        params = dataclasses.replace(
            base,
            ell=1,
            delta_prime=3,
            group_probabilities=(1.0,),
            n_bound=n_bound,
            phase_length=1 + ldt_mis_round_budget(n_bound, base.id_space) + 4,
        )
        result = run_awake_mis(graph, seed=3, params=params)
        assert is_maximal_independent_set(graph, mis_from_result(result))

    def test_clique(self):
        graph = generators.complete_graph(15)
        result = run_awake_mis(graph, seed=5)
        mis = mis_from_result(result)
        assert len(mis) == 1

    def test_isolated_nodes(self):
        graph = generators.empty_graph(9)
        result = run_awake_mis(graph, seed=1)
        assert mis_from_result(result) == set(graph.nodes)

    def test_random_geometric_graph(self):
        graph = generators.random_geometric(100, seed=4)
        result = run_awake_mis(graph, seed=6)
        assert is_maximal_independent_set(graph, mis_from_result(result))

    def test_round_variant(self):
        graph = generators.gnp_graph(80, expected_degree=6, seed=8)
        result = run_awake_mis(graph, seed=9, variant="round")
        assert is_maximal_independent_set(graph, mis_from_result(result))


class TestComplexity:
    def test_round_complexity_within_schedule(self):
        graph = generators.gnp_graph(100, expected_degree=6, seed=10)
        params = AwakeMISParameters.scaled(100)
        result = run_awake_mis(graph, seed=11, params=params)
        assert result.metrics.round_complexity <= params.total_rounds + 1

    def test_awake_complexity_much_smaller_than_rounds(self):
        graph = generators.gnp_graph(150, expected_degree=8, seed=12)
        result = run_awake_mis(graph, seed=13)
        assert result.metrics.awake_complexity < \
            result.metrics.round_complexity / 1000

    def test_node_averaged_awake_small(self):
        graph = generators.gnp_graph(150, expected_degree=8, seed=14)
        result = run_awake_mis(graph, seed=15)
        assert result.metrics.node_averaged_awake <= 60

    def test_communication_rounds_logarithmic_in_batches(self):
        graph = generators.gnp_graph(120, expected_degree=6, seed=16)
        params = AwakeMISParameters.scaled(120)
        result = run_awake_mis(graph, seed=17, params=params)
        bound = math.ceil(math.log2(params.batch_count)) + 1
        for decision in result.outputs.values():
            assert decision.detail["communication_rounds"] <= bound

    def test_congest_message_sizes(self):
        # Metering (and hence max_message_bits) is only active when a bit
        # limit is set; the unmetered fast path skips size estimation.
        budget = 64 * math.ceil(math.log2(90 + 2))
        graph = generators.gnp_graph(90, expected_degree=6, seed=18)
        result = run_awake_mis(graph, seed=19, message_bit_limit=budget)
        assert 0 < result.metrics.max_message_bits <= budget

    def test_awake_growth_is_sublogarithmic_in_n(self):
        # Doubling n several times should leave the awake complexity nearly
        # unchanged (the log log n regime), certainly far below doubling.
        small = run_awake_mis(
            generators.gnp_graph(64, expected_degree=6, seed=20), seed=21
        ).metrics.awake_complexity
        large = run_awake_mis(
            generators.gnp_graph(256, expected_degree=6, seed=22), seed=23
        ).metrics.awake_complexity
        assert large <= 3 * small + 30
