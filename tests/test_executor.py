"""Tests for the parallel sweep executor and its serial/parallel equivalence.

The load-bearing guarantee: because :func:`plan_sweep_tasks` derives every
seed up front from the master RNG (in the exact order the historical serial
loop consumed it), ``run_sweep(jobs=K)`` is cell-for-cell identical for
every ``K`` — the rows, the fits, even their ``repr`` strings.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.executor import (
    SweepTask,
    execute_tasks,
    iter_task_results,
    plan_sweep_tasks,
    resolve_jobs,
    run_task,
)
from repro.experiments.harness import run_mis
from repro.experiments.sweeps import run_sweep
from repro.graphs.generators import by_name
from repro.sim.metrics import CompactRunMetrics, RunMetrics

GRID = dict(algorithms=["luby", "vt_mis"], sizes=[16, 32],
            families=("gnp",), repetitions=2, seed=99)


def _enable_socket(backend, request, monkeypatch):
    """Point the socket backend at the session worker pool when needed."""
    if backend == "socket":
        from repro.experiments.backends import SOCKET_WORKERS_ENV

        monkeypatch.setenv(SOCKET_WORKERS_ENV,
                           request.getfixturevalue("socket_workers"))


class TestPlanning:
    def test_task_count_is_the_grid_product(self):
        tasks = plan_sweep_tasks(**GRID)
        assert len(tasks) == 2 * 2 * 1 * 2  # algorithms * sizes * families * reps

    def test_planning_is_deterministic(self):
        assert plan_sweep_tasks(**GRID) == plan_sweep_tasks(**GRID)

    def test_different_master_seeds_give_different_tasks(self):
        other = dict(GRID, seed=100)
        assert plan_sweep_tasks(**GRID) != plan_sweep_tasks(**other)

    def test_repetitions_share_graph_seeds_across_algorithms(self):
        """Both algorithms must see the same repetition graphs (as the
        serial sweep always did), with distinct run seeds per task."""
        tasks = plan_sweep_tasks(**GRID)
        by_cell = {}
        for task in tasks:
            by_cell.setdefault(task.cell_key, []).append(task)
        luby_graphs = [t.graph_seed for t in by_cell[("luby", "gnp", 16)]]
        vt_graphs = [t.graph_seed for t in by_cell[("vt_mis", "gnp", 16)]]
        assert luby_graphs == vt_graphs
        run_seeds = [t.run_seed for t in tasks]
        assert len(set(run_seeds)) == len(run_seeds)

    def test_unknown_family_rejected_at_planning_time(self):
        from repro.errors import UnknownFamilyError

        with pytest.raises(UnknownFamilyError, match="unknown graph family"):
            plan_sweep_tasks(algorithms=["luby"], sizes=[16],
                             families=("nope",), repetitions=1, seed=1)

    def test_unknown_algorithm_rejected_at_planning_time(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            plan_sweep_tasks(algorithms=["bogus"], sizes=[16],
                             repetitions=1, seed=1)

    def test_algorithm_params_are_attached_sorted(self):
        tasks = plan_sweep_tasks(
            algorithms=["awake_mis"], sizes=[16], repetitions=1, seed=1,
            algorithm_params={"awake_mis": {"variant": "round",
                                            "preset": "scaled"}},
        )
        assert tasks[0].params == (("preset", "scaled"), ("variant", "round"))


class TestRunTask:
    def test_worker_regenerates_the_graph_from_seeds(self):
        task = SweepTask(algorithm="luby", family="gnp", n=20,
                         graph_seed=7, run_seed=8)
        result = run_task(task)
        reference = run_mis(by_name("gnp", 20, seed=7), algorithm="luby",
                            seed=8, collect_raw=False)
        assert result.mis == reference.mis
        assert result.summary() == {**reference.summary(),
                                    "wall_time_s": result.summary()["wall_time_s"]}

    def test_worker_results_are_compact(self):
        task = SweepTask(algorithm="luby", family="gnp", n=20,
                         graph_seed=7, run_seed=8)
        result = run_task(task)
        assert isinstance(result.metrics, CompactRunMetrics)
        assert result.raw is None

    def test_compact_results_pickle_small(self):
        import pickle

        task = SweepTask(algorithm="luby", family="gnp", n=256,
                         graph_seed=7, run_seed=8)
        compact = len(pickle.dumps(run_task(task)))
        full = len(pickle.dumps(run_mis(by_name("gnp", 256, seed=7),
                                        algorithm="luby", seed=8)))
        assert compact < full / 4


class TestResolveJobs:
    def test_explicit_values_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5

    def test_zero_and_none_mean_cpu_count(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) == resolve_jobs(0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)

    def test_error_message_lists_accepted_forms(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_jobs(-2)
        message = str(excinfo.value)
        assert "positive int" in message
        assert "one worker per CPU" in message

    def test_non_int_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(2.5)

    def test_float_zero_and_bools_rejected(self):
        # 0.0/False must not slip through the "0 means per-CPU" branch and
        # True must not count as the int 1.
        for bad in (0.0, False, True, 1.0):
            with pytest.raises(ConfigurationError):
                resolve_jobs(bad)


class TestStreaming:
    def test_jobs1_streams_in_task_order(self):
        tasks = plan_sweep_tasks(**GRID)
        pairs = list(iter_task_results(tasks, jobs=1))
        assert [task for task, _ in pairs] == tasks
        reference = execute_tasks(tasks, jobs=1)
        assert [result.mis for _, result in pairs] == [r.mis
                                                       for r in reference]

    def test_parallel_stream_covers_every_task_exactly_once(self):
        tasks = plan_sweep_tasks(**GRID)
        pairs = list(iter_task_results(tasks, jobs=4))
        assert sorted(task.run_seed for task, _ in pairs) == sorted(
            task.run_seed for task in tasks)
        by_seed = {task.run_seed: result for task, result in pairs}
        reference = execute_tasks(tasks, jobs=1)
        for task, expected in zip(tasks, reference):
            assert by_seed[task.run_seed].mis == expected.mis

    def test_progress_callback_sees_every_execution(self):
        tasks = plan_sweep_tasks(**GRID)
        seen = []

        def progress(task, result, done, total):
            seen.append((task.run_seed, done, total))

        list(iter_task_results(tasks, jobs=1, progress=progress))
        assert [done for _, done, _ in seen] == list(range(1, len(tasks) + 1))
        assert all(total == len(tasks) for _, _, total in seen)
        assert sorted(seed for seed, _, _ in seen) == sorted(
            t.run_seed for t in tasks)

    def test_yielded_results_are_compact(self):
        tasks = plan_sweep_tasks(algorithms=["luby"], sizes=[16],
                                 repetitions=1, seed=7)
        for _, result in iter_task_results(tasks, jobs=1):
            assert isinstance(result.metrics, CompactRunMetrics)
            assert result.raw is None

    def test_abandoning_the_stream_shuts_the_pool_down(self):
        tasks = plan_sweep_tasks(**GRID)
        stream = iter_task_results(tasks, jobs=4)
        next(stream)
        stream.close()  # must not hang on queued futures


class TestGraphCacheLifecycle:
    def test_coordinator_cache_cleared_after_streaming(self):
        from repro.experiments.executor import _build_graph

        tasks = plan_sweep_tasks(algorithms=["luby"], sizes=[16],
                                 repetitions=2, seed=11)
        list(iter_task_results(tasks, jobs=1))
        assert _build_graph.cache_info().currsize == 0

    def test_worker_initializer_resets_the_cache(self):
        from repro.experiments.executor import (_build_graph,
                                                _reset_worker_graph_cache)

        _build_graph("gnp", 16, 3)
        assert _build_graph.cache_info().currsize > 0
        _reset_worker_graph_cache()
        assert _build_graph.cache_info().currsize == 0

    def test_cached_graphs_are_shared_and_never_mutated(self):
        """The cache contract multi-slot workers rely on: every run_task
        for the same ``(family, n, graph_seed)`` gets the *same* graph
        object (one build per process, however many slots consume it),
        and no algorithm mutates it — nodes, edges and node count must
        be bit-identical after every algorithm ran on it."""
        from repro.experiments.executor import _build_graph
        from repro.experiments.harness import available_algorithms

        _build_graph.cache_clear()
        graph = _build_graph("gnp", 24, 5)
        assert _build_graph.cache_info().misses == 1
        nodes = sorted(graph.nodes())
        edges = sorted(tuple(sorted(edge)) for edge in graph.edges())
        for run_seed, algorithm in enumerate(available_algorithms()):
            run_task(SweepTask(algorithm=algorithm, family="gnp", n=24,
                               graph_seed=5, run_seed=run_seed))
            assert sorted(graph.nodes()) == nodes
            assert sorted(tuple(sorted(edge))
                          for edge in graph.edges()) == edges
        # Every task hit the cached object; nothing was rebuilt.
        assert _build_graph.cache_info().misses == 1
        assert _build_graph("gnp", 24, 5) is graph
        _build_graph.cache_clear()


@pytest.fixture(scope="module")
def serial_baseline():
    """The reference sweep every backend/jobs combination must reproduce."""
    return run_sweep(**GRID, jobs=1)


class TestSerialParallelEquivalence:
    def test_execute_tasks_preserves_task_order(self):
        tasks = plan_sweep_tasks(**GRID)
        serial = execute_tasks(tasks, jobs=1)
        parallel = execute_tasks(tasks, jobs=4)
        assert [r.mis for r in serial] == [r.mis for r in parallel]
        assert [r.seed for r in serial] == [r.seed for r in parallel]

    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize(
        "backend", [None, "serial", "thread", "process", "async", "socket"])
    def test_sweep_rows_byte_identical_across_backends_and_jobs(
            self, backend, jobs, serial_baseline, request, monkeypatch):
        """The cross-backend equivalence matrix.

        Every backend × jobs combination must reproduce the serial rows,
        fits and their repr byte-for-byte — the grid's seeds are fixed at
        planning time, so execution placement can never leak into results.
        ``socket`` runs against two live local workers.
        """
        _enable_socket(backend, request, monkeypatch)
        sweep = run_sweep(**GRID, jobs=jobs, backend=backend)
        assert repr(sweep.rows()) == repr(serial_baseline.rows())
        assert sweep.fits("awake_max") == serial_baseline.fits("awake_max")
        assert sweep.all_verified and serial_baseline.all_verified

    @pytest.mark.parametrize(
        "backend", ["serial", "thread", "process", "async", "socket"])
    @pytest.mark.parametrize("scheduler",
                             ["fifo", "large-first", "cost-model"])
    def test_sweep_rows_byte_identical_across_schedulers(
            self, scheduler, backend, serial_baseline, request, monkeypatch):
        """The scheduler × transport extension of the matrix.

        Dispatch order (fifo vs large-first vs cost-model) is pure
        wall-clock policy: composed with *any* transport — including the
        socket transport with two live workers — rows and fits must stay
        byte-identical to the serial reference, because every seed was
        derived at planning time and arrivals are folded back into grid
        order.
        """
        from repro.experiments.backends import make_backend

        _enable_socket(backend, request, monkeypatch)
        composed = make_backend(backend=backend, scheduler=scheduler,
                                jobs=2)
        sweep = run_sweep(**GRID, jobs=2, backend=composed)
        assert repr(sweep.rows()) == repr(serial_baseline.rows())
        assert sweep.fits("awake_max") == serial_baseline.fits("awake_max")

    @pytest.mark.parametrize("scheduler",
                             ["fifo", "large-first", "cost-model"])
    def test_multislot_worker_byte_identical_to_serial(
            self, scheduler, serial_baseline, multislot_socket_worker):
        """The ``socket --slots 2`` rows of the matrix: one worker
        *process* serving two concurrent connections (slot threads
        sharing a single graph cache) must reproduce the serial rows and
        fits byte-for-byte under every scheduling policy."""
        from repro.experiments.backends import ComposedBackend
        from repro.experiments.transports import SocketTransport

        backend = ComposedBackend(
            scheduler=scheduler,
            transport=SocketTransport(multislot_socket_worker), jobs=2)
        sweep = run_sweep(**GRID, jobs=2, backend=backend)
        assert repr(sweep.rows()) == repr(serial_baseline.rows())
        assert sweep.fits("awake_max") == serial_baseline.fits("awake_max")

    @pytest.mark.parametrize("ack_timeout", [None, 0.0, 0.005],
                             ids=["rtt-calibrated", "pinned", "fixed-5ms"])
    @pytest.mark.parametrize("max_batch", [1, 8])
    @pytest.mark.parametrize("window", [1, 4, "adaptive"])
    def test_windowed_socket_byte_identical_to_serial(
            self, window, max_batch, ack_timeout, serial_baseline,
            multislot_socket_worker):
        """The window × batch × RTT-calibration extension of the matrix:
        pipelining frames into a connection (any fixed window, or
        AIMD-grown), batching tiny tasks into ``tasks`` frames, and the
        slow-ack threshold policy (Jacobson/Karels self-calibrated,
        pinned to window 1 via ``ack_timeout=0.0``, or a fixed explicit
        timeout) are pure wall-clock mechanics — rows and fits must stay
        byte-identical to the serial reference at every (window,
        max_batch, ack_timeout) point."""
        from repro.experiments.backends import ComposedBackend
        from repro.experiments.transports import SocketTransport

        backend = ComposedBackend(
            transport=SocketTransport(multislot_socket_worker,
                                      window=window, max_batch=max_batch,
                                      ack_timeout=ack_timeout),
            jobs=2)
        sweep = run_sweep(**GRID, jobs=2, backend=backend)
        assert repr(sweep.rows()) == repr(serial_baseline.rows())
        assert sweep.fits("awake_max") == serial_baseline.fits("awake_max")

    @pytest.mark.parametrize(
        "backend", ["serial", "thread", "process", "async", "socket"])
    def test_stream_covers_every_task_on_every_backend(self, backend,
                                                       request, monkeypatch):
        _enable_socket(backend, request, monkeypatch)
        tasks = plan_sweep_tasks(**GRID)
        pairs = list(iter_task_results(tasks, jobs=2, backend=backend))
        assert sorted(t.run_seed for t, _ in pairs) == sorted(
            t.run_seed for t in tasks)

    def test_sweep_with_algorithm_params_matches_across_jobs(self):
        grid = dict(algorithms=["luby"], sizes=[16], repetitions=2, seed=5,
                    algorithm_params={"luby": {"max_iterations": 512}})
        serial = run_sweep(**grid, jobs=1)
        parallel = run_sweep(**grid, jobs=2)
        assert repr(serial.rows()) == repr(parallel.rows())

    def test_serial_jobs_run_in_process(self):
        """jobs=1 must not spawn a pool (keeps debugging/profiling simple):
        an unpicklable monkeypatched adapter still works in-process."""
        import repro.experiments.harness as harness

        calls = []
        original = harness.ALGORITHMS["luby"]

        def spy(graph, seed, **params):
            calls.append(seed)
            return original(graph, seed, **params)

        harness.ALGORITHMS["luby"] = spy
        try:
            run_sweep(algorithms=["luby"], sizes=[16], repetitions=2,
                      seed=3, jobs=1)
        finally:
            harness.ALGORITHMS["luby"] = original
        assert len(calls) == 2


class TestSweepStructure:
    def test_cells_keep_the_serial_ordering(self):
        sweep = run_sweep(**GRID, jobs=4)
        keys = [(c.algorithm, c.family, c.n) for c in sweep.cells]
        # family -> n -> algorithm, exactly the order the serial loop built.
        assert keys == [("luby", "gnp", 16), ("vt_mis", "gnp", 16),
                        ("luby", "gnp", 32), ("vt_mis", "gnp", 32)]
        assert all(len(c.runs) == 2 for c in sweep.cells)

    def test_run_mis_keep_raw_conflicts_with_compaction(self):
        with pytest.raises(ConfigurationError):
            run_mis(by_name("gnp", 16, seed=1), algorithm="luby", seed=2,
                    keep_raw=True, collect_raw=False)

    def test_run_mis_default_metrics_stay_full(self):
        result = run_mis(by_name("gnp", 16, seed=1), algorithm="luby", seed=2)
        assert isinstance(result.metrics, RunMetrics)
        assert len(result.metrics.per_node) == 16


class TestGraphCacheConfiguration:
    """REPRO_GRAPH_CACHE sizing and the telemetry counters.

    The graph cache used to be a hard-coded ``lru_cache(maxsize=32)``;
    it is now env-sized (re-read on every ``cache_clear``) and its
    hit/miss/eviction counters flow into backend telemetry.
    """

    @pytest.fixture(autouse=True)
    def _clean_cache(self):
        from repro.experiments.executor import _build_graph

        _build_graph.cache_clear()
        yield
        _build_graph.cache_clear()

    def test_env_resizes_the_cache_on_clear(self, monkeypatch):
        from repro.experiments.executor import GRAPH_CACHE_ENV, _build_graph

        monkeypatch.setenv(GRAPH_CACHE_ENV, "2")
        _build_graph.cache_clear()
        assert _build_graph.cache_info().maxsize == 2
        for graph_seed in range(3):
            _build_graph("path", 8, graph_seed)
        info = _build_graph.cache_info()
        assert info.currsize == 2  # the third build evicted the first
        assert _build_graph.stats()["evictions"] == 1

    def test_eviction_counter_counts_only_evictions(self):
        from repro.experiments.executor import _build_graph

        _build_graph("path", 8, 0)
        _build_graph("path", 8, 0)
        stats = _build_graph.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0

    def test_zero_disables_caching(self, monkeypatch):
        from repro.experiments.executor import GRAPH_CACHE_ENV, _build_graph

        monkeypatch.setenv(GRAPH_CACHE_ENV, "0")
        _build_graph.cache_clear()
        first = _build_graph("path", 8, 0)
        second = _build_graph("path", 8, 0)
        assert first is not second  # nothing was retained
        stats = _build_graph.stats()
        assert stats["misses"] == 2
        assert stats["currsize"] == 0

    def test_invalid_env_value_warns_and_uses_default(self, monkeypatch,
                                                      capsys):
        from repro.experiments.executor import (GRAPH_CACHE_ENV,
                                                _GRAPH_CACHE_DEFAULT,
                                                _build_graph)

        monkeypatch.setenv(GRAPH_CACHE_ENV, "many")
        _build_graph.cache_clear()
        assert _build_graph.cache_info().maxsize == _GRAPH_CACHE_DEFAULT
        assert GRAPH_CACHE_ENV in capsys.readouterr().err

    def test_counters_reach_backend_telemetry(self):
        from repro.experiments.backends import SerialBackend
        from repro.experiments.sweeps import run_sweep

        backend = SerialBackend()
        run_sweep(["luby", "vt_mis"], [16], repetitions=1, seed=5,
                  backend=backend)
        cache = backend.telemetry()["graph_cache"]
        # Both algorithms share the repetition's graph seed: one build,
        # one hit — captured before teardown cleared the cache.
        assert cache["misses"] == 1
        assert cache["hits"] == 1
        assert cache["evictions"] == 0

    def test_shared_source_hook_counts_as_shared_hit(self):
        from repro.experiments.executor import (_build_graph,
                                                set_shared_graph_source)
        from repro.graphs import generators

        fetched = []

        def source(family, n, graph_seed):
            fetched.append((family, n, graph_seed))
            return generators.to_csr(
                generators.by_name(family, n, seed=graph_seed)).view()

        set_shared_graph_source(source)
        try:
            first = _build_graph("path", 8, 1)
            second = _build_graph("path", 8, 1)  # now cached locally
        finally:
            set_shared_graph_source(None)
        assert fetched == [("path", 8, 1)]
        assert second is first
        stats = _build_graph.stats()
        assert stats["shared_hits"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 1
