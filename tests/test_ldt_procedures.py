"""Tests for the LDT procedures (broadcast, upcast, ranking, re-rooting).

These tests hand-build an LDT over a known tree graph (so the expected
behaviour can be computed independently) and drive the procedures through
the simulator.
"""

from __future__ import annotations

from typing import Dict

import networkx as nx
import pytest

from repro.graphs import generators
from repro.ldt.procedures import (
    fragment_broadcast,
    ldt_ranking,
    transmit_adjacent,
    upcast_min,
)
from repro.ldt.structure import LDTState
from repro.sim import Network, run_protocol


def build_ldt_states(tree: nx.Graph, root) -> Dict[object, LDTState]:
    """Compute the LDTState of every node of *tree* rooted at *root*."""
    network = Network(tree)
    states: Dict[object, LDTState] = {}
    parents = nx.bfs_predecessors(tree, root)
    parent_of = dict(parents)
    depths = nx.single_source_shortest_path_length(tree, root)
    for label in tree.nodes:
        index = network.index_of(label)
        parent = parent_of.get(label)
        parent_port = None
        if parent is not None:
            parent_port = network.port_towards(index, network.index_of(parent))
        children_ports = [
            network.port_towards(index, network.index_of(child))
            for child, p in parent_of.items()
            if p == label
        ]
        states[label] = LDTState(
            ldt_id=root,
            depth=depths[label],
            parent_port=parent_port,
            children_ports=sorted(children_ports),
        )
    return states


@pytest.fixture
def ldt_tree():
    """A small tree with known structure, rooted at node 0."""
    tree = nx.Graph([(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6)])
    return tree, build_ldt_states(tree, root=0)


N_BOUND = 10


class TestStructure:
    def test_singleton(self):
        state = LDTState.singleton(17)
        assert state.is_root and state.is_leaf
        assert state.ldt_id == 17 and state.depth == 0

    def test_copy_is_independent(self):
        state = LDTState(ldt_id=1, depth=2, parent_port=0, children_ports=[1, 2])
        clone = state.copy()
        clone.children_ports.append(3)
        assert state.children_ports == [1, 2]

    def test_reroot_towards_flips_parent(self):
        state = LDTState(ldt_id=5, depth=1, parent_port=0, children_ports=[1])
        state.reroot_towards(9, 4, new_parent_port=1, old_parent_becomes_child=True)
        assert state.ldt_id == 9 and state.depth == 4
        assert state.parent_port == 1
        assert 0 in state.children_ports
        assert 1 not in state.children_ports


class TestBroadcastAndUpcast:
    def test_broadcast_reaches_all_nodes(self, ldt_tree):
        tree, states = ldt_tree

        def protocol(ctx):
            state = ctx.local_input
            value = yield from fragment_broadcast(
                state, N_BOUND, block_start=1,
                payload="hello" if state.is_root else None,
            )
            return value

        result = run_protocol(tree, protocol, local_inputs=states, seed=1)
        assert all(value == "hello" for value in result.outputs.values())
        # O(1) awake: at most two awake rounds per node for one broadcast.
        assert result.metrics.awake_complexity <= 2

    def test_upcast_min_reaches_root(self, ldt_tree):
        tree, states = ldt_tree
        values = {label: (100 - 3 * label,) for label in tree.nodes}

        def protocol(ctx):
            state = ctx.local_input["state"]
            value = ctx.local_input["value"]
            best = yield from upcast_min(state, N_BOUND, block_start=1, value=value)
            return best if state.is_root else None

        local = {label: {"state": states[label], "value": values[label]}
                 for label in tree.nodes}
        result = run_protocol(tree, protocol, local_inputs=local, seed=1)
        assert result.outputs[0] == min(values.values())

    def test_upcast_min_ignores_none(self, ldt_tree):
        tree, states = ldt_tree

        def protocol(ctx):
            state = ctx.local_input
            value = (42,) if state.depth == 2 else None
            best = yield from upcast_min(state, N_BOUND, block_start=1, value=value)
            return best if state.is_root else None

        result = run_protocol(tree, protocol, local_inputs=states, seed=1)
        assert result.outputs[0] == (42,)

    def test_upcast_all_none(self, ldt_tree):
        tree, states = ldt_tree

        def protocol(ctx):
            state = ctx.local_input
            best = yield from upcast_min(state, N_BOUND, block_start=1, value=None)
            return best if state.is_root else "na"

        result = run_protocol(tree, protocol, local_inputs=states, seed=1)
        assert result.outputs[0] is None


class TestTransmitAdjacent:
    def test_neighbors_exchange_messages(self, ldt_tree):
        tree, states = ldt_tree

        def protocol(ctx):
            state = ctx.local_input
            inbox = yield from transmit_adjacent(
                state.depth, N_BOUND, block_start=1,
                sends=[(port, ("hi", state.depth)) for port in ctx.ports],
            )
            return sorted(payload for _, payload in inbox)

        result = run_protocol(tree, protocol, local_inputs=states, seed=1)
        # Node 0 has neighbours 1 (depth 1) and 2 (depth 1).
        assert result.outputs[0] == [("hi", 1), ("hi", 1)]
        # Node 6's only neighbour is node 5 at depth 2.
        assert result.outputs[6] == [("hi", 2)]


class TestRanking:
    def test_ranks_form_a_permutation(self, ldt_tree):
        tree, states = ldt_tree

        def protocol(ctx):
            state = ctx.local_input
            rank, total = yield from ldt_ranking(state, N_BOUND, block_start=1)
            return rank, total

        result = run_protocol(tree, protocol, local_inputs=states, seed=1)
        totals = {total for _, total in result.outputs.values()}
        ranks = sorted(rank for rank, _ in result.outputs.values())
        assert totals == {tree.number_of_nodes()}
        assert ranks == list(range(1, tree.number_of_nodes() + 1))

    def test_ranking_awake_complexity_constant(self, ldt_tree):
        tree, states = ldt_tree

        def protocol(ctx):
            state = ctx.local_input
            rank, total = yield from ldt_ranking(state, N_BOUND, block_start=1)
            return rank, total

        result = run_protocol(tree, protocol, local_inputs=states, seed=1)
        assert result.metrics.awake_complexity <= 4

    def test_ranking_on_path_tree(self):
        tree = generators.path_graph(9)
        states = build_ldt_states(tree, root=0)

        def protocol(ctx):
            state = ctx.local_input
            rank, total = yield from ldt_ranking(state, 12, block_start=1)
            return rank, total

        result = run_protocol(tree, protocol, local_inputs=states, seed=1)
        ranks = sorted(rank for rank, _ in result.outputs.values())
        assert ranks == list(range(1, 10))

    def test_ranking_singleton(self):
        tree = generators.empty_graph(1)
        states = {0: LDTState.singleton(1)}

        def protocol(ctx):
            state = ctx.local_input
            rank, total = yield from ldt_ranking(state, 4, block_start=1)
            return rank, total

        result = run_protocol(tree, protocol, local_inputs=states, seed=1)
        assert result.outputs[0] == (1, 1)
