"""Tests for MIS definitions and verification (repro.core.mis)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import mis
from repro.errors import VerificationError
from repro.graphs import generators


class TestIndependence:
    def test_empty_set_is_independent(self, small_gnp):
        assert mis.is_independent_set(small_gnp, set())

    def test_single_node_is_independent(self, small_gnp):
        node = next(iter(small_gnp.nodes))
        assert mis.is_independent_set(small_gnp, {node})

    def test_adjacent_pair_is_not_independent(self, path_graph):
        assert not mis.is_independent_set(path_graph, {0, 1})

    def test_alternating_path_nodes_are_independent(self, path_graph):
        chosen = set(range(0, path_graph.number_of_nodes(), 2))
        assert mis.is_independent_set(path_graph, chosen)

    def test_unknown_node_is_rejected(self, path_graph):
        assert not mis.is_independent_set(path_graph, {999})


class TestMaximality:
    def test_empty_set_not_maximal_on_nonempty_graph(self, small_gnp):
        assert not mis.is_maximal_independent_set(small_gnp, set())

    def test_every_other_path_node_is_maximal(self):
        graph = generators.path_graph(7)
        assert mis.is_maximal_independent_set(graph, {0, 2, 4, 6})

    def test_missing_coverage_detected(self):
        graph = generators.path_graph(7)
        assert not mis.is_maximal_independent_set(graph, {0, 2})

    def test_clique_mis_is_any_single_node(self, clique):
        assert mis.is_maximal_independent_set(clique, {3})
        assert not mis.is_maximal_independent_set(clique, {1, 2})

    def test_star_center_or_leaves(self, star):
        degrees = dict(star.degree())
        center = max(degrees, key=degrees.get)
        leaves = set(star.nodes) - {center}
        assert mis.is_maximal_independent_set(star, {center})
        assert mis.is_maximal_independent_set(star, leaves)

    def test_isolated_nodes_must_be_included(self):
        graph = generators.empty_graph(4)
        assert not mis.is_maximal_independent_set(graph, {0, 1})
        assert mis.is_maximal_independent_set(graph, {0, 1, 2, 3})


class TestHelpers:
    def test_uncovered_nodes(self):
        graph = generators.path_graph(5)
        assert set(mis.uncovered_nodes(graph, {0})) == {2, 3, 4}

    def test_conflicting_edges(self):
        graph = generators.path_graph(4)
        conflicts = mis.conflicting_edges(graph, {1, 2})
        assert conflicts == [(1, 2)]

    def test_verify_mis_passes_for_valid(self, small_gnp):
        valid = nx.maximal_independent_set(small_gnp, seed=1)
        assert mis.verify_mis(small_gnp, valid) == set(valid)

    def test_verify_mis_raises_on_conflict(self, path_graph):
        with pytest.raises(VerificationError, match="not independent"):
            mis.verify_mis(path_graph, {0, 1})

    def test_verify_mis_raises_on_uncovered(self, path_graph):
        with pytest.raises(VerificationError, match="not maximal"):
            mis.verify_mis(path_graph, {0})


class TestGreedyFromOrder:
    def test_path_natural_order(self):
        graph = generators.path_graph(6)
        assert mis.greedy_mis_from_order(graph, range(6)) == {0, 2, 4}

    def test_path_reverse_order(self):
        graph = generators.path_graph(6)
        assert mis.greedy_mis_from_order(graph, reversed(range(6))) == {5, 3, 1}

    def test_order_must_be_permutation(self, path_graph):
        with pytest.raises(ValueError):
            mis.greedy_mis_from_order(path_graph, [0, 1, 2])

    def test_result_is_always_mis(self, any_small_graph):
        order = list(any_small_graph.nodes)
        result = mis.greedy_mis_from_order(any_small_graph, order)
        assert mis.is_maximal_independent_set(any_small_graph, result)

    def test_first_node_always_joins(self, any_small_graph):
        order = list(any_small_graph.nodes)
        result = mis.greedy_mis_from_order(any_small_graph, order)
        assert order[0] in result

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=40), st.randoms(use_true_random=False))
    def test_greedy_property_on_random_graphs(self, n, rng):
        graph = nx.gnp_random_graph(n, 0.25, seed=rng.randrange(2**31))
        order = list(graph.nodes)
        rng.shuffle(order)
        result = mis.greedy_mis_from_order(graph, order)
        assert mis.is_independent_set(graph, result)
        assert mis.is_maximal_independent_set(graph, result)
